// wot_served — the resident trust server.
//
// Boots ONE TrustService and answers NDJSON API frames (one request per
// line, one response per line; see docs/wire_protocol.md) until EOF. The
// whole point is amortization: thousands of pipelined queries share a
// single service boot, where `wot_cli query` used to re-derive the web of
// trust per invocation.
//
//   # serve a dataset over stdin/stdout (great for piping request scripts)
//   wot_served --data community/ < requests.ndjson > responses.ndjson
//
//   # synthetic boot, resident behind a unix socket, 8 dispatch threads
//   wot_served --users 4000 --seed 42 --socket /tmp/wot.sock --threads 8 &
//   wot_cli query --connect /tmp/wot.sock --source alice --top_k 10
//
// Exactly one "boot" line is logged to stderr per process lifetime; the
// round-trip smoke test counts it to prove the service is not re-booted
// between requests. In --socket mode the wot/server ConnectionServer
// multiplexes any number of simultaneous clients (epoll event loop,
// per-connection FIFO, --threads dispatch pool) over the lock-free
// snapshot read path; SIGINT/SIGTERM drain in-flight requests, flush,
// log the accepted-connection count and exit 0.
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "wot/api/frontend.h"
#include "wot/api/unix_socket.h"
#include "wot/io/binary_format.h"
#include "wot/io/dataset_csv.h"
#include "wot/server/connection_server.h"
#include "wot/service/trust_service.h"
#include "wot/synth/generator.h"
#include "wot/util/flags.h"

namespace wot {
namespace {

// Signal -> event-loop bridge: RequestStop is async-signal-safe.
server::ConnectionServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) {
    g_server->RequestStop();
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "wot_served: error: %s\n",
               status.ToString().c_str());
  return 1;
}

Result<Dataset> BootDataset(const std::string& data, int64_t users,
                            int64_t seed) {
  if (!data.empty()) {
    if (std::filesystem::is_directory(data)) {
      return LoadDatasetCsv(data);
    }
    return LoadDatasetBinary(data);
  }
  if (users <= 0) {
    return Status::InvalidArgument("--users must be positive");
  }
  SynthConfig config;
  config.num_users = static_cast<size_t>(users);
  config.seed = static_cast<uint64_t>(seed);
  WOT_ASSIGN_OR_RETURN(SynthCommunity community,
                       GenerateCommunity(config));
  return std::move(community.dataset);
}

// Serves one NDJSON session: a request line in, a response line out,
// flushed per line so pipelined clients never deadlock. Empty lines are
// ignored (tolerant framing). Returns at EOF — or when the reader of
// \p out goes away, so a downstream `| head` doesn't leave the server
// dispatching the rest of stdin into the void.
void ServeStream(api::ServiceFrontend* frontend, std::istream& in,
                 std::FILE* out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string reply = frontend->DispatchLine(line);
    reply += '\n';
    if (std::fwrite(reply.data(), 1, reply.size(), out) != reply.size() ||
        std::fflush(out) != 0) {
      std::fprintf(stderr, "wot_served: output closed, exiting\n");
      return;
    }
  }
}

int ServeSocket(api::ServiceFrontend* frontend,
                const std::string& socket_path, int64_t threads) {
  server::ConnectionServerOptions options;
  options.num_threads = static_cast<int>(threads);
  server::ConnectionServer server(frontend, options);

  Result<int> listen_fd =
      api::ListenUnixSocket(socket_path, /*backlog=*/64);
  if (!listen_fd.ok()) return Fail(listen_fd.status());

  // A drain on SIGINT/SIGTERM: answer what was read, flush, then exit.
  g_server = &server;
  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::fprintf(stderr,
               "wot_served: listening on %s (%lld dispatch threads)\n",
               socket_path.c_str(), static_cast<long long>(threads));
  Status served = server.Serve(listen_fd.ValueOrDie());
  g_server = nullptr;
  server::ConnectionServerStats stats = server.stats();
  std::fprintf(stderr,
               "wot_served: shutdown (%lld connections accepted, %lld "
               "requests dispatched)\n",
               static_cast<long long>(stats.connections_accepted),
               static_cast<long long>(stats.requests_dispatched));
  if (!served.ok()) return Fail(served);
  return 0;
}

int Main(int argc, char** argv) {
  std::string data;
  int64_t users = 1000;
  int64_t seed = 42;
  std::string socket_path;
  int64_t threads = 4;
  FlagParser flags(
      "wot_served",
      "Resident trust server: boots one TrustService and answers NDJSON "
      "API frames (one per line) on stdin/stdout, or concurrently on "
      "--socket");
  flags.AddString("data", &data,
                  "dataset directory or .wotb file to serve (omit for a "
                  "synthetic community)");
  flags.AddInt64("users", &users,
                 "synthetic community size (ignored with --data)");
  flags.AddInt64("seed", &seed, "synthetic generator seed");
  flags.AddString("socket", &socket_path,
                  "listen on this unix socket instead of stdin/stdout");
  flags.AddInt64("threads", &threads,
                 "dispatch threads of the --socket connection server");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (threads <= 0) {
    // Validated before the (expensive) dataset boot.
    return Fail(Status::InvalidArgument(
        "--threads must be positive, got " + std::to_string(threads) +
        "\n" + flags.Usage()));
  }

  // A resident server must outlive any client: broken pipes surface as
  // write errors (handled per connection), never a fatal SIGPIPE.
  signal(SIGPIPE, SIG_IGN);

  Result<Dataset> dataset = BootDataset(data, users, seed);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<std::unique_ptr<TrustService>> service =
      TrustService::Create(dataset.ValueOrDie());
  if (!service.ok()) return Fail(service.status());
  api::ServiceFrontend frontend(service.ValueOrDie().get());

  // The single boot marker: the round-trip smoke asserts this line (and
  // the stats method's service_boots counter) stays at one per process no
  // matter how many requests are served.
  std::shared_ptr<const TrustSnapshot> snapshot =
      service.ValueOrDie()->Snapshot();
  std::fprintf(stderr,
               "wot_served: boot snapshot v%llu (protocol v%lld, %zu "
               "users, %zu categories, %zu ratings)\n",
               static_cast<unsigned long long>(snapshot->version()),
               static_cast<long long>(api::kProtocolVersion),
               snapshot->num_users(), snapshot->num_categories(),
               snapshot->num_ratings());
  snapshot.reset();

  if (!socket_path.empty()) {
    return ServeSocket(&frontend, socket_path, threads);
  }
  ServeStream(&frontend, std::cin, stdout);
  return 0;
}

}  // namespace
}  // namespace wot

int main(int argc, char** argv) { return wot::Main(argc, argv); }
