// wot_served — the resident trust server.
//
// Boots ONE TrustService and answers NDJSON API frames (one request per
// line, one response per line; see docs/wire_protocol.md) until EOF. The
// whole point is amortization: thousands of pipelined queries share a
// single service boot, where `wot_cli query` used to re-derive the web of
// trust per invocation.
//
//   # serve a dataset over stdin/stdout (great for piping request scripts)
//   wot_served --data community/ < requests.ndjson > responses.ndjson
//
//   # synthetic boot, resident behind a unix socket
//   wot_served --users 4000 --seed 42 --socket /tmp/wot.sock &
//   wot_cli query --connect /tmp/wot.sock --source alice --top_k 10
//
// Exactly one "boot" line is logged to stderr per process lifetime; the
// round-trip smoke test counts it to prove the service is not re-booted
// between requests. In --socket mode connections are served sequentially
// (one frontend, one writer-side dataset); EOF on a connection returns to
// accept(). The process runs until killed.
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "wot/api/frontend.h"
#include "wot/api/unix_socket.h"
#include "wot/io/binary_format.h"
#include "wot/io/dataset_csv.h"
#include "wot/service/trust_service.h"
#include "wot/synth/generator.h"
#include "wot/util/flags.h"

namespace wot {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "wot_served: error: %s\n",
               status.ToString().c_str());
  return 1;
}

Result<Dataset> BootDataset(const std::string& data, int64_t users,
                            int64_t seed) {
  if (!data.empty()) {
    if (std::filesystem::is_directory(data)) {
      return LoadDatasetCsv(data);
    }
    return LoadDatasetBinary(data);
  }
  if (users <= 0) {
    return Status::InvalidArgument("--users must be positive");
  }
  SynthConfig config;
  config.num_users = static_cast<size_t>(users);
  config.seed = static_cast<uint64_t>(seed);
  WOT_ASSIGN_OR_RETURN(SynthCommunity community,
                       GenerateCommunity(config));
  return std::move(community.dataset);
}

// Serves one NDJSON session: a request line in, a response line out,
// flushed per line so pipelined clients never deadlock. Empty lines are
// ignored (tolerant framing). Returns at EOF — or when the reader of
// \p out goes away, so a downstream `| head` doesn't leave the server
// dispatching the rest of stdin into the void.
void ServeStream(api::ServiceFrontend* frontend, std::istream& in,
                 std::FILE* out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string reply = frontend->DispatchLine(line);
    reply += '\n';
    if (std::fwrite(reply.data(), 1, reply.size(), out) != reply.size() ||
        std::fflush(out) != 0) {
      std::fprintf(stderr, "wot_served: output closed, exiting\n");
      return;
    }
  }
}

int ServeSocket(api::ServiceFrontend* frontend,
                const std::string& socket_path) {
  Result<int> listen_fd = api::ListenUnixSocket(socket_path);
  if (!listen_fd.ok()) return Fail(listen_fd.status());
  std::fprintf(stderr, "wot_served: listening on %s\n",
               socket_path.c_str());
  while (true) {
    int conn_fd = ::accept(listen_fd.ValueOrDie(), nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      int saved_errno = errno;
      ::close(listen_fd.ValueOrDie());
      return Fail(Status::IOError(std::string("accept(): ") +
                                  std::strerror(saved_errno)));
    }
    // Same framing as the stdin loop, over the shared line reader. A
    // client that vanishes mid-reply is an IOError on this connection
    // only (MSG_NOSIGNAL in SendAll) — the server lives on.
    api::FdLineReader reader(conn_fd);
    std::string line;
    while (true) {
      Result<bool> got_line = reader.Next(&line);
      if (!got_line.ok() || !got_line.ValueOrDie()) break;
      if (line.empty()) continue;
      if (!api::SendAll(conn_fd, frontend->DispatchLine(line) + "\n")
               .ok()) {
        break;
      }
    }
    ::close(conn_fd);
  }
}

int Main(int argc, char** argv) {
  std::string data;
  int64_t users = 1000;
  int64_t seed = 42;
  std::string socket_path;
  FlagParser flags(
      "wot_served",
      "Resident trust server: boots one TrustService and answers NDJSON "
      "API frames (one per line) on stdin/stdout, or on --socket");
  flags.AddString("data", &data,
                  "dataset directory or .wotb file to serve (omit for a "
                  "synthetic community)");
  flags.AddInt64("users", &users,
                 "synthetic community size (ignored with --data)");
  flags.AddInt64("seed", &seed, "synthetic generator seed");
  flags.AddString("socket", &socket_path,
                  "listen on this unix socket instead of stdin/stdout");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  // A resident server must outlive any client: broken pipes surface as
  // write errors (handled per connection), never a fatal SIGPIPE.
  signal(SIGPIPE, SIG_IGN);

  Result<Dataset> dataset = BootDataset(data, users, seed);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<std::unique_ptr<TrustService>> service =
      TrustService::Create(dataset.ValueOrDie());
  if (!service.ok()) return Fail(service.status());
  api::ServiceFrontend frontend(service.ValueOrDie().get());

  // The single boot marker: the round-trip smoke asserts this line (and
  // the stats method's service_boots counter) stays at one per process no
  // matter how many requests are served.
  std::shared_ptr<const TrustSnapshot> snapshot =
      service.ValueOrDie()->Snapshot();
  std::fprintf(stderr,
               "wot_served: boot snapshot v%llu (protocol v%lld, %zu "
               "users, %zu categories, %zu ratings)\n",
               static_cast<unsigned long long>(snapshot->version()),
               static_cast<long long>(api::kProtocolVersion),
               snapshot->num_users(), snapshot->num_categories(),
               snapshot->num_ratings());
  snapshot.reset();

  if (!socket_path.empty()) {
    return ServeSocket(&frontend, socket_path);
  }
  ServeStream(&frontend, std::cin, stdout);
  return 0;
}

}  // namespace
}  // namespace wot

int main(int argc, char** argv) { return wot::Main(argc, argv); }
