// wot_served — the resident trust server.
//
// Boots ONE serving frontend and answers API frames — NDJSON lines, or
// v2 binary frames after an upgrade handshake / magic-byte sniff / with
// --protocol binary (see docs/wire_protocol.md) — until EOF. The whole
// point is amortization: thousands of pipelined queries share a single
// service boot, where `wot_cli query` used to re-derive the web of
// trust per invocation.
//
//   # serve a dataset over stdin/stdout (great for piping request scripts)
//   wot_served --data community/ < requests.ndjson > responses.ndjson
//
//   # synthetic boot, resident behind a unix socket, 8 dispatch threads
//   wot_served --users 4000 --seed 42 --socket /tmp/wot.sock --threads 8 &
//   wot_cli query --connect /tmp/wot.sock --source alice --top_k 10
//
//   # the same frontend on TCP, next to (or instead of) the unix socket
//   wot_served --users 4000 --listen 127.0.0.1:7777 &
//   wot_cli query --connect 127.0.0.1:7777 --source alice --top_k 10
//
//   # shard the population across 4 TrustServices behind the same wire
//   wot_served --users 100000 --shards 4 --socket /tmp/wot.sock &
//
// Exactly one "boot" line is logged to stderr per process lifetime; the
// round-trip smoke test counts it to prove the service is not re-booted
// between requests. With --shards N (default 1) the boot slices the
// dataset across N TrustService shards behind an api::ShardRouter — the
// wire protocol is unchanged (a one-shard router is bit-identical to the
// plain frontend; this binary serves the plain frontend then).
//
// Every transport — stdin/stdout, --socket, --listen — runs on the
// wot/server ConnectionServer (epoll event loop, per-connection FIFO,
// --threads dispatch pool) over the lock-free snapshot read path:
// stdin/stdout serves as one pre-accepted connection, sockets
// multiplex any number of simultaneous clients, and giving BOTH
// listener flags runs one ConnectionServer per listener over the one
// shared frontend. SIGINT/SIGTERM drain in-flight requests, flush, log
// the accepted-connection count and exit 0.
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "wot/api/frontend.h"
#include "wot/api/shard_router.h"
#include "wot/api/unix_socket.h"
#include "wot/io/binary_format.h"
#include "wot/io/dataset_csv.h"
#include "wot/replication/replica_frontend.h"
#include "wot/replication/replica_handle_impl.h"
#include "wot/replication/replica_service.h"
#include "wot/replication/replication_source.h"
#include "wot/server/connection_server.h"
#include "wot/service/trust_service.h"
#include "wot/storage/durable_boot.h"
#include "wot/synth/generator.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/check.h"
#include "wot/util/flags.h"
#include "wot/util/string_util.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace {

// Signal -> event-loop bridge: RequestStop is async-signal-safe, and the
// handler walks a fixed-size slot array (one per listener).
server::ConnectionServer* g_servers[2] = {nullptr, nullptr};

void HandleStopSignal(int) {
  for (server::ConnectionServer* server : g_servers) {
    if (server != nullptr) {
      server->RequestStop();
    }
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "wot_served: error: %s\n",
               status.ToString().c_str());
  return 1;
}

// --metrics_interval_secs: a background thread that scrapes the serving
// frontend every interval and logs ONE summary line to stderr, so an
// operator tailing the log sees load and latency without issuing
// `metrics` requests. Scraping never blocks the request path (the
// registry's hot path is a relaxed fetch-add; the scrape folds stripes).
class MetricsReporter {
 public:
  MetricsReporter(api::Frontend* frontend, int64_t interval_secs)
      : frontend_(frontend), interval_millis_(interval_secs * 1000) {
    thread_ = std::thread([this] { Run(); });
  }

  ~MetricsReporter() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    thread_.join();
  }

 private:
  void Run() WOT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!stopping_) {
      cv_.WaitForMillis(mu_, interval_millis_);
      if (stopping_) break;
      Report();
    }
  }

  void Report() {
    telemetry::MetricsSnapshot snapshot = frontend_->ScrapeMetrics();
    auto value_of =
        [](const std::vector<std::pair<std::string, int64_t>>& values,
           std::string_view name) -> int64_t {
      for (const auto& [metric, value] : values) {
        if (metric == name) return value;
      }
      return 0;
    };
    // One request-latency view across every method.
    telemetry::HistogramSnapshot api_latency;
    for (const telemetry::HistogramSnapshot& h : snapshot.histograms) {
      if (h.name.rfind("api.latency_ns.", 0) != 0) continue;
      if (api_latency.buckets.empty()) {
        api_latency = h;
      } else {
        api_latency.MergeFrom(h);
      }
    }
    std::fprintf(
        stderr,
        "wot_served: metrics requests=%lld errors=%lld slow=%lld "
        "commits=%lld active_conns=%lld api_p50_us=%.1f "
        "api_p99_us=%.1f\n",
        static_cast<long long>(
            value_of(snapshot.counters, "api.requests_served")),
        static_cast<long long>(value_of(snapshot.counters, "api.errors")),
        static_cast<long long>(
            value_of(snapshot.counters, "api.slow_requests")),
        static_cast<long long>(
            value_of(snapshot.counters, "service.commits")),
        static_cast<long long>(
            value_of(snapshot.gauges, "server.connections_active")),
        api_latency.Quantile(0.5) / 1e3, api_latency.Quantile(0.99) / 1e3);
  }

  api::Frontend* frontend_;
  const int64_t interval_millis_;
  Mutex mu_;
  CondVar cv_;
  bool stopping_ WOT_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

Result<Dataset> BootDataset(const std::string& data, int64_t users,
                            int64_t seed) {
  if (!data.empty()) {
    if (std::filesystem::is_directory(data)) {
      return LoadDatasetCsv(data);
    }
    return LoadDatasetBinary(data);
  }
  if (users <= 0) {
    return Status::InvalidArgument("--users must be positive");
  }
  SynthConfig config;
  config.num_users = static_cast<size_t>(users);
  config.seed = static_cast<uint64_t>(seed);
  WOT_ASSIGN_OR_RETURN(SynthCommunity community,
                       GenerateCommunity(config));
  return std::move(community.dataset);
}

// Serves stdin/stdout as ONE ConnectionServer connection — the same
// event loop, per-connection FIFO, dispatch pool, framing bounds,
// upgrade/sniff negotiation and drain semantics as --socket/--listen,
// so all three transports behave uniformly (the ad-hoc getline loop
// this replaced knew nothing of backpressure or binary framing, and
// its stats reported zero connections). Regular-file stdin
// (`wot_served < requests.ndjson`) rides the server's unpollable-fd
// path. Returns at stdin EOF, a closed stdout (a downstream `| head`
// going away), or SIGINT/SIGTERM drain.
int ServeStdio(api::Frontend* frontend, int64_t threads,
               api::WireProtocol protocol, int64_t metrics_interval_secs) {
  server::ConnectionServerOptions options;
  options.num_threads = static_cast<int>(threads);
  options.initial_protocol = protocol;
  server::ConnectionServer server(frontend, options);
  // Transport counters (server.*) ride the frontend's scrape.
  frontend->AddMetricsSource(server.metrics_registry());
  std::unique_ptr<MetricsReporter> reporter;
  if (metrics_interval_secs > 0) {
    reporter =
        std::make_unique<MetricsReporter>(frontend, metrics_interval_secs);
  }
  g_servers[0] = &server;
  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // The server owns (and closes) its fds; keep the process's own 0/1
  // usable until exit by handing over duplicates.
  Status status =
      server.ServeConnection(::dup(STDIN_FILENO), ::dup(STDOUT_FILENO));
  g_servers[0] = nullptr;
  server::ConnectionServerStats stats = server.stats();
  std::fprintf(stderr,
               "wot_served: stdio session done (%lld requests "
               "dispatched)\n",
               static_cast<long long>(stats.requests_dispatched));
  if (!status.ok()) return Fail(status);
  return 0;
}

struct Listener {
  std::string label;  // what to log ("unix socket /x", "tcp 1.2.3.4:5")
  int fd = -1;
};

// Runs one ConnectionServer per listener over the shared frontend; each
// gets its own `threads`-sized dispatch pool. Blocks until every server
// drained (SIGINT/SIGTERM stops them all).
int ServeListeners(api::Frontend* frontend,
                   const std::vector<Listener>& listeners,
                   int64_t threads, api::WireProtocol protocol,
                   int64_t metrics_interval_secs) {
  server::ConnectionServerOptions options;
  options.num_threads = static_cast<int>(threads);
  options.initial_protocol = protocol;
  // The signal-handler bridge has one fixed slot per listener kind.
  WOT_CHECK_LE(listeners.size(),
               sizeof(g_servers) / sizeof(g_servers[0]));
  std::vector<std::unique_ptr<server::ConnectionServer>> servers;
  servers.reserve(listeners.size());
  for (size_t i = 0; i < listeners.size(); ++i) {
    servers.push_back(
        std::make_unique<server::ConnectionServer>(frontend, options));
    // Each listener's transport counters merge into the one scrape.
    frontend->AddMetricsSource(servers.back()->metrics_registry());
    g_servers[i] = servers.back().get();
  }
  std::unique_ptr<MetricsReporter> reporter;
  if (metrics_interval_secs > 0) {
    reporter =
        std::make_unique<MetricsReporter>(frontend, metrics_interval_secs);
  }

  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  for (size_t i = 0; i < listeners.size(); ++i) {
    std::fprintf(stderr,
                 "wot_served: listening on %s (%lld dispatch threads)\n",
                 listeners[i].label.c_str(),
                 static_cast<long long>(threads));
  }

  // One listener's Serve() returning — clean drain or fatal event-loop
  // error — stops the whole fleet: a process silently serving only half
  // its endpoints is worse than one that exits loudly and gets
  // restarted.
  std::vector<Status> statuses(listeners.size());
  auto serve_one = [&](size_t i) {
    statuses[i] = servers[i]->Serve(listeners[i].fd);
    if (!statuses[i].ok()) {
      std::fprintf(stderr, "wot_served: %s listener failed: %s\n",
                   listeners[i].label.c_str(),
                   statuses[i].ToString().c_str());
    }
    for (const std::unique_ptr<server::ConnectionServer>& other :
         servers) {
      other->RequestStop();  // idempotent; no-op on the one returning
    }
  };
  std::vector<std::thread> threads_running;
  for (size_t i = 1; i < listeners.size(); ++i) {
    threads_running.emplace_back(serve_one, i);
  }
  serve_one(0);
  for (std::thread& thread : threads_running) {
    thread.join();
  }

  int64_t accepted = 0;
  int64_t dispatched = 0;
  for (size_t i = 0; i < listeners.size(); ++i) {
    g_servers[i] = nullptr;
    server::ConnectionServerStats stats = servers[i]->stats();
    accepted += stats.connections_accepted;
    dispatched += stats.requests_dispatched;
  }
  std::fprintf(stderr,
               "wot_served: shutdown (%lld connections accepted, %lld "
               "requests dispatched)\n",
               static_cast<long long>(accepted),
               static_cast<long long>(dispatched));
  for (const Status& status : statuses) {
    if (!status.ok()) return Fail(status);
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::string data;
  int64_t users = 1000;
  int64_t seed = 42;
  std::string socket_path;
  std::string listen_hostport;
  std::string protocol = "ndjson";
  int64_t threads = 4;
  int64_t shards = 1;
  std::string data_dir;
  std::string fsync = "batch";
  int64_t metrics_interval_secs = 0;
  int64_t slow_request_ms = -1;
  std::string replica_of;
  int64_t replica_shard = 0;
  std::string replicas_spec;
  int64_t write_quorum = 1;
  FlagParser flags(
      "wot_served",
      "Resident trust server: boots one serving frontend (optionally "
      "sharded across N TrustServices) and answers NDJSON API frames "
      "(one per line) on stdin/stdout, or concurrently on --socket "
      "and/or --listen");
  flags.AddString("data", &data,
                  "dataset directory or .wotb file to serve (omit for a "
                  "synthetic community)");
  flags.AddInt64("users", &users,
                 "synthetic community size (ignored with --data)");
  flags.AddInt64("seed", &seed, "synthetic generator seed");
  flags.AddString("socket", &socket_path,
                  "listen on this unix socket instead of stdin/stdout");
  flags.AddString("listen", &listen_hostport,
                  "listen on this TCP host:port (IPv4 literal; empty "
                  "host binds 0.0.0.0, port 0 picks one). May be "
                  "combined with --socket");
  flags.AddInt64("threads", &threads,
                 "dispatch threads per --socket/--listen connection "
                 "server");
  flags.AddInt64("shards", &shards,
                 "partition users across this many TrustService shards "
                 "behind a ShardRouter (1 = unsharded)");
  flags.AddString("data_dir", &data_dir,
                  "durable storage directory: mutations append to a "
                  "write-ahead log before they are acknowledged, commits "
                  "write snapshot segments, and a restart recovers the "
                  "full pre-crash state (instant boot; --data/--users "
                  "seed only the FIRST boot of an empty directory)");
  flags.AddString("fsync", &fsync,
                  "--data_dir fsync policy: 'always' (every record), "
                  "'batch' (commits + every ~64 records), or 'off' "
                  "(page cache only)");
  flags.AddInt64("metrics_interval_secs", &metrics_interval_secs,
                 "log a one-line telemetry summary (requests, errors, "
                 "commits, api p50/p99) to stderr every N seconds "
                 "(0 = off)");
  flags.AddInt64("slow_request_ms", &slow_request_ms,
                 "log a WARNING with a per-request trace id for every "
                 "request slower than this many milliseconds (0 logs "
                 "every request; -1 = off)");
  flags.AddString("replica-of", &replica_of,
                  "follow the primary at this address ('unix:PATH' or "
                  "'HOST:PORT'): bootstrap from its newest snapshot "
                  "segment into --data_dir, stream its WAL deltas, serve "
                  "reads, and reject writes until `wot_cli replica "
                  "promote`");
  flags.AddInt64("replica-shard", &replica_shard,
                 "which upstream shard to mirror with --replica-of (one "
                 "replica process per shard of a sharded primary)");
  flags.AddString("replicas", &replicas_spec,
                  "attach read replicas to a sharded primary: "
                  "comma-separated SHARD=ADDRESS pairs (address as in "
                  "--replica-of). Point reads and topk legs fan out "
                  "across healthy, caught-up replicas; commits still go "
                  "to the shard primaries");
  flags.AddInt64("write_quorum", &write_quorum,
                 "with --replicas: a commit's epoch only advances after "
                 "this many members of each shard's set (primary "
                 "included) applied it (1 = today's primary-only "
                 "behavior)");
  flags.AddString("protocol", &protocol,
                  "initial wire protocol on every transport: 'ndjson' "
                  "(v1 lines; connections may still upgrade to v2 via "
                  "the handshake or magic-byte sniff) or 'binary' (v2 "
                  "frames from the first byte, no NDJSON)");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  Result<api::WireProtocol> wire = api::WireProtocolFromName(protocol);
  if (!wire.ok()) {
    return Fail(Status::InvalidArgument(wire.status().ToString() + "\n" +
                                        flags.Usage()));
  }
  if (threads <= 0) {
    // Validated before the (expensive) dataset boot.
    return Fail(Status::InvalidArgument(
        "--threads must be positive, got " + std::to_string(threads) +
        "\n" + flags.Usage()));
  }
  if (shards <= 0) {
    return Fail(Status::InvalidArgument(
        "--shards must be positive, got " + std::to_string(shards) +
        "\n" + flags.Usage()));
  }
  if (metrics_interval_secs < 0) {
    return Fail(Status::InvalidArgument(
        "--metrics_interval_secs must be >= 0 (0 = off), got " +
        std::to_string(metrics_interval_secs) + "\n" + flags.Usage()));
  }
  if (slow_request_ms < -1) {
    return Fail(Status::InvalidArgument(
        "--slow_request_ms must be >= 0, or -1 for off, got " +
        std::to_string(slow_request_ms) + "\n" + flags.Usage()));
  }
  if (!replica_of.empty()) {
    if (data_dir.empty()) {
      return Fail(Status::InvalidArgument(
          "--replica-of requires --data_dir (the replica persists what "
          "it mirrors so restarts resume from a WAL delta, never a full "
          "re-ship)\n" +
          flags.Usage()));
    }
    if (!replicas_spec.empty()) {
      return Fail(Status::InvalidArgument(
          "--replica-of and --replicas are mutually exclusive: a process "
          "is either a follower or a primary with a replica set\n" +
          flags.Usage()));
    }
    if (shards != 1) {
      return Fail(Status::InvalidArgument(
          "--replica-of mirrors exactly one upstream shard (pick it "
          "with --replica-shard); run one replica process per shard "
          "instead of --shards " +
          std::to_string(shards) + "\n" + flags.Usage()));
    }
    if (replica_shard < 0) {
      return Fail(Status::InvalidArgument(
          "--replica-shard must be >= 0, got " +
          std::to_string(replica_shard) + "\n" + flags.Usage()));
    }
  }
  if (write_quorum < 1) {
    return Fail(Status::InvalidArgument(
        "--write_quorum must be >= 1 (1 = primary-only), got " +
        std::to_string(write_quorum) + "\n" + flags.Usage()));
  }

  Result<storage::FsyncPolicy> fsync_policy =
      storage::FsyncPolicyFromName(fsync);
  if (!fsync_policy.ok()) {
    return Fail(Status::InvalidArgument(fsync_policy.status().ToString() +
                                        "\n" + flags.Usage()));
  }

  // A resident server must outlive any client: broken pipes surface as
  // write errors (handled per connection), never a fatal SIGPIPE.
  signal(SIGPIPE, SIG_IGN);

  // Boot the frontend: a plain single-service frontend, or a shard
  // router slicing the dataset across N services — either one
  // optionally backed by a --data_dir durable store. Exactly one "boot"
  // line is logged either way — the round-trip smoke counts it (and the
  // stats method's service_boots counter: 1 unsharded, N sharded).
  std::unique_ptr<TrustService> service;
  std::unique_ptr<api::ServiceFrontend> plain_frontend;
  std::unique_ptr<api::ShardRouter> router;
  storage::DurableService durable;
  std::unique_ptr<replication::ReplicaService> replica;
  std::unique_ptr<api::ServiceFrontend> replica_inner;
  std::unique_ptr<replication::ReplicaFrontend> replica_frontend;
  std::unique_ptr<replication::ReplicationSource> repl_source;
  api::Frontend* frontend = nullptr;
  if (!replica_of.empty()) {
    replication::ReplicaOptions ropts;
    ropts.shard = replica_shard;
    ropts.storage.fsync = fsync_policy.ValueOrDie();
    Result<std::unique_ptr<replication::ReplicaService>> booted =
        replication::ReplicaService::Create(
            data_dir,
            replication::ReconnectingClient::ForAddress(replica_of),
            ropts);
    if (!booted.ok()) return Fail(booted.status());
    replica = std::move(booted).ValueOrDie();
    // Bootstrap before opening listeners: the primary may still be
    // starting, so retry the catch-up (200ms apart, ~2 minutes) until a
    // service exists to serve from.
    int attempts = 0;
    while (replica->service() == nullptr) {
      Status caught = replica->CatchUp();
      if (replica->service() != nullptr) break;
      if (++attempts >= 600) {
        return Fail(Status::Internal(
            "replica bootstrap from " + replica_of + " gave up: " +
            (caught.ok() ? std::string("no snapshot segment offered")
                         : caught.ToString())));
      }
      if (!caught.ok() && attempts % 25 == 1) {
        std::fprintf(stderr,
                     "wot_served: waiting for primary %s: %s\n",
                     replica_of.c_str(), caught.ToString().c_str());
      }
      ::usleep(200 * 1000);
    }
    replica_inner =
        std::make_unique<api::ServiceFrontend>(replica->service());
    replica_frontend = std::make_unique<replication::ReplicaFrontend>(
        replica_inner.get(), replica.get());
    replica_frontend->AddMetricsSource(
        replica->manager()->metrics_registry());
    replica->StartPuller();
    frontend = replica_frontend.get();
    std::shared_ptr<const TrustSnapshot> snapshot =
        replica->service()->Snapshot();
    std::fprintf(
        stderr,
        "wot_served: replica boot v%llu following %s shard %lld (%zu "
        "users, source v%llu, fsync=%s)\n",
        static_cast<unsigned long long>(snapshot->version()),
        replica_of.c_str(), static_cast<long long>(replica_shard),
        snapshot->num_users(),
        static_cast<unsigned long long>(replica->source_version()),
        storage::FsyncPolicyName(fsync_policy.ValueOrDie()));
  } else if (!data_dir.empty()) {
    storage::DurableBootOptions options;
    options.storage.fsync = fsync_policy.ValueOrDie();
    options.num_shards = static_cast<size_t>(shards);
    // The seed is only generated/loaded when the directory is empty —
    // recovery never pays for it.
    Result<storage::DurableService> booted = storage::BootDurable(
        data_dir,
        [&]() { return BootDataset(data, users, seed); }, options);
    if (!booted.ok()) return Fail(booted.status());
    durable = std::move(booted).ValueOrDie();
    frontend = durable.frontend;
    uint64_t version = 0;
    size_t total_users = 0;
    if (durable.router != nullptr) {
      version = durable.router->epoch();
      for (size_t s = 0; s < durable.router->num_shards(); ++s) {
        total_users +=
            durable.router->shard_service(s)->Snapshot()->num_users();
      }
    } else {
      std::shared_ptr<const TrustSnapshot> snapshot =
          durable.service->Snapshot();
      version = snapshot->version();
      total_users = snapshot->num_users();
    }
    std::fprintf(stderr,
                 "wot_served: %s boot v%llu from %s (%zu users, %llu "
                 "wal records replayed, fsync=%s)\n",
                 durable.recovered ? "durable-recovery" : "durable-fresh",
                 static_cast<unsigned long long>(version),
                 data_dir.c_str(), total_users,
                 static_cast<unsigned long long>(durable.replayed_records),
                 storage::FsyncPolicyName(fsync_policy.ValueOrDie()));
  } else if (shards == 1) {
    Result<Dataset> dataset = BootDataset(data, users, seed);
    if (!dataset.ok()) return Fail(dataset.status());
    Result<std::unique_ptr<TrustService>> booted =
        TrustService::Create(dataset.ValueOrDie());
    if (!booted.ok()) return Fail(booted.status());
    service = std::move(booted).ValueOrDie();
    plain_frontend = std::make_unique<api::ServiceFrontend>(service.get());
    frontend = plain_frontend.get();
    std::shared_ptr<const TrustSnapshot> snapshot = service->Snapshot();
    std::fprintf(stderr,
                 "wot_served: boot snapshot v%llu (protocol v%lld, %zu "
                 "users, %zu categories, %zu ratings)\n",
                 static_cast<unsigned long long>(snapshot->version()),
                 static_cast<long long>(api::kProtocolVersion),
                 snapshot->num_users(), snapshot->num_categories(),
                 snapshot->num_ratings());
  } else {
    Result<Dataset> dataset = BootDataset(data, users, seed);
    if (!dataset.ok()) return Fail(dataset.status());
    Result<std::unique_ptr<api::ShardRouter>> booted =
        api::ShardRouter::Create(dataset.ValueOrDie(),
                                 static_cast<size_t>(shards));
    if (!booted.ok()) return Fail(booted.status());
    router = std::move(booted).ValueOrDie();
    frontend = router.get();
    size_t total_users = 0;
    size_t total_ratings = 0;
    for (size_t s = 0; s < router->num_shards(); ++s) {
      std::shared_ptr<const TrustSnapshot> snapshot =
          router->shard_service(s)->Snapshot();
      total_users += snapshot->num_users();
      total_ratings += snapshot->num_ratings();
    }
    std::fprintf(stderr,
                 "wot_served: boot epoch %llu over %zu shards (protocol "
                 "v%lld, %zu users, %zu ratings kept)\n",
                 static_cast<unsigned long long>(router->epoch()),
                 router->num_shards(),
                 static_cast<long long>(api::kProtocolVersion),
                 total_users, total_ratings);
  }
  // A durable primary (any server with a --data_dir that is not itself
  // a replica) serves repl_fetch so followers can bootstrap from its
  // segments and stream its WAL; a promoted replica already serves it
  // through its own ReplicaService.
  if (!data_dir.empty() && replica == nullptr) {
    replication::ReplicationSource::VersionProvider provider;
    if (durable.router != nullptr) {
      api::ShardRouter* shard_router = durable.router.get();
      provider = [shard_router](int64_t shard) {
        return shard_router->shard_service(static_cast<size_t>(shard))
            ->Snapshot()
            ->version();
      };
    } else {
      TrustService* durable_service = durable.service.get();
      provider = [durable_service](int64_t) {
        return durable_service->Snapshot()->version();
      };
    }
    repl_source = std::make_unique<replication::ReplicationSource>(
        data_dir, static_cast<size_t>(shards), std::move(provider));
    frontend->set_replication_handler(repl_source.get());
    frontend->AddMetricsSource(repl_source->metrics_registry());
  }
  if (!replicas_spec.empty()) {
    api::ShardRouter* target =
        durable.router != nullptr ? durable.router.get() : router.get();
    if (target == nullptr) {
      return Fail(Status::InvalidArgument(
          "--replicas requires a sharded primary (--shards >= 2)\n" +
          flags.Usage()));
    }
    for (const std::string& entry : Split(replicas_spec, ',')) {
      if (entry.empty()) continue;
      const size_t eq = entry.find('=');
      Result<int64_t> shard_id =
          eq == std::string::npos
              ? Result<int64_t>(Status::InvalidArgument("missing '='"))
              : ParseInt64(entry.substr(0, eq));
      if (!shard_id.ok() || shard_id.ValueOrDie() < 0 ||
          shard_id.ValueOrDie() >= shards ||
          eq + 1 >= entry.size()) {
        return Fail(Status::InvalidArgument(
            "--replicas entry '" + entry +
            "' is not SHARD=ADDRESS with 0 <= SHARD < " +
            std::to_string(shards) + "\n" + flags.Usage()));
      }
      const std::string address = entry.substr(eq + 1);
      target->AddReplica(
          static_cast<size_t>(shard_id.ValueOrDie()),
          replication::ClientReplicaHandle::ForAddress(address));
      std::fprintf(stderr,
                   "wot_served: replica %s attached to shard %lld\n",
                   address.c_str(),
                   static_cast<long long>(shard_id.ValueOrDie()));
    }
    target->set_write_quorum(static_cast<size_t>(write_quorum));
  }
  std::vector<Listener> listeners;
  if (!socket_path.empty()) {
    Result<int> fd = api::ListenUnixSocket(socket_path, /*backlog=*/64);
    if (!fd.ok()) return Fail(fd.status());
    listeners.push_back({"unix socket " + socket_path, fd.ValueOrDie()});
  }
  if (!listen_hostport.empty()) {
    std::string bound;
    Result<int> fd =
        api::ListenTcpSocket(listen_hostport, /*backlog=*/64, &bound);
    if (!fd.ok()) return Fail(fd.status());
    listeners.push_back({"tcp " + bound, fd.ValueOrDie()});
  }
  frontend->set_slow_request_threshold_millis(slow_request_ms);
  if (!listeners.empty()) {
    return ServeListeners(frontend, listeners, threads, wire.ValueOrDie(),
                          metrics_interval_secs);
  }
  return ServeStdio(frontend, threads, wire.ValueOrDie(),
                    metrics_interval_secs);
}

}  // namespace
}  // namespace wot

int main(int argc, char** argv) { return wot::Main(argc, argv); }
