// wot_cli — command-line front end to the library.
//
//   wot_cli generate --users 4000 --seed 42 --out community/
//   wot_cli stats    --data community/
//   wot_cli convert  --data community/ --binary community.wotb
//   wot_cli derive   --data community/ --top_k 10 --out derived.csv
//   wot_cli validate --data community/
//   wot_cli query    --data community/ --source alice --top_k 10
//   wot_cli query    --data community/ --source alice --target bob --explain
//
// `--data` accepts either a CSV dataset directory (see
// wot/io/dataset_csv.h) or a .wotb binary file. Users are addressed by
// name or by numeric index. Unknown subcommands and flags exit nonzero
// with a usage message.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "wot/community/stats.h"
#include "wot/eval/density.h"
#include "wot/eval/roc.h"
#include "wot/eval/validation.h"
#include "wot/io/binary_format.h"
#include "wot/io/csv.h"
#include "wot/io/dataset_csv.h"
#include "wot/service/trust_service.h"
#include "wot/synth/generator.h"
#include "wot/util/flags.h"
#include "wot/util/string_util.h"

namespace wot {
namespace {

Result<Dataset> LoadAny(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("--data is required");
  }
  if (std::filesystem::is_directory(path)) {
    return LoadDatasetCsv(path);
  }
  return LoadDatasetBinary(path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Subcommand-local early exit: print the error and return exit code 1.
#define WOT_RETURN_IF_ERROR_CLI(expr)               \
  do {                                              \
    ::wot::Status _wot_cli_status = (expr);         \
    if (!_wot_cli_status.ok()) {                    \
      return Fail(_wot_cli_status);                 \
    }                                               \
  } while (false)

int CmdGenerate(int argc, char** argv) {
  int64_t users = 4000;
  int64_t seed = 42;
  std::string out;
  std::string binary;
  FlagParser flags("wot_cli generate",
                   "Generate a synthetic Epinions-shaped community");
  flags.AddInt64("users", &users, "community size");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddString("out", &out, "CSV dataset directory to write");
  flags.AddString("binary", &binary, ".wotb file to write");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  if (out.empty() && binary.empty()) {
    return Fail(Status::InvalidArgument("need --out and/or --binary"));
  }
  SynthConfig config;
  config.num_users = static_cast<size_t>(users);
  config.seed = static_cast<uint64_t>(seed);
  Result<SynthCommunity> community = GenerateCommunity(config);
  if (!community.ok()) return Fail(community.status());
  const Dataset& dataset = community.ValueOrDie().dataset;
  std::printf("%s\n", dataset.Summary().c_str());
  if (!out.empty()) {
    Status s = SaveDatasetCsv(dataset, out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote CSV dataset to %s\n", out.c_str());
  }
  if (!binary.empty()) {
    Status s = SaveDatasetBinary(dataset, binary);
    if (!s.ok()) return Fail(s);
    std::printf("wrote binary dataset to %s\n", binary.c_str());
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  std::string data;
  FlagParser flags("wot_cli stats", "Describe a dataset");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());
  DatasetIndices indices(dataset.ValueOrDie());
  std::printf("%s",
              ComputeDatasetStats(dataset.ValueOrDie(), indices)
                  .ToString()
                  .c_str());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  std::string data;
  std::string out;
  std::string binary;
  FlagParser flags("wot_cli convert",
                   "Convert between the CSV directory and binary formats");
  flags.AddString("data", &data, "input: dataset directory or .wotb file");
  flags.AddString("out", &out, "output CSV dataset directory");
  flags.AddString("binary", &binary, "output .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());
  if (out.empty() && binary.empty()) {
    return Fail(Status::InvalidArgument("need --out and/or --binary"));
  }
  if (!out.empty()) {
    Status s = SaveDatasetCsv(dataset.ValueOrDie(), out);
    if (!s.ok()) return Fail(s);
  }
  if (!binary.empty()) {
    Status s = SaveDatasetBinary(dataset.ValueOrDie(), binary);
    if (!s.ok()) return Fail(s);
  }
  std::printf("converted %s\n", dataset.ValueOrDie().Summary().c_str());
  return 0;
}

int CmdDerive(int argc, char** argv) {
  std::string data;
  std::string out = "derived_trust.csv";
  int64_t top_k = 10;
  FlagParser flags("wot_cli derive",
                   "Derive the web of trust and export each user's top-k "
                   "trustees");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  flags.AddString("out", &out, "output CSV (source,target,degree)");
  flags.AddInt64("top_k", &top_k, "trustees to keep per user");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  if (top_k <= 0) {
    return Fail(Status::InvalidArgument("--top_k must be positive"));
  }
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<TrustPipeline> pipeline = TrustPipeline::Run(dataset.ValueOrDie());
  if (!pipeline.ok()) return Fail(pipeline.status());
  TrustDeriver deriver = pipeline.ValueOrDie().MakeDeriver();
  deriver.BuildPostings();

  std::vector<CsvRow> rows = {{"source", "target", "degree_of_trust"}};
  const Dataset& ds = dataset.ValueOrDie();
  for (size_t u = 0; u < ds.num_users(); ++u) {
    for (const auto& scored :
         deriver.DeriveRowTopK(u, static_cast<size_t>(top_k))) {
      rows.push_back({ds.user(UserId(static_cast<uint32_t>(u))).name,
                      ds.user(UserId(scored.user)).name,
                      FormatDouble(scored.score, 6)});
    }
  }
  Status s = WriteCsvFile(out, rows);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu derived trust edges to %s\n", rows.size() - 1,
              out.c_str());
  return 0;
}

int CmdValidate(int argc, char** argv) {
  std::string data;
  FlagParser flags("wot_cli validate",
                   "Validate the derived web against the dataset's "
                   "explicit trust statements (Table-4 protocol)");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<TrustPipeline> pipeline = TrustPipeline::Run(dataset.ValueOrDie());
  if (!pipeline.ok()) return Fail(pipeline.status());
  Result<ValidationReport> report =
      ValidateDerivedTrust(pipeline.ValueOrDie());
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report.ValueOrDie().ToString().c_str());

  TrustDeriver deriver = pipeline.ValueOrDie().MakeDeriver();
  Result<RocReport> roc = RocOfDerivedTrust(
      deriver, pipeline.ValueOrDie().direct_connections(),
      pipeline.ValueOrDie().explicit_trust());
  if (roc.ok()) {
    std::printf("\nROC of T-hat over R: %s\n",
                roc.ValueOrDie().ToString().c_str());
  }
  return 0;
}

// Resolves \p who as a user name or a numeric user index.
Result<UserId> ResolveUser(const Dataset& dataset, const std::string& who) {
  if (who.empty()) {
    return Status::InvalidArgument("empty user reference");
  }
  Result<int64_t> as_index = ParseInt64(who);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= dataset.num_users()) {
      return Status::NotFound("user index " + who + " out of range [0, " +
                              std::to_string(dataset.num_users()) + ")");
    }
    return UserId(static_cast<uint32_t>(index));
  }
  for (const auto& user : dataset.users()) {
    if (user.name == who) {
      return user.id;
    }
  }
  return Status::NotFound("no user named '" + who + "'");
}

int CmdQuery(int argc, char** argv) {
  std::string data;
  std::string source;
  std::string target;
  int64_t top_k = 10;
  bool explain = false;
  FlagParser flags("wot_cli query",
                   "Serve trust queries through TrustService: top-k "
                   "trustees of --source, or the derived degree (and, with "
                   "--explain, its per-category breakdown) for --source "
                   "--target");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  flags.AddString("source", &source, "truster: user name or index");
  flags.AddString("target", &target,
                  "trustee: user name or index (omit for top-k mode)");
  flags.AddInt64("top_k", &top_k, "trustees to list in top-k mode");
  flags.AddBool("explain", &explain,
                "print the per-category contribution breakdown");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  if (source.empty()) {
    return Fail(Status::InvalidArgument("--source is required\n" +
                                        flags.Usage()));
  }
  if (top_k <= 0) {
    return Fail(Status::InvalidArgument("--top_k must be positive"));
  }
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());
  const Dataset& ds = dataset.ValueOrDie();

  Result<UserId> from = ResolveUser(ds, source);
  if (!from.ok()) return Fail(from.status());

  Result<std::unique_ptr<TrustService>> service = TrustService::Create(ds);
  if (!service.ok()) return Fail(service.status());
  std::shared_ptr<const TrustSnapshot> snapshot =
      service.ValueOrDie()->Snapshot();
  std::printf("serving snapshot v%llu: %zu users, %zu categories, %zu "
              "ratings\n",
              static_cast<unsigned long long>(snapshot->version()),
              snapshot->num_users(), snapshot->num_categories(),
              snapshot->num_ratings());

  if (target.empty()) {
    std::printf("top-%lld trustees of %s:\n",
                static_cast<long long>(top_k),
                ds.user(from.ValueOrDie()).name.c_str());
    for (const auto& scored : snapshot->TopK(
             from.ValueOrDie().index(), static_cast<size_t>(top_k))) {
      std::printf("  %-24s %.6f\n",
                  ds.user(UserId(scored.user)).name.c_str(), scored.score);
    }
    return 0;
  }

  Result<UserId> to = ResolveUser(ds, target);
  if (!to.ok()) return Fail(to.status());
  const size_t i = from.ValueOrDie().index();
  const size_t j = to.ValueOrDie().index();
  std::printf("T-hat(%s -> %s) = %.6f\n",
              ds.user(from.ValueOrDie()).name.c_str(),
              ds.user(to.ValueOrDie()).name.c_str(), snapshot->Trust(i, j));
  if (explain) {
    TrustExplanation explanation = snapshot->ExplainTrust(i, j);
    std::printf("  affinity sum: %.6f\n", explanation.affinity_sum);
    for (const auto& term : explanation.terms) {
      std::printf("  %-24s A=%.4f  E=%.4f  contributes %.6f\n",
                  ds.category(CategoryId(term.category)).name.c_str(),
                  term.affiliation, term.expertise, term.contribution);
    }
    if (explanation.terms.empty()) {
      std::printf("  (no active categories: %s has no rating/review "
                  "history)\n",
                  ds.user(from.ValueOrDie()).name.c_str());
    }
  }
  return 0;
}

void PrintUsage() {
  std::printf(
      "wot_cli <command> [flags]\n\n"
      "commands:\n"
      "  generate   create a synthetic community dataset\n"
      "  stats      describe a dataset\n"
      "  convert    CSV directory <-> .wotb binary\n"
      "  derive     derive the web of trust, export top-k per user\n"
      "  validate   Table-4 validation against explicit trust\n"
      "  query      serve trust queries (top-k / pairwise / --explain)\n\n"
      "run `wot_cli <command> --help` for the command's flags.\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  std::string command = argv[1];
  // Shift argv so FlagParser sees only the command's flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv);
  if (command == "derive") return CmdDerive(sub_argc, sub_argv);
  if (command == "validate") return CmdValidate(sub_argc, sub_argv);
  if (command == "query") return CmdQuery(sub_argc, sub_argv);
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace wot

int main(int argc, char** argv) { return wot::Main(argc, argv); }
