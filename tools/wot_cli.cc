// wot_cli — command-line front end to the library.
//
//   wot_cli generate --users 4000 --seed 42 --out community/
//   wot_cli stats    --data community/
//   wot_cli convert  --data community/ --binary community.wotb
//   wot_cli derive   --data community/ --top_k 10 --out derived.csv
//   wot_cli validate --data community/
//   wot_cli query    --data community/ --source alice --top_k 10
//   wot_cli query    --data community/ --source alice --target bob --explain
//   wot_cli query    --connect /tmp/wot.sock --source alice --top_k 10
//
// `--data` accepts either a CSV dataset directory (see
// wot/io/dataset_csv.h) or a .wotb binary file. Users are addressed by
// name or by numeric index. Unknown subcommands and flags exit nonzero
// with a usage message.
//
// `query` is a thin client of the versioned API (wot/api): with --connect
// it talks NDJSON to a resident `wot_served --socket` process, otherwise
// it boots an in-process service and dispatches through the very same
// ServiceFrontend, so both paths return identical responses.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <variant>

#include "wot/api/client.h"
#include "wot/api/shard_router.h"
#include "wot/community/stats.h"
#include "wot/eval/density.h"
#include "wot/eval/roc.h"
#include "wot/eval/validation.h"
#include "wot/io/binary_format.h"
#include "wot/io/csv.h"
#include "wot/io/dataset_csv.h"
#include "wot/service/trust_service.h"
#include "wot/storage/durable_boot.h"
#include "wot/storage/segment.h"
#include "wot/storage/storage_manager.h"
#include "wot/storage/wal.h"
#include "wot/synth/generator.h"
#include "wot/util/flags.h"
#include "wot/util/string_util.h"
#include "wot/util/table_printer.h"

namespace wot {
namespace {

Result<Dataset> LoadAny(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("--data is required");
  }
  if (std::filesystem::is_directory(path)) {
    return LoadDatasetCsv(path);
  }
  return LoadDatasetBinary(path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Subcommand-local early exit: print the error and return exit code 1.
#define WOT_RETURN_IF_ERROR_CLI(expr)               \
  do {                                              \
    ::wot::Status _wot_cli_status = (expr);         \
    if (!_wot_cli_status.ok()) {                    \
      return Fail(_wot_cli_status);                 \
    }                                               \
  } while (false)

int CmdGenerate(int argc, char** argv) {
  int64_t users = 4000;
  int64_t seed = 42;
  std::string out;
  std::string binary;
  FlagParser flags("wot_cli generate",
                   "Generate a synthetic Epinions-shaped community");
  flags.AddInt64("users", &users, "community size");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddString("out", &out, "CSV dataset directory to write");
  flags.AddString("binary", &binary, ".wotb file to write");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  if (out.empty() && binary.empty()) {
    return Fail(Status::InvalidArgument("need --out and/or --binary"));
  }
  SynthConfig config;
  config.num_users = static_cast<size_t>(users);
  config.seed = static_cast<uint64_t>(seed);
  Result<SynthCommunity> community = GenerateCommunity(config);
  if (!community.ok()) return Fail(community.status());
  const Dataset& dataset = community.ValueOrDie().dataset;
  std::printf("%s\n", dataset.Summary().c_str());
  if (!out.empty()) {
    Status s = SaveDatasetCsv(dataset, out);
    if (!s.ok()) return Fail(s);
    std::printf("wrote CSV dataset to %s\n", out.c_str());
  }
  if (!binary.empty()) {
    Status s = SaveDatasetBinary(dataset, binary);
    if (!s.ok()) return Fail(s);
    std::printf("wrote binary dataset to %s\n", binary.c_str());
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  std::string data;
  FlagParser flags("wot_cli stats", "Describe a dataset");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());
  DatasetIndices indices(dataset.ValueOrDie());
  std::printf("%s",
              ComputeDatasetStats(dataset.ValueOrDie(), indices)
                  .ToString()
                  .c_str());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  std::string data;
  std::string out;
  std::string binary;
  FlagParser flags("wot_cli convert",
                   "Convert between the CSV directory and binary formats");
  flags.AddString("data", &data, "input: dataset directory or .wotb file");
  flags.AddString("out", &out, "output CSV dataset directory");
  flags.AddString("binary", &binary, "output .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());
  if (out.empty() && binary.empty()) {
    return Fail(Status::InvalidArgument("need --out and/or --binary"));
  }
  if (!out.empty()) {
    Status s = SaveDatasetCsv(dataset.ValueOrDie(), out);
    if (!s.ok()) return Fail(s);
  }
  if (!binary.empty()) {
    Status s = SaveDatasetBinary(dataset.ValueOrDie(), binary);
    if (!s.ok()) return Fail(s);
  }
  std::printf("converted %s\n", dataset.ValueOrDie().Summary().c_str());
  return 0;
}

int CmdDerive(int argc, char** argv) {
  std::string data;
  std::string out = "derived_trust.csv";
  int64_t top_k = 10;
  FlagParser flags("wot_cli derive",
                   "Derive the web of trust and export each user's top-k "
                   "trustees");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  flags.AddString("out", &out, "output CSV (source,target,degree)");
  flags.AddInt64("top_k", &top_k, "trustees to keep per user");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  if (top_k <= 0) {
    return Fail(Status::InvalidArgument("--top_k must be positive"));
  }
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<TrustPipeline> pipeline = TrustPipeline::Run(dataset.ValueOrDie());
  if (!pipeline.ok()) return Fail(pipeline.status());
  TrustDeriver deriver = pipeline.ValueOrDie().MakeDeriver();
  deriver.BuildPostings();

  std::vector<CsvRow> rows = {{"source", "target", "degree_of_trust"}};
  const Dataset& ds = dataset.ValueOrDie();
  for (size_t u = 0; u < ds.num_users(); ++u) {
    for (const auto& scored :
         deriver.DeriveRowTopK(u, static_cast<size_t>(top_k))) {
      rows.push_back({ds.user(UserId(static_cast<uint32_t>(u))).name,
                      ds.user(UserId(scored.user)).name,
                      FormatDouble(scored.score, 6)});
    }
  }
  Status s = WriteCsvFile(out, rows);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu derived trust edges to %s\n", rows.size() - 1,
              out.c_str());
  return 0;
}

int CmdValidate(int argc, char** argv) {
  std::string data;
  FlagParser flags("wot_cli validate",
                   "Validate the derived web against the dataset's "
                   "explicit trust statements (Table-4 protocol)");
  flags.AddString("data", &data, "dataset directory or .wotb file");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<Dataset> dataset = LoadAny(data);
  if (!dataset.ok()) return Fail(dataset.status());

  Result<TrustPipeline> pipeline = TrustPipeline::Run(dataset.ValueOrDie());
  if (!pipeline.ok()) return Fail(pipeline.status());
  Result<ValidationReport> report =
      ValidateDerivedTrust(pipeline.ValueOrDie());
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report.ValueOrDie().ToString().c_str());

  TrustDeriver deriver = pipeline.ValueOrDie().MakeDeriver();
  Result<RocReport> roc = RocOfDerivedTrust(
      deriver, pipeline.ValueOrDie().direct_connections(),
      pipeline.ValueOrDie().explicit_trust());
  if (roc.ok()) {
    std::printf("\nROC of T-hat over R: %s\n",
                roc.ValueOrDie().ToString().c_str());
  }
  return 0;
}

// Calls one API method through \p client and unwraps the three failure
// layers (transport, ApiStatus, payload type) into one Result.
template <typename ResultT>
Result<ResultT> CallApi(api::ApiClient* client,
                        api::RequestPayload payload) {
  api::Request request;
  request.payload = std::move(payload);
  Result<api::Response> response = client->Call(request);
  if (!response.ok()) return response.status();
  const api::Response& reply = response.ValueOrDie();
  if (!reply.status.ok()) return api::ToStatus(reply.status);
  const ResultT* typed = std::get_if<ResultT>(&reply.payload);
  if (typed == nullptr) {
    return Status::Internal("unexpected response payload for method");
  }
  return *typed;
}

int CmdQuery(int argc, char** argv) {
  std::string data;
  std::string connect;
  std::string source;
  std::string target;
  std::string protocol = "ndjson";
  int64_t top_k = 10;
  int64_t shards = 1;
  bool explain = false;
  FlagParser flags("wot_cli query",
                   "Serve trust queries through the versioned API: top-k "
                   "trustees of --source, or the derived degree (and, with "
                   "--explain, its per-category breakdown) for --source "
                   "--target. With --connect, queries go to a resident "
                   "wot_served process instead of booting a service");
  flags.AddString("data", &data,
                  "dataset directory or .wotb file (in-process mode)");
  flags.AddString("connect", &connect,
                  "resident wot_served server: a unix socket path "
                  "(--socket mode) or a TCP host:port (--listen mode; "
                  "detected by ':' with no '/')");
  flags.AddString("source", &source, "truster: user name or index");
  flags.AddString("target", &target,
                  "trustee: user name or index (omit for top-k mode)");
  flags.AddInt64("top_k", &top_k, "trustees to list in top-k mode");
  flags.AddInt64("shards", &shards,
                 "shard the in-process service across this many "
                 "TrustServices behind a ShardRouter (1 = unsharded)");
  flags.AddBool("explain", &explain,
                "print the per-category contribution breakdown");
  flags.AddString("protocol", &protocol,
                  "wire protocol: 'ndjson' (v1 lines) or 'binary' (v2 "
                  "frames). With --connect the socket speaks the chosen "
                  "framing; in-process, binary round-trips every call "
                  "through the v2 codec");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<api::WireProtocol> wire = api::WireProtocolFromName(protocol);
  if (!wire.ok()) {
    return Fail(Status::InvalidArgument(wire.status().ToString() + "\n" +
                                        flags.Usage()));
  }
  if (source.empty()) {
    return Fail(Status::InvalidArgument("--source is required\n" +
                                        flags.Usage()));
  }
  if (top_k <= 0) {
    return Fail(Status::InvalidArgument("--top_k must be positive"));
  }
  if (shards <= 0) {
    return Fail(Status::InvalidArgument("--shards must be positive"));
  }
  if (!connect.empty() && !data.empty()) {
    return Fail(Status::InvalidArgument(
        "--connect and --data are mutually exclusive"));
  }
  if (!connect.empty() && shards != 1) {
    return Fail(Status::InvalidArgument(
        "--shards applies to the in-process service; the resident "
        "server picks its own sharding"));
  }

  // Pick the transport; everything after this line is transport-agnostic.
  std::unique_ptr<TrustService> service;
  std::unique_ptr<api::Frontend> frontend;
  std::unique_ptr<api::ApiClient> client;
  if (!connect.empty()) {
    // A ':' with no '/' reads as TCP host:port; anything else is a unix
    // socket path (paths with directories always contain '/').
    bool tcp = connect.find(':') != std::string::npos &&
               connect.find('/') == std::string::npos;
    Result<std::unique_ptr<api::SocketClient>> socket =
        tcp ? api::SocketClient::ConnectTcp(connect, wire.ValueOrDie())
            : api::SocketClient::Connect(connect, wire.ValueOrDie());
    if (!socket.ok()) return Fail(socket.status());
    client = std::move(socket).ValueOrDie();
  } else {
    Result<Dataset> dataset = LoadAny(data);
    if (!dataset.ok()) return Fail(dataset.status());
    if (shards == 1) {
      Result<std::unique_ptr<TrustService>> booted =
          TrustService::Create(dataset.ValueOrDie());
      if (!booted.ok()) return Fail(booted.status());
      service = std::move(booted).ValueOrDie();
      frontend = std::make_unique<api::ServiceFrontend>(service.get());
    } else {
      Result<std::unique_ptr<api::ShardRouter>> booted =
          api::ShardRouter::Create(dataset.ValueOrDie(),
                                   static_cast<size_t>(shards));
      if (!booted.ok()) return Fail(booted.status());
      frontend = std::move(booted).ValueOrDie();
    }
    // NDJSON loopback dispatches structs directly (the historical
    // behavior); binary proves the v2 codec end to end by round-tripping
    // every call through it.
    const bool through_codec =
        wire.ValueOrDie() == api::WireProtocol::kBinary;
    client = std::make_unique<api::LoopbackClient>(
        frontend.get(), through_codec, wire.ValueOrDie());
  }

  Result<api::StatsResult> stats =
      CallApi<api::StatsResult>(client.get(), api::StatsRequest{});
  if (!stats.ok()) return Fail(stats.status());
  std::printf("serving snapshot v%llu: %lld users, %lld categories, %lld "
              "ratings\n",
              static_cast<unsigned long long>(
                  stats.ValueOrDie().snapshot_version),
              static_cast<long long>(stats.ValueOrDie().users),
              static_cast<long long>(stats.ValueOrDie().categories),
              static_cast<long long>(stats.ValueOrDie().ratings));

  if (target.empty()) {
    Result<api::TopKResult> topk = CallApi<api::TopKResult>(
        client.get(), api::TopKQuery{source, top_k});
    if (!topk.ok()) return Fail(topk.status());
    std::printf("top-%lld trustees of %s:\n",
                static_cast<long long>(top_k),
                topk.ValueOrDie().source_name.c_str());
    for (const api::ScoredUserEntry& entry :
         topk.ValueOrDie().trustees) {
      std::printf("  %-24s %.6f\n", entry.name.c_str(), entry.score);
    }
    return 0;
  }

  if (!explain) {
    Result<api::TrustResult> trust = CallApi<api::TrustResult>(
        client.get(), api::TrustQuery{source, target});
    if (!trust.ok()) return Fail(trust.status());
    std::printf("T-hat(%s -> %s) = %.6f\n",
                trust.ValueOrDie().source_name.c_str(),
                trust.ValueOrDie().target_name.c_str(),
                trust.ValueOrDie().trust);
    return 0;
  }

  Result<api::ExplainResult> explained = CallApi<api::ExplainResult>(
      client.get(), api::ExplainQuery{source, target});
  if (!explained.ok()) return Fail(explained.status());
  const api::ExplainResult& breakdown = explained.ValueOrDie();
  std::printf("T-hat(%s -> %s) = %.6f\n", breakdown.source_name.c_str(),
              breakdown.target_name.c_str(), breakdown.trust);
  std::printf("  affinity sum: %.6f\n", breakdown.affinity_sum);
  for (const api::ExplainTermResult& term : breakdown.terms) {
    std::printf("  %-24s A=%.4f  E=%.4f  contributes %.6f\n",
                term.category_name.c_str(), term.affiliation,
                term.expertise, term.contribution);
  }
  if (breakdown.terms.empty()) {
    std::printf("  (no active categories: %s has no rating/review "
                "history)\n",
                breakdown.source_name.c_str());
  }
  return 0;
}

int CmdMetrics(int argc, char** argv) {
  std::string data;
  std::string connect;
  std::string protocol = "ndjson";
  int64_t shards = 1;
  FlagParser flags(
      "wot_cli metrics",
      "Scrape the telemetry registry through the versioned API and "
      "render it as tables: counters, gauges, and latency-histogram "
      "quantiles (nanoseconds for *_ns metrics; see "
      "docs/observability.md for the catalog). With --connect the "
      "scrape hits a resident wot_served process; otherwise an "
      "in-process service is booted (its counters show just this "
      "invocation's traffic)");
  flags.AddString("data", &data,
                  "dataset directory or .wotb file (in-process mode)");
  flags.AddString("connect", &connect,
                  "resident wot_served server: a unix socket path or a "
                  "TCP host:port (detected by ':' with no '/')");
  flags.AddInt64("shards", &shards,
                 "shard the in-process service across this many "
                 "TrustServices behind a ShardRouter (1 = unsharded)");
  flags.AddString("protocol", &protocol,
                  "wire protocol: 'ndjson' (v1 lines) or 'binary' (v2 "
                  "frames)");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc, argv));
  Result<api::WireProtocol> wire = api::WireProtocolFromName(protocol);
  if (!wire.ok()) {
    return Fail(Status::InvalidArgument(wire.status().ToString() + "\n" +
                                        flags.Usage()));
  }
  if (shards <= 0) {
    return Fail(Status::InvalidArgument("--shards must be positive"));
  }
  if (!connect.empty() && !data.empty()) {
    return Fail(Status::InvalidArgument(
        "--connect and --data are mutually exclusive"));
  }
  if (connect.empty() && data.empty()) {
    return Fail(Status::InvalidArgument(
        "need --connect (resident server) or --data (in-process)\n" +
        flags.Usage()));
  }
  if (!connect.empty() && shards != 1) {
    return Fail(Status::InvalidArgument(
        "--shards applies to the in-process service; the resident "
        "server picks its own sharding"));
  }

  std::unique_ptr<TrustService> service;
  std::unique_ptr<api::Frontend> frontend;
  std::unique_ptr<api::ApiClient> client;
  if (!connect.empty()) {
    bool tcp = connect.find(':') != std::string::npos &&
               connect.find('/') == std::string::npos;
    Result<std::unique_ptr<api::SocketClient>> socket =
        tcp ? api::SocketClient::ConnectTcp(connect, wire.ValueOrDie())
            : api::SocketClient::Connect(connect, wire.ValueOrDie());
    if (!socket.ok()) return Fail(socket.status());
    client = std::move(socket).ValueOrDie();
  } else {
    Result<Dataset> dataset = LoadAny(data);
    if (!dataset.ok()) return Fail(dataset.status());
    if (shards == 1) {
      Result<std::unique_ptr<TrustService>> booted =
          TrustService::Create(dataset.ValueOrDie());
      if (!booted.ok()) return Fail(booted.status());
      service = std::move(booted).ValueOrDie();
      frontend = std::make_unique<api::ServiceFrontend>(service.get());
    } else {
      Result<std::unique_ptr<api::ShardRouter>> booted =
          api::ShardRouter::Create(dataset.ValueOrDie(),
                                   static_cast<size_t>(shards));
      if (!booted.ok()) return Fail(booted.status());
      frontend = std::move(booted).ValueOrDie();
    }
    const bool through_codec =
        wire.ValueOrDie() == api::WireProtocol::kBinary;
    client = std::make_unique<api::LoopbackClient>(
        frontend.get(), through_codec, wire.ValueOrDie());
  }

  Result<api::MetricsResult> scraped =
      CallApi<api::MetricsResult>(client.get(), api::MetricsRequest{});
  if (!scraped.ok()) return Fail(scraped.status());
  const api::MetricsResult& metrics = scraped.ValueOrDie();
  std::printf("telemetry snapshot (epoch %llu)\n\n",
              static_cast<unsigned long long>(metrics.snapshot_version));

  TablePrinter counters({"counter", "value"});
  for (const api::MetricValue& counter : metrics.counters) {
    counters.AddRow({counter.name, std::to_string(counter.value)});
  }
  counters.Print(std::cout);
  std::printf("\n");

  TablePrinter gauges({"gauge", "value"});
  for (const api::MetricValue& gauge : metrics.gauges) {
    gauges.AddRow({gauge.name, std::to_string(gauge.value)});
  }
  gauges.Print(std::cout);
  std::printf("\n");

  // Histogram values are raw samples — nanoseconds for *_ns metrics,
  // plain counts for the width/size histograms.
  TablePrinter histograms({"histogram", "count", "min", "p50", "p90",
                           "p99", "p99.9", "max"});
  for (const api::MetricHistogramValue& h : metrics.histograms) {
    histograms.AddRow({h.name, std::to_string(h.count),
                       std::to_string(h.min), FormatDouble(h.p50, 1),
                       FormatDouble(h.p90, 1), FormatDouble(h.p99, 1),
                       FormatDouble(h.p999, 1), std::to_string(h.max)});
  }
  histograms.Print(std::cout);
  return 0;
}

const char* ReplRoleName(int64_t role) {
  switch (role) {
    case static_cast<int64_t>(api::ReplRole::kPrimary):
      return "primary";
    case static_cast<int64_t>(api::ReplRole::kReplica):
      return "replica";
    case static_cast<int64_t>(api::ReplRole::kRouter):
      return "router";
  }
  return "unknown";
}

int PrintReplStatus(const api::ReplStatusResult& status) {
  std::printf("role: %s\n", ReplRoleName(status.role));
  std::printf("applied version: %llu\n",
              static_cast<unsigned long long>(status.applied_version));
  std::printf("source version:  %llu\n",
              static_cast<unsigned long long>(status.source_version));
  if (status.source_version >= status.applied_version) {
    std::printf("lag: %llu epochs\n",
                static_cast<unsigned long long>(status.source_version -
                                                status.applied_version));
  }
  std::printf("failovers: %lld\n",
              static_cast<long long>(status.failovers));
  if (!status.replicas.empty()) {
    std::printf("\n");
    TablePrinter replicas({"shard", "address", "applied", "healthy"});
    for (const api::ReplReplicaInfo& info : status.replicas) {
      replicas.AddRow({std::to_string(info.shard), info.address,
                       std::to_string(info.applied_version),
                       info.healthy != 0 ? "yes" : "NO"});
    }
    replicas.Print(std::cout);
  }
  return 0;
}

int CmdReplica(int argc, char** argv) {
  const char* usage =
      "usage: wot_cli replica status|promote --connect ADDR\n\n"
      "status   report the server's replication role, applied/source\n"
      "         versions, failover count, and (on a router) its\n"
      "         per-shard replica sets\n"
      "promote  promote a replica to primary: stop following, drain\n"
      "         the remaining WAL delta, start accepting writes and\n"
      "         serving repl_fetch to other followers\n";
  if (argc < 2 || (std::strcmp(argv[1], "status") != 0 &&
                   std::strcmp(argv[1], "promote") != 0)) {
    std::fprintf(stderr, "%s", usage);
    return 1;
  }
  const bool promote = std::strcmp(argv[1], "promote") == 0;
  std::string connect;
  std::string protocol = "ndjson";
  FlagParser flags(
      promote ? "wot_cli replica promote" : "wot_cli replica status",
      promote ? "Promote the connected replica to primary (quorum-gated "
                "failover: the operator — or an orchestrator — picks the "
                "replica with the highest applied version, sees `wot_cli "
                "replica status`)"
              : "Report the connected server's replication role and "
                "progress");
  flags.AddString("connect", &connect,
                  "the server: a unix socket path or a TCP host:port "
                  "(detected by ':' with no '/')");
  flags.AddString("protocol", &protocol,
                  "wire protocol: 'ndjson' (v1 lines) or 'binary' (v2 "
                  "frames)");
  WOT_RETURN_IF_ERROR_CLI(flags.Parse(argc - 1, argv + 1));
  Result<api::WireProtocol> wire = api::WireProtocolFromName(protocol);
  if (!wire.ok()) {
    return Fail(Status::InvalidArgument(wire.status().ToString() + "\n" +
                                        flags.Usage()));
  }
  if (connect.empty()) {
    return Fail(Status::InvalidArgument(
        "--connect is required (replication state lives in a resident "
        "server)\n" +
        flags.Usage()));
  }
  bool tcp = connect.find(':') != std::string::npos &&
             connect.find('/') == std::string::npos;
  Result<std::unique_ptr<api::SocketClient>> socket =
      tcp ? api::SocketClient::ConnectTcp(connect, wire.ValueOrDie())
          : api::SocketClient::Connect(connect, wire.ValueOrDie());
  if (!socket.ok()) return Fail(socket.status());
  std::unique_ptr<api::ApiClient> client = std::move(socket).ValueOrDie();
  Result<api::ReplStatusResult> status =
      promote ? CallApi<api::ReplStatusResult>(client.get(),
                                               api::ReplPromoteRequest{})
              : CallApi<api::ReplStatusResult>(client.get(),
                                               api::ReplStatusRequest{});
  if (!status.ok()) return Fail(status.status());
  if (promote) {
    std::printf("promoted.\n");
  }
  return PrintReplStatus(status.ValueOrDie());
}

// Dumps one storage directory's segments and WALs; returns how many
// files are corrupt. A torn WAL *tail* is recoverable by design (the
// server truncates it at boot) so it is reported but not counted.
int InspectStorageDir(const std::string& dir, const char* indent) {
  Result<storage::StorageFileSet> files = storage::ListStorageFiles(dir);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    return 1;
  }
  const storage::StorageFileSet& set = files.ValueOrDie();
  int corrupt = 0;
  if (set.segments.empty() && set.wals.empty()) {
    std::printf("%s(no storage files)\n", indent);
  }
  for (const storage::StorageFile& segment : set.segments) {
    Result<storage::SegmentInfo> info =
        storage::ReadSegmentInfo(segment.path);
    if (!info.ok()) {
      std::printf("%ssegment v%llu: CORRUPT — %s\n", indent,
                  static_cast<unsigned long long>(segment.number),
                  info.status().message().c_str());
      ++corrupt;
      continue;
    }
    const storage::SegmentInfo& s = info.ValueOrDie();
    std::printf("%ssegment v%llu: ok, %llu bytes (%llu users, %llu "
                "categories, %llu reviews, %llu ratings)\n",
                indent, static_cast<unsigned long long>(s.snapshot_version),
                static_cast<unsigned long long>(s.file_bytes),
                static_cast<unsigned long long>(s.num_users),
                static_cast<unsigned long long>(s.num_categories),
                static_cast<unsigned long long>(s.num_reviews),
                static_cast<unsigned long long>(s.num_ratings));
  }
  for (const storage::StorageFile& wal : set.wals) {
    Result<storage::WalScanStats> scanned =
        storage::ScanWal(wal.path, /*repair=*/false, nullptr);
    if (!scanned.ok()) {
      std::printf("%swal epoch %llu: CORRUPT — %s\n", indent,
                  static_cast<unsigned long long>(wal.number),
                  scanned.status().message().c_str());
      ++corrupt;
      continue;
    }
    const storage::WalScanStats& s = scanned.ValueOrDie();
    std::printf("%swal epoch %llu: %llu records (%llu commits), %llu "
                "valid bytes%s\n",
                indent, static_cast<unsigned long long>(wal.number),
                static_cast<unsigned long long>(s.records),
                static_cast<unsigned long long>(s.commit_records),
                static_cast<unsigned long long>(s.valid_bytes),
                s.truncated_bytes == 0 ? "" : " + torn tail (recoverable)");
    if (s.truncated_bytes > 0) {
      std::printf("%s  torn tail: %llu bytes past the last valid record "
                  "(the server truncates this at boot)\n",
                  indent,
                  static_cast<unsigned long long>(s.truncated_bytes));
    }
  }
  return corrupt;
}

int CmdStorage(int argc, char** argv) {
  const char* usage =
      "usage: wot_cli storage inspect DIR\n\n"
      "Dumps a --data_dir storage directory: every snapshot segment\n"
      "(version, size, entity counts; CRC-verified) and every WAL\n"
      "(record/commit counts, torn-tail diagnosis). Shard\n"
      "subdirectories are walked automatically. Exits nonzero when the\n"
      "directory is missing or any file is corrupt; a torn WAL tail\n"
      "alone is recoverable and exits 0.\n";
  if (argc < 3 || std::strcmp(argv[1], "inspect") != 0) {
    std::fprintf(stderr, "%s", usage);
    return 1;
  }
  const std::string dir = argv[2];
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "error: '%s' is not a directory\n", dir.c_str());
    return 1;
  }
  int corrupt = 0;
  Result<uint32_t> shards = storage::ReadShardMeta(dir);
  if (shards.ok() && shards.ValueOrDie() >= 2) {
    std::printf("%s: %u shards\n", dir.c_str(), shards.ValueOrDie());
    Result<uint64_t> epoch = storage::ReadRouterEpoch(dir);
    if (epoch.ok()) {
      std::printf("  router epoch %llu\n",
                  static_cast<unsigned long long>(epoch.ValueOrDie()));
    } else if (epoch.status().code() != StatusCode::kNotFound) {
      std::printf("  router epoch: CORRUPT — %s\n",
                  epoch.status().message().c_str());
      ++corrupt;
    }
    for (uint32_t s = 0; s < shards.ValueOrDie(); ++s) {
      const std::string shard_dir = dir + "/shard-" + std::to_string(s);
      std::printf("  shard-%u:\n", s);
      corrupt += InspectStorageDir(shard_dir, "    ");
    }
  } else {
    if (!shards.ok() &&
        shards.status().code() != StatusCode::kNotFound) {
      std::printf("%s: meta CORRUPT — %s\n", dir.c_str(),
                  shards.status().message().c_str());
      ++corrupt;
    } else {
      std::printf("%s:\n", dir.c_str());
    }
    corrupt += InspectStorageDir(dir, "  ");
  }
  if (corrupt > 0) {
    std::fprintf(stderr, "error: %d corrupt storage file(s)\n", corrupt);
    return 1;
  }
  return 0;
}

void PrintUsage() {
  std::printf(
      "wot_cli <command> [flags]\n\n"
      "commands:\n"
      "  generate   create a synthetic community dataset\n"
      "  stats      describe a dataset\n"
      "  convert    CSV directory <-> .wotb binary\n"
      "  derive     derive the web of trust, export top-k per user\n"
      "  validate   Table-4 validation against explicit trust\n"
      "  query      serve trust queries (top-k / pairwise / --explain)\n"
      "  metrics    scrape and tabulate a server's telemetry registry\n"
      "  replica    replication status / promote a replica to primary\n"
      "  storage    inspect a --data_dir durable storage directory\n\n"
      "run `wot_cli <command> --help` for the command's flags.\n");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  std::string command = argv[1];
  // Shift argv so FlagParser sees only the command's flags.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv);
  if (command == "derive") return CmdDerive(sub_argc, sub_argv);
  if (command == "validate") return CmdValidate(sub_argc, sub_argv);
  if (command == "query") return CmdQuery(sub_argc, sub_argv);
  if (command == "metrics") return CmdMetrics(sub_argc, sub_argv);
  if (command == "replica") return CmdReplica(sub_argc, sub_argv);
  if (command == "storage") return CmdStorage(sub_argc, sub_argv);
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace wot

int main(int argc, char** argv) { return wot::Main(argc, argv); }
