#!/usr/bin/env python3
"""wot_lint: project-invariant lints clang cannot express.

Checks (see docs/static_analysis.md for the policy behind each):

  source   Text-level invariants over src/wot/ and tools/:
             * mutex    — no naked std::mutex / std::lock_guard /
                          std::unique_lock / std::scoped_lock /
                          std::condition_variable outside
                          src/wot/util/thread_annotations.h. Every lock
                          must be a wot::Mutex so Clang Thread Safety
                          Analysis sees it.
             * stdout   — no stdout writes inside src/wot/ (stdout is
                          wire-protocol territory; diagnostics go to
                          stderr via WOT_LOG). tools/ and bench/ are
                          exempt. A line may carry an explicit waiver
                          marker `wot-lint: allow(stdout)` with a
                          justification; flags.cc's --help contract is
                          the only waiver today.
             * snapshot — TrustSnapshot stays immutable-after-build: its
                          public section declares no non-const,
                          non-static member function.
             * suppress — no WOT_NO_THREAD_SAFETY_ANALYSIS and no
                          thread-safety NOLINT inside
                          src/wot/{service,server,api,util} (the serving
                          stack is proved, not waived).
             * chrono   — no raw std::chrono (or <chrono> include) in
                          src/wot/{server,api,service,storage}: timing
                          in the instrumented layers goes through
                          wot::Stopwatch / telemetry::Timer / WOT_TIMED
                          so every measurement is visible to the metric
                          catalog (docs/observability.md). The telemetry
                          and util layers implement the clock and are
                          exempt.

  headers  Every header under src/wot/ compiles as a standalone
           translation unit (catches missing includes that only stay
           hidden through lucky include order).

  self-test  Seeds one violation per rule into a scratch tree and fails
             unless every seeded violation is flagged — proves the lint
             actually bites before CI trusts a clean run.

Exit status: 0 clean, 1 violations found, 2 usage or internal error.
"""

import argparse
import concurrent.futures
import os
import re
import subprocess
import sys
import tempfile

# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------

SOURCE_EXTENSIONS = (".h", ".cc")


def repo_files(root, subdirs, extensions=SOURCE_EXTENSIONS):
    """Yields repo-relative paths of sources under the given subdirs."""
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines.

    Keeps line numbers stable so violations point at real lines. The
    small state machine is enough for this codebase (no raw strings with
    embedded quotes in the linted dirs).
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            out.append(" " if ch != "\n" else "\n")
        i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line, rule, message):
        self.items.append((path, line, rule, message))

    def report(self, stream=sys.stderr):
        for path, line, rule, message in self.items:
            stream.write(f"{path}:{line}: [{rule}] {message}\n")
        stream.write(f"wot_lint: {len(self.items)} violation(s)\n")


# --------------------------------------------------------------------------
# Rule: mutex — every lock is a wot::Mutex
# --------------------------------------------------------------------------

NAKED_PRIMITIVES = re.compile(
    r"std\s*::\s*(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)

MUTEX_EXEMPT = "src/wot/util/thread_annotations.h"


def check_mutex(root, findings, files=None):
    if files is None:
        files = list(repo_files(root, ["src/wot", "tools"]))
    for rel in files:
        if rel.replace(os.sep, "/") == MUTEX_EXEMPT:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, rel), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            m = NAKED_PRIMITIVES.search(line)
            if m:
                findings.add(rel, lineno, "mutex",
                             f"naked std::{m.group(1)}; use wot::Mutex / "
                             "wot::MutexLock / wot::CondVar from "
                             "wot/util/thread_annotations.h so the "
                             "thread-safety analysis sees the lock")


# --------------------------------------------------------------------------
# Rule: stdout — no stdout writes inside src/wot/
# --------------------------------------------------------------------------

STDOUT_PATTERNS = [
    (re.compile(r"std\s*::\s*cout\b"), "std::cout"),
    # The lookbehind rejects a word character so snprintf/fprintf/fputs
    # (stderr-capable) stay legal while printf/std::printf do not.
    (re.compile(r"(?<!\w)printf\s*\("), "printf"),
    (re.compile(r"(?<!\w)puts\s*\("), "puts"),
    (re.compile(r"(?<!\w)putchar\s*\("), "putchar"),
    (re.compile(r"\bstdout\b"), "stdout"),
]

STDOUT_WAIVER = "wot-lint: allow(stdout)"


def check_stdout(root, findings, files=None):
    if files is None:
        files = list(repo_files(root, ["src/wot"]))
    for rel in files:
        raw_lines = open(os.path.join(root, rel),
                         encoding="utf-8").read().splitlines()
        text = strip_comments_and_strings("\n".join(raw_lines) + "\n")
        for lineno, line in enumerate(text.splitlines(), 1):
            hit = next((name for pattern, name in STDOUT_PATTERNS
                        if pattern.search(line)), None)
            if hit is None:
                continue
            # The waiver marker lives in a comment on the same or the
            # preceding line (comments are stripped, so consult the raw
            # text).
            window = raw_lines[max(0, lineno - 2):lineno]
            if any(STDOUT_WAIVER in raw for raw in window):
                continue
            findings.add(rel, lineno, "stdout",
                         f"stdout write ({hit}) inside src/wot/; stdout "
                         "belongs to the wire protocol — log to stderr "
                         "via WOT_LOG, or move the writer to tools//bench/")


# --------------------------------------------------------------------------
# Rule: snapshot — TrustSnapshot is immutable after construction
# --------------------------------------------------------------------------

SNAPSHOT_HEADER = "src/wot/service/trust_snapshot.h"


def _public_member_functions(class_body):
    """Yields (decl, offset) for member-function declarations in public
    sections of a class body (text already comment/string-stripped)."""
    access_re = re.compile(r"\b(public|protected|private)\s*:")
    # Split the body into access regions. Classes start private.
    regions = []  # (start, end, access)
    access = "private"
    pos = 0
    for m in access_re.finditer(class_body):
        regions.append((pos, m.start(), access))
        access = m.group(1)
        pos = m.end()
    regions.append((pos, len(class_body), access))

    for start, end, acc in regions:
        if acc != "public":
            continue
        region = class_body[start:end]
        # Walk declarations: cut at ';' or at an inline body's '{...}'.
        i = 0
        depth = 0
        decl_start = 0
        while i < len(region):
            ch = region[i]
            if ch == "{":
                if depth == 0:
                    yield region[decl_start:i], start + decl_start
                    # Skip the inline body.
                    body_depth = 1
                    i += 1
                    while i < len(region) and body_depth > 0:
                        if region[i] == "{":
                            body_depth += 1
                        elif region[i] == "}":
                            body_depth -= 1
                        i += 1
                    decl_start = i
                    continue
                depth += 1
            elif ch == "}":
                depth -= 1
            elif ch == ";" and depth == 0:
                yield region[decl_start:i], start + decl_start
                decl_start = i + 1
            elif ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth = max(0, depth - 1)
            i += 1


def _find_class_body(text, class_name):
    m = re.search(r"\bclass\s+" + class_name + r"\b[^;{]*\{", text)
    if m is None:
        return None, 0
    depth = 1
    i = m.end()
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return text[m.end():i - 1], m.end()


def check_snapshot_immutable(root, findings, header=SNAPSHOT_HEADER,
                             class_name="TrustSnapshot"):
    path = os.path.join(root, header)
    if not os.path.exists(path):
        findings.add(header, 1, "snapshot", "header not found")
        return
    raw = open(path, encoding="utf-8").read()
    text = strip_comments_and_strings(raw)
    body, body_offset = _find_class_body(text, class_name)
    if body is None:
        findings.add(header, 1, "snapshot",
                     f"class {class_name} not found")
        return
    for decl, offset in _public_member_functions(body):
        decl_flat = " ".join(decl.split())
        if "(" not in decl_flat:
            continue  # data member / using / typedef
        if re.match(r"(friend|using|typedef|static|template)\b", decl_flat):
            continue
        name_m = re.search(r"(~?\w+|operator\s*[^\s(]+)\s*\(", decl_flat)
        if name_m is None:
            continue
        name = name_m.group(1)
        if name == class_name or name == "~" + class_name:
            continue  # constructor / destructor
        if "= delete" in decl_flat:
            continue
        tail = decl_flat[decl_flat.rfind(")") + 1:]
        if re.search(r"\bconst\b", tail):
            continue  # const-qualified query
        lineno = text[:body_offset + offset].count("\n") + 1
        findings.add(header, lineno, "snapshot",
                     f"public non-const member function '{name}' on "
                     f"{class_name}; snapshots are immutable after "
                     "build — mutators must not exist")


# --------------------------------------------------------------------------
# Rule: suppress — the serving stack is proved, never waived
# --------------------------------------------------------------------------

PROVED_DIRS = ("src/wot/service", "src/wot/server", "src/wot/api",
               "src/wot/util", "src/wot/replication")
SUPPRESSION_PATTERNS = [
    (re.compile(r"\bWOT_NO_THREAD_SAFETY_ANALYSIS\b"),
     "WOT_NO_THREAD_SAFETY_ANALYSIS"),
    (re.compile(r"NOLINT[^\n]*thread-safety"), "thread-safety NOLINT"),
]


def check_suppressions(root, findings, files=None):
    if files is None:
        files = [f for f in repo_files(root, ["src/wot"])
                 if os.path.dirname(f.replace(os.sep, "/")) in PROVED_DIRS]
    for rel in files:
        if rel.replace(os.sep, "/") == MUTEX_EXEMPT:
            continue  # the macro's own definition
        text = open(os.path.join(root, rel), encoding="utf-8").read()
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern, name in SUPPRESSION_PATTERNS:
                if pattern.search(line):
                    findings.add(rel, lineno, "suppress",
                                 f"{name} inside the proved serving "
                                 "stack; fix the locking instead of "
                                 "suppressing the analysis")


# --------------------------------------------------------------------------
# Rule: chrono — instrumented layers time through telemetry, not raw
# std::chrono
# --------------------------------------------------------------------------

CHRONO_DIRS = ("src/wot/server", "src/wot/api", "src/wot/service",
               "src/wot/storage", "src/wot/replication")
CHRONO_PATTERNS = [
    (re.compile(r"std\s*::\s*chrono\b"), "std::chrono"),
    (re.compile(r"#\s*include\s*<chrono>"), "#include <chrono>"),
]


def _under_chrono_dirs(rel):
    rel = rel.replace(os.sep, "/")
    return any(rel.startswith(d + "/") for d in CHRONO_DIRS)


def check_chrono(root, findings, files=None):
    if files is None:
        files = [f for f in repo_files(root, ["src/wot"])
                 if _under_chrono_dirs(f)]
    for rel in files:
        text = strip_comments_and_strings(
            open(os.path.join(root, rel), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern, name in CHRONO_PATTERNS:
                if pattern.search(line):
                    findings.add(rel, lineno, "chrono",
                                 f"raw {name} in an instrumented layer; "
                                 "time through wot::Stopwatch / "
                                 "telemetry::Timer / WOT_TIMED so the "
                                 "measurement reaches the metric catalog")


# --------------------------------------------------------------------------
# Check: headers — every src/wot header compiles standalone
# --------------------------------------------------------------------------


def check_headers(root, findings, cxx, extra_flags=(), jobs=None):
    headers = [f for f in repo_files(root, ["src/wot"], (".h",))]
    flags = ["-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
             "-Wpedantic", "-Werror", "-I", os.path.join(root, "src")]
    flags += list(extra_flags)

    def compile_one(rel):
        cmd = [cxx] + flags + ["-x", "c++", os.path.join(root, rel)]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        return rel, proc.returncode, proc.stderr

    with concurrent.futures.ThreadPoolExecutor(jobs or os.cpu_count()) as ex:
        for rel, rc, stderr in ex.map(compile_one, headers):
            if rc != 0:
                first = stderr.strip().splitlines()
                detail = first[0] if first else "compiler error"
                findings.add(rel, 1, "headers",
                             f"does not compile standalone: {detail}")
    return len(headers)


# --------------------------------------------------------------------------
# Self-test: seeded violations must be flagged
# --------------------------------------------------------------------------

SEEDED_MUTEX = """#include <mutex>
namespace wot { struct Bad { std::mutex mu_; }; }
"""

SEEDED_STDOUT = """#include <iostream>
namespace wot { inline void Bad() { std::cout << "hi"; } }
"""

SEEDED_SNAPSHOT = """namespace wot {
class TrustSnapshot {
 public:
  int version() const { return version_; }
  void set_version(int v) { version_ = v; }
 private:
  int version_ = 0;
};
}  // namespace wot
"""

SEEDED_SUPPRESSION = """namespace wot {
inline void Bad() WOT_NO_THREAD_SAFETY_ANALYSIS {}
}
"""

SEEDED_CHRONO = """#include <chrono>
namespace wot {
inline long Bad() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}
"""

SEEDED_BAD_HEADER = """// missing <string> include
#ifndef SEEDED_BAD_HEADER_H_
#define SEEDED_BAD_HEADER_H_
namespace wot { inline std::string Broken() { return {}; } }
#endif
"""

SEEDED_CLEAN = """#ifndef SEEDED_CLEAN_H_
#define SEEDED_CLEAN_H_
namespace wot { inline int Fine() { return 1; } }
#endif
"""


def run_self_test(cxx):
    failures = []

    def expect(name, findings, rule, want_hits):
        hits = sum(1 for _, _, r, _ in findings.items if r == rule)
        if (hits > 0) != want_hits:
            failures.append(
                f"{name}: expected {'a' if want_hits else 'no'} [{rule}] "
                f"finding, got {hits}")

    with tempfile.TemporaryDirectory(prefix="wot_lint_selftest_") as tmp:
        service = os.path.join(tmp, "src", "wot", "service")
        util = os.path.join(tmp, "src", "wot", "util")
        os.makedirs(service)
        os.makedirs(util)

        def put(relpath, content):
            path = os.path.join(tmp, relpath)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
            return os.path.relpath(path, tmp)

        # Seed one violation per rule.
        bad_mutex = put("src/wot/util/bad_mutex.h", SEEDED_MUTEX)
        bad_stdout = put("src/wot/util/bad_stdout.h", SEEDED_STDOUT)
        put("src/wot/service/trust_snapshot.h", SEEDED_SNAPSHOT)
        bad_supp = put("src/wot/util/bad_suppress.h", SEEDED_SUPPRESSION)

        f = Findings()
        check_mutex(tmp, f, files=[bad_mutex])
        expect("seeded mutex", f, "mutex", True)

        f = Findings()
        check_stdout(tmp, f, files=[bad_stdout])
        expect("seeded stdout", f, "stdout", True)

        f = Findings()
        check_snapshot_immutable(tmp, f)
        expect("seeded snapshot mutator", f, "snapshot", True)

        f = Findings()
        check_suppressions(tmp, f, files=[bad_supp])
        expect("seeded suppression", f, "suppress", True)

        # A raw std::chrono in an instrumented layer is flagged; the
        # same text under the exempt telemetry layer is not (the default
        # file set never includes it).
        bad_chrono = put("src/wot/service/bad_chrono.h", SEEDED_CHRONO)
        f = Findings()
        check_chrono(tmp, f, files=[bad_chrono])
        expect("seeded chrono", f, "chrono", True)

        telemetry = os.path.join(tmp, "src", "wot", "telemetry")
        os.makedirs(telemetry)
        put("src/wot/telemetry/clock_impl.h", SEEDED_CHRONO)
        f = Findings()
        check_chrono(tmp, f)
        hits = {path for path, _, r, _ in f.items if r == "chrono"}
        if bad_chrono not in hits:
            failures.append("seeded chrono violation was not flagged by "
                            "the default file walk")

        # src/wot/replication is part of the proved serving stack: both
        # the suppression and chrono rules must cover it via the default
        # file walks.
        replication = os.path.join(tmp, "src", "wot", "replication")
        os.makedirs(replication)
        repl_supp = put("src/wot/replication/bad_suppress.h",
                        SEEDED_SUPPRESSION)
        repl_chrono = put("src/wot/replication/bad_chrono.h",
                          SEEDED_CHRONO)
        f = Findings()
        check_suppressions(tmp, f)
        hits = {path for path, _, r, _ in f.items if r == "suppress"}
        if repl_supp not in hits:
            failures.append("seeded replication suppression was not "
                            "flagged by the default file walk")
        f = Findings()
        check_chrono(tmp, f)
        hits = {path for path, _, r, _ in f.items if r == "chrono"}
        if repl_chrono not in hits:
            failures.append("seeded replication chrono violation was "
                            "not flagged by the default file walk")
        if any("telemetry" in path for path in hits):
            failures.append("exempt telemetry layer was falsely flagged "
                            "by the chrono rule")

        # A waived stdout write is accepted; an unwaived one next to it
        # is still flagged.
        waived = put(
            "src/wot/util/waived.h",
            "#include <cstdio>\n"
            "// wot-lint: allow(stdout) — self-test waiver\n"
            "inline void Waived() { printf(\"x\"); }\n")
        f = Findings()
        check_stdout(tmp, f, files=[waived])
        expect("waived stdout", f, "stdout", False)

        # The real repo's snapshot header shape must parse as clean: a
        # const-only public surface yields zero findings.
        put("src/wot/service/trust_snapshot.h",
            SEEDED_SNAPSHOT.replace(
                "  void set_version(int v) { version_ = v; }\n", ""))
        f = Findings()
        check_snapshot_immutable(tmp, f)
        expect("clean snapshot", f, "snapshot", False)

        if cxx:
            bad_header = put("src/wot/util/seeded_bad.h", SEEDED_BAD_HEADER)
            clean_header = put("src/wot/util/seeded_clean.h", SEEDED_CLEAN)
            f = Findings()
            check_headers(tmp, f, cxx)
            rules = {path for path, _, r, _ in f.items if r == "headers"}
            if bad_header not in rules:
                failures.append("seeded broken header was not flagged")
            if clean_header in rules:
                failures.append("clean header was falsely flagged")

    if failures:
        for failure in failures:
            sys.stderr.write(f"wot_lint self-test FAILED: {failure}\n")
        return 1
    sys.stderr.write("wot_lint self-test passed\n")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("check", choices=["source", "headers", "all"],
                        nargs="?", default="all")
    parser.add_argument("--repo", default=None,
                        help="repo root (default: the script's grandparent)")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"),
                        help="compiler for the headers check")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test(args.cxx)

    root = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src", "wot")):
        sys.stderr.write(f"wot_lint: {root} is not the wot repo root\n")
        return 2

    findings = Findings()
    checked_headers = 0
    if args.check in ("source", "all"):
        check_mutex(root, findings)
        check_stdout(root, findings)
        check_snapshot_immutable(root, findings)
        check_suppressions(root, findings)
        check_chrono(root, findings)
    if args.check in ("headers", "all"):
        checked_headers = check_headers(root, findings, args.cxx,
                                        jobs=args.jobs)

    if findings.items:
        findings.report()
        return 1
    scope = args.check
    extra = f" ({checked_headers} headers)" if checked_headers else ""
    sys.stderr.write(f"wot_lint: {scope} clean{extra}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
