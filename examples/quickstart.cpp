// Quickstart: build a six-user community by hand, derive a web of trust
// from its ratings alone, and inspect the result.
//
//   ./build/examples/quickstart
//
// Walks through the full public API surface in ~100 lines: DatasetBuilder
// -> TrustPipeline -> TrustDeriver.
#include <cstdio>

#include "wot/community/dataset_builder.h"
#include "wot/core/pipeline.h"
#include "wot/util/check.h"

int main() {
  using namespace wot;

  // --- 1. Describe the community -----------------------------------------
  DatasetBuilder builder;
  CategoryId movies = builder.AddCategory("movies");
  CategoryId books = builder.AddCategory("books");

  UserId alice = builder.AddUser("alice");  // movie expert
  UserId bob = builder.AddUser("bob");      // casual writer
  UserId carol = builder.AddUser("carol");  // book expert
  UserId dave = builder.AddUser("dave");    // reads movie reviews
  UserId erin = builder.AddUser("erin");    // reads book reviews
  UserId frank = builder.AddUser("frank");  // reads everything

  auto add_review = [&](UserId writer, CategoryId category,
                        const char* object) {
    ObjectId oid = builder.AddObject(category, object).ValueOrDie();
    return builder.AddReview(writer, oid).ValueOrDie();
  };
  // Alice writes consistently helpful movie reviews.
  ReviewId a1 = add_review(alice, movies, "movies/heat");
  ReviewId a2 = add_review(alice, movies, "movies/alien");
  // Bob's movie review is mediocre.
  ReviewId b1 = add_review(bob, movies, "movies/plan9");
  // Carol writes great book reviews.
  ReviewId c1 = add_review(carol, books, "books/dune");
  ReviewId c2 = add_review(carol, books, "books/hyperion");

  // Ratings on the five-stage Epinions scale {0.2, 0.4, 0.6, 0.8, 1.0}.
  WOT_CHECK_OK(builder.AddRating(dave, a1, 1.0));
  WOT_CHECK_OK(builder.AddRating(dave, a2, 0.8));
  WOT_CHECK_OK(builder.AddRating(dave, b1, 0.4));
  WOT_CHECK_OK(builder.AddRating(frank, a1, 1.0));
  WOT_CHECK_OK(builder.AddRating(frank, b1, 0.2));
  WOT_CHECK_OK(builder.AddRating(frank, c1, 0.8));
  WOT_CHECK_OK(builder.AddRating(erin, c1, 1.0));
  WOT_CHECK_OK(builder.AddRating(erin, c2, 0.8));

  Dataset dataset = builder.Build().ValueOrDie();
  std::printf("community: %s\n\n", dataset.Summary().c_str());

  // --- 2. Run the framework (Steps 1-3 of the paper) ---------------------
  TrustPipeline pipeline = TrustPipeline::Run(dataset).ValueOrDie();

  std::printf("expertise E (users x categories):\n%s\n",
              pipeline.expertise().ToString().c_str());
  std::printf("affiliation A (users x categories):\n%s\n",
              pipeline.affiliation().ToString().c_str());

  // --- 3. Ask for degrees of trust (eq. 5) --------------------------------
  TrustDeriver deriver = pipeline.MakeDeriver();
  struct Pair {
    const char* label;
    UserId from;
    UserId to;
  };
  const Pair pairs[] = {
      {"dave  -> alice (movie fan -> movie expert)", dave, alice},
      {"dave  -> bob   (movie fan -> weak writer) ", dave, bob},
      {"dave  -> carol (movie fan -> book expert) ", dave, carol},
      {"erin  -> carol (book fan  -> book expert) ", erin, carol},
      {"frank -> alice (omnivore  -> movie expert)", frank, alice},
      {"frank -> carol (omnivore  -> book expert) ", frank, carol},
  };
  std::printf("derived degrees of trust:\n");
  for (const auto& pair : pairs) {
    std::printf("  %s  T-hat = %.3f\n", pair.label,
                deriver.DeriveOne(pair.from.index(), pair.to.index()));
  }

  // Dave never rated carol's reviews, and there is no explicit web of
  // trust anywhere — yet the framework still produces graded scores.
  std::printf(
      "\nnote: every score above was derived from ratings only; no "
      "explicit trust statement exists in this community.\n");
  return 0;
}
