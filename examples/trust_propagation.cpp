// The paper's future-work experiment: build a web of trust twice — once
// from explicit trust statements, once derived from ratings — and compare
// how trust *propagates* through each (TidalTrust pairwise inference,
// EigenTrust global ranking).
//
//   ./build/examples/trust_propagation --users 2000 --pairs 1500
#include <cstdio>

#include "wot/core/binarization.h"
#include "wot/core/pipeline.h"
#include "wot/eval/rank_correlation.h"
#include "wot/linalg/vector_ops.h"
#include "wot/graph/appleseed.h"
#include "wot/graph/eigen_trust.h"
#include "wot/graph/guha_propagation.h"
#include "wot/graph/propagation_eval.h"
#include "wot/synth/generator.h"
#include "wot/util/check.h"
#include "wot/util/flags.h"
#include "wot/util/string_util.h"

int main(int argc, char** argv) {
  using namespace wot;

  int64_t users = 2000;
  int64_t seed = 42;
  int64_t pairs = 1500;
  FlagParser flags("trust_propagation",
                   "Compares propagation over the explicit vs the derived "
                   "web of trust (the paper's stated future work)");
  flags.AddInt64("users", &users, "synthetic community size");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddInt64("pairs", &pairs, "sampled source/sink pairs");
  WOT_CHECK_OK(flags.Parse(argc, argv));

  SynthConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.num_users = static_cast<size_t>(users);
  SynthCommunity community = GenerateCommunity(config).ValueOrDie();
  TrustPipeline pipeline =
      TrustPipeline::Run(community.dataset).ValueOrDie();

  // Web 1: the explicit trust statements, as crawled.
  TrustGraph explicit_web =
      TrustGraph::FromMatrix(pipeline.explicit_trust());

  // Web 2: derived from ratings only. Edge *pattern* comes from the
  // paper's generosity-matched binarization; edge *weights* keep the
  // continuous degrees of trust — the paper's key output ("a denser trust
  // matrix with a continuous trust value").
  BinarizationOptions options;
  options.policy = BinarizationPolicy::kPerUserQuantile;
  options.per_user_fraction = ComputeTrustGenerosity(
      pipeline.direct_connections(), pipeline.explicit_trust());
  TrustDeriver deriver = pipeline.MakeDeriver();
  SparseMatrix derived_pattern =
      BinarizeDerivedTrust(deriver, options).ValueOrDie();
  TrustGraph derived_web =
      TrustGraph::FromMatrix(deriver.DeriveForPairs(derived_pattern));

  std::printf("explicit web: %zu edges (density %.5f)\n",
              explicit_web.num_edges(), explicit_web.Density());
  std::printf("derived web:  %zu edges (density %.5f)\n\n",
              derived_web.num_edges(), derived_web.Density());

  // --- Pairwise propagation (TidalTrust) ----------------------------------
  PropagationEvalOptions eval_options;
  eval_options.num_pairs = static_cast<size_t>(pairs);
  eval_options.seed = static_cast<uint64_t>(seed) + 1;
  PropagationComparison cmp =
      ComparePropagation(explicit_web, derived_web, eval_options)
          .ValueOrDie();
  std::printf("=== TidalTrust propagation ===\n%s\n",
              cmp.ToString("explicit web", "derived web").c_str());

  // --- Global ranking (EigenTrust) -----------------------------------------
  EigenTrustResult explicit_rank = EigenTrust(explicit_web).ValueOrDie();
  EigenTrustResult derived_rank = EigenTrust(derived_web).ValueOrDie();
  double rho = SpearmanRho(explicit_rank.trust, derived_rank.trust);
  std::printf("=== EigenTrust global ranking ===\n");
  std::printf("explicit web: converged in %zu iterations\n",
              explicit_rank.iterations);
  std::printf("derived web:  converged in %zu iterations\n",
              derived_rank.iterations);
  std::printf("Spearman correlation between the two rankings: %.3f\n", rho);

  // --- Guha-style operator propagation over the derived web ---------------
  GuhaResult guha =
      PropagateGuha(deriver.DeriveForPairs(derived_pattern)).ValueOrDie();
  std::printf("\n=== Guha operator propagation (derived web) ===\n");
  std::printf("input beliefs: %zu, after 3 steps: %zu "
              "(operator nnz %zu)\n",
              derived_pattern.nnz(), guha.beliefs.nnz(),
              guha.operator_nnz);

  // --- Appleseed spreading activation from one power user -----------------
  size_t power_user = ArgMax(derived_rank.trust);
  AppleseedResult activation =
      Appleseed(derived_web, power_user).ValueOrDie();
  std::printf("\n=== Appleseed from the top-ranked user (%zu) ===\n",
              power_user);
  std::printf("converged in %zu iterations; %zu users activated; top-3:",
              activation.iterations, activation.Ranking().size());
  auto ranking = activation.Ranking();
  for (size_t i = 0; i < std::min<size_t>(3, ranking.size()); ++i) {
    std::printf(" user%u(%.2f)", ranking[i], activation.trust[ranking[i]]);
  }
  std::printf("\n");

  std::printf(
      "\nreading: over the *binary* explicit web TidalTrust degenerates "
      "to all-1.0 predictions (every edge has weight 1), while the "
      "derived web carries continuous degrees of trust and yields graded "
      "inferences; the EigenTrust rankings of the two webs correlate "
      "strongly — a ratings-derived web can stand in when no explicit "
      "web exists.\n");
  return 0;
}
