// The intro's motivating application: trust-aware review recommendation
// under cold start. When a review has no ratings yet, a community cannot
// rank it by "mean helpfulness" — exactly the situation where a derived
// web of trust helps: the reader's degree of trust in the *writer* is a
// personalized estimate of how helpful the review will be.
//
//   ./build/examples/recommender --users 2000 --cold_fraction 0.15
//
// Protocol: remove ALL ratings of a random sample of reviews ("cold"
// reviews); derive trust from the remaining visible ratings only; predict
// each held-out rating with three predictors and report MAE:
//   global    — the global mean visible rating (non-personalized floor);
//   writer    — the mean visible rating across the writer's other reviews;
//   trust     — the rater's derived degree of trust in the writer,
//               T-hat(rater, writer), falling back to `writer` when 0.
#include <cstdio>
#include <unordered_set>

#include "wot/community/dataset_builder.h"
#include "wot/community/indices.h"
#include "wot/core/pipeline.h"
#include "wot/eval/calibration.h"
#include "wot/synth/generator.h"
#include "wot/util/check.h"
#include "wot/util/flags.h"
#include "wot/util/histogram.h"
#include "wot/util/rng.h"

int main(int argc, char** argv) {
  using namespace wot;

  int64_t users = 2000;
  int64_t seed = 42;
  double cold_fraction = 0.15;
  FlagParser flags("recommender",
                   "Cold-start review helpfulness prediction with the "
                   "derived web of trust");
  flags.AddInt64("users", &users, "synthetic community size");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddDouble("cold_fraction", &cold_fraction,
                  "fraction of reviews whose ratings are held out");
  WOT_CHECK_OK(flags.Parse(argc, argv));
  WOT_CHECK(cold_fraction > 0.0 && cold_fraction < 1.0);

  SynthConfig config;
  config.seed = static_cast<uint64_t>(seed);
  config.num_users = static_cast<size_t>(users);
  SynthCommunity community = GenerateCommunity(config).ValueOrDie();
  const Dataset& full = community.dataset;

  // --- Choose cold reviews and rebuild the visible dataset -----------------
  Rng rng(static_cast<uint64_t>(seed) ^ 0xC01D);
  std::unordered_set<uint32_t> cold;
  for (const auto& review : full.reviews()) {
    if (rng.NextBool(cold_fraction)) {
      cold.insert(review.id.value());
    }
  }
  DatasetBuilder builder;
  for (const auto& category : full.categories()) {
    builder.AddCategory(category.name);
  }
  for (const auto& user : full.users()) {
    builder.AddUser(user.name);
  }
  for (const auto& object : full.objects()) {
    WOT_CHECK(builder.AddObject(object.category, object.name).ok());
  }
  for (const auto& review : full.reviews()) {
    WOT_CHECK(builder.AddReview(review.writer, review.object).ok());
  }
  size_t held_out = 0;
  for (const auto& rating : full.ratings()) {
    if (cold.count(rating.review.value()) != 0) {
      ++held_out;
      continue;
    }
    WOT_CHECK_OK(builder.AddRating(rating.rater, rating.review,
                                   rating.value));
  }
  Dataset visible = builder.Build().ValueOrDie();
  std::printf("cold reviews: %zu of %zu; held-out ratings: %zu\n",
              cold.size(), full.num_reviews(), held_out);

  // --- Derive trust from visible ratings only ------------------------------
  TrustPipeline pipeline = TrustPipeline::Run(visible).ValueOrDie();
  TrustDeriver deriver = pipeline.MakeDeriver();
  DatasetIndices visible_indices(visible);

  double global_sum = 0.0;
  for (const auto& rating : visible.ratings()) {
    global_sum += rating.value;
  }
  const double global_mean =
      visible.num_ratings() > 0
          ? global_sum / static_cast<double>(visible.num_ratings())
          : 0.6;

  // Mean visible rating received by each writer (over their warm reviews).
  std::vector<double> writer_sum(full.num_users(), 0.0);
  std::vector<size_t> writer_count(full.num_users(), 0);
  for (const auto& rating : visible.ratings()) {
    UserId writer = visible.review(rating.review).writer;
    writer_sum[writer.index()] += rating.value;
    ++writer_count[writer.index()];
  }
  auto writer_mean = [&](UserId writer) {
    return writer_count[writer.index()] > 0
               ? writer_sum[writer.index()] /
                     static_cast<double>(writer_count[writer.index()])
               : global_mean;
  };

  // --- Calibrate T-hat to the rating scale on VISIBLE data -----------------
  // T-hat carries the experience discount, so it sits systematically below
  // the rating scale; fit rating ~ a * T-hat + b by least squares over the
  // visible pairs (wot/eval/calibration.h; no held-out data touched).
  CalibrationFitter fitter;
  for (const auto& rating : visible.ratings()) {
    UserId writer = visible.review(rating.review).writer;
    double t = deriver.DeriveOne(rating.rater.index(), writer.index());
    if (t > 0.0) {
      fitter.Add(t, rating.value);
    }
  }
  LinearCalibration calibration;  // identity fallback
  if (Result<LinearCalibration> fit = fitter.Fit(); fit.ok()) {
    calibration = fit.ValueOrDie();
  }
  auto calibrated = [&](double t) {
    return calibration.ApplyClamped(t, 0.0, 1.0);
  };
  std::printf("calibration over %zu visible pairs: %s\n", fitter.count(),
              calibration.ToString().c_str());

  // --- Score the predictors on the held-out ratings ------------------------
  RunningStats err_global;
  RunningStats err_writer;
  RunningStats err_trust;
  RunningStats err_blend;
  for (const auto& rating : full.ratings()) {
    if (cold.count(rating.review.value()) == 0) {
      continue;
    }
    const auto& review = full.review(rating.review);
    double by_writer = writer_mean(review.writer);
    double trust = deriver.DeriveOne(rating.rater.index(),
                                     review.writer.index());
    double by_trust = trust > 0.0 ? calibrated(trust) : by_writer;
    double by_blend = 0.5 * by_trust + 0.5 * by_writer;
    err_global.Add(std::abs(global_mean - rating.value));
    err_writer.Add(std::abs(by_writer - rating.value));
    err_trust.Add(std::abs(by_trust - rating.value));
    err_blend.Add(std::abs(by_blend - rating.value));
  }

  std::printf("\nMAE on cold-review ratings (lower is better)\n");
  std::printf("  global mean                  : %.4f\n", err_global.mean());
  std::printf("  writer mean                  : %.4f\n", err_writer.mean());
  std::printf("  calibrated T-hat             : %.4f\n", err_trust.mean());
  std::printf("  blend (T-hat + writer mean)  : %.4f\n", err_blend.mean());
  double lift = (err_global.mean() - err_blend.mean()) /
                std::max(1e-12, err_global.mean());
  std::printf("blend improvement over the non-personalized floor: %.1f%%\n",
              100.0 * lift);
  std::printf(
      "\nreading: with zero ratings on a review, a community can only "
      "show the global average; the ratings-derived degrees of trust "
      "recover most of the writer-quality signal and combine with the "
      "writer's population average — without a single explicit trust "
      "statement.\n");
  return 0;
}
