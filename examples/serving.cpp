// Serving: the same six-user community as quickstart.cpp, but behind the
// long-lived TrustService instead of the one-shot batch pipeline.
//
//   ./build/examples/serving
//
// Demonstrates the serving loop: boot from a seed dataset, answer queries
// from an immutable snapshot, ingest fresh activity append-only, Commit()
// to publish a new snapshot incrementally — and show that a reader still
// holding the old snapshot keeps a perfectly consistent (stale) view.
#include <cstdio>
#include <memory>

#include "wot/community/dataset_builder.h"
#include "wot/service/trust_service.h"
#include "wot/util/check.h"

int main() {
  using namespace wot;

  // --- 1. Seed community (same shape as quickstart.cpp) ------------------
  DatasetBuilder builder;
  CategoryId movies = builder.AddCategory("movies");
  CategoryId books = builder.AddCategory("books");
  UserId alice = builder.AddUser("alice");  // movie expert
  UserId carol = builder.AddUser("carol");  // book expert
  UserId dave = builder.AddUser("dave");    // reads movie reviews
  UserId erin = builder.AddUser("erin");    // reads book reviews

  ObjectId heat = builder.AddObject(movies, "movies/heat").ValueOrDie();
  ObjectId dune = builder.AddObject(books, "books/dune").ValueOrDie();
  ReviewId a1 = builder.AddReview(alice, heat).ValueOrDie();
  ReviewId c1 = builder.AddReview(carol, dune).ValueOrDie();
  WOT_CHECK_OK(builder.AddRating(dave, a1, 1.0));
  WOT_CHECK_OK(builder.AddRating(erin, c1, 0.8));
  Dataset seed = builder.Build().ValueOrDie();

  // --- 2. Boot the service and serve reads --------------------------------
  std::unique_ptr<TrustService> service =
      TrustService::Create(seed).ValueOrDie();
  std::shared_ptr<const TrustSnapshot> v1 = service->Snapshot();
  std::printf("serving v%llu\n",
              static_cast<unsigned long long>(v1->version()));
  std::printf("  T-hat(dave -> alice) = %.3f\n",
              v1->Trust(dave.index(), alice.index()));
  std::printf("  T-hat(dave -> carol) = %.3f  (dave never read books)\n",
              v1->Trust(dave.index(), carol.index()));

  // --- 3. Fresh activity arrives: dave starts rating book reviews --------
  WOT_CHECK_OK(service->AddRating(dave, c1, 0.8));
  TrustService::CommitStats stats = service->Commit().ValueOrDie();
  std::printf("\ncommitted: v%llu published, %zu of 2 categories and %zu "
              "affiliation rows recomputed\n",
              static_cast<unsigned long long>(stats.version),
              stats.categories_recomputed,
              stats.affiliation_rows_recomputed);

  // --- 4. New snapshot serves the updated web; the old one is untouched ---
  std::shared_ptr<const TrustSnapshot> v2 = service->Snapshot();
  std::printf("  v%llu: T-hat(dave -> carol) = %.3f\n",
              static_cast<unsigned long long>(v2->version()),
              v2->Trust(dave.index(), carol.index()));
  TrustExplanation why =
      v2->ExplainTrust(dave.index(), carol.index());
  for (const auto& term : why.terms) {
    std::printf("    category %u: A=%.2f x E=%.2f -> %.3f\n", term.category,
                term.affiliation, term.expertise, term.contribution);
  }
  std::printf("  v%llu (still held by a reader): T-hat(dave -> carol) = "
              "%.3f\n",
              static_cast<unsigned long long>(v1->version()),
              v1->Trust(dave.index(), carol.index()));
  return 0;
}
