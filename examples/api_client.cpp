// api_client — programming against the versioned serving API.
//
// Shows the three ways to issue the same typed request:
//   1. LoopbackClient over an in-process ServiceFrontend (fast path),
//   2. the same client forced through the NDJSON codec (wire-identical
//      responses, still in-process),
//   3. raw NDJSON frames via DispatchLine — what a resident wot_served
//      process does for every line it reads.
//
// For a real resident server, start `wot_served --socket /tmp/wot.sock`
// and swap the LoopbackClient for api::SocketClient::Connect(path); the
// Request/Response code below stays unchanged.
#include <cstdio>
#include <memory>
#include <string>
#include <variant>

#include "wot/api/client.h"
#include "wot/api/codec.h"
#include "wot/api/frontend.h"
#include "wot/service/trust_service.h"
#include "wot/synth/generator.h"
#include "wot/util/check.h"

int main() {
  using namespace wot;

  // A small synthetic community behind a live service.
  SynthConfig config;
  config.num_users = 300;
  config.seed = 7;
  Dataset dataset = GenerateCommunity(config).ValueOrDie().dataset;
  std::unique_ptr<TrustService> service =
      TrustService::Create(dataset).ValueOrDie();
  api::ServiceFrontend frontend(service.get());

  // 1. Typed in-process call.
  api::LoopbackClient client(&frontend);
  api::Request request;
  request.payload = api::TopKQuery{"user0", 5};
  api::Response response = client.Call(request).ValueOrDie();
  WOT_CHECK(response.status.ok()) << response.status.ToString();
  const auto& topk = std::get<api::TopKResult>(response.payload);
  std::printf("top-%zu trustees of user0 (snapshot v%llu):\n",
              topk.trustees.size(),
              static_cast<unsigned long long>(topk.snapshot_version));
  for (const api::ScoredUserEntry& entry : topk.trustees) {
    std::printf("  %-12s %.6f\n", entry.name.c_str(), entry.score);
  }

  // 2. The same call through the NDJSON codec: bit-identical response.
  api::LoopbackClient wired(&frontend, /*through_codec=*/true);
  api::Response via_wire = wired.Call(request).ValueOrDie();
  const auto& wired_topk = std::get<api::TopKResult>(via_wire.payload);
  WOT_CHECK(wired_topk.trustees.size() == topk.trustees.size());
  for (size_t i = 0; i < topk.trustees.size(); ++i) {
    WOT_CHECK(wired_topk.trustees[i].score == topk.trustees[i].score);
  }
  std::printf("NDJSON round trip returned identical scores\n");

  // 3. Raw frames, exactly as wot_served sees them on stdin.
  std::printf("\nwire frames:\n> %s\n",
              api::EncodeRequest(request).c_str());
  std::printf("< %.120s...\n",
              frontend.DispatchLine(api::EncodeRequest(request)).c_str());

  // Errors come back as structured frames, never crashes.
  std::printf("< %s\n",
              frontend.DispatchLine("definitely not a frame").c_str());

  // Ingest + commit through the same API: the web of trust evolves.
  api::Request ingest;
  ingest.payload = api::IngestUser{"api_client/newcomer"};
  WOT_CHECK(client.Call(ingest).ValueOrDie().status.ok());
  api::Request commit;
  commit.payload = api::CommitRequest{};
  api::Response committed = client.Call(commit).ValueOrDie();
  const auto& result = std::get<api::CommitResult>(committed.payload);
  std::printf("\ncommitted snapshot v%llu (published=%s)\n",
              static_cast<unsigned long long>(result.snapshot_version),
              result.published ? "true" : "false");
  return 0;
}
