// Full pipeline on an Epinions-shaped synthetic community: generate (or
// load) a dataset, run the framework, validate against the explicit web of
// trust, and export the artifacts for downstream analysis.
//
//   ./build/examples/epinions_pipeline --users 3000 --out /tmp/wot_out
//   ./build/examples/epinions_pipeline --load my_epinions_dump/
#include <cstdio>
#include <filesystem>

#include "wot/community/stats.h"
#include "wot/eval/density.h"
#include "wot/eval/validation.h"
#include "wot/io/csv.h"
#include "wot/io/dataset_csv.h"
#include "wot/synth/generator.h"
#include "wot/util/check.h"
#include "wot/util/flags.h"
#include "wot/util/stopwatch.h"
#include "wot/util/string_util.h"

int main(int argc, char** argv) {
  using namespace wot;

  int64_t users = 3000;
  int64_t seed = 42;
  std::string load;
  std::string out;
  FlagParser flags("epinions_pipeline",
                   "End-to-end derivation pipeline with validation and "
                   "artifact export");
  flags.AddInt64("users", &users, "synthetic community size");
  flags.AddInt64("seed", &seed, "generator seed");
  flags.AddString("load", &load, "load a dataset directory (CSV schema)");
  flags.AddString("out", &out,
                  "directory to export dataset + derived web of trust");
  WOT_CHECK_OK(flags.Parse(argc, argv));

  // --- Data ---------------------------------------------------------------
  Dataset dataset;
  if (!load.empty()) {
    dataset = LoadDatasetCsv(load).ValueOrDie();
  } else {
    SynthConfig config;
    config.seed = static_cast<uint64_t>(seed);
    config.num_users = static_cast<size_t>(users);
    dataset = GenerateCommunity(config).ValueOrDie().dataset;
  }
  DatasetIndices indices(dataset);
  std::printf("=== dataset ===\n%s\n",
              ComputeDatasetStats(dataset, indices).ToString().c_str());

  // --- Derivation ----------------------------------------------------------
  Stopwatch timer;
  TrustPipeline pipeline = TrustPipeline::Run(dataset).ValueOrDie();
  std::printf("=== pipeline (%.1f ms) ===\n", timer.ElapsedMillis());
  size_t converged = 0;
  for (const auto& info : pipeline.reputation().convergence) {
    converged += info.converged ? 1 : 0;
  }
  std::printf("fixed point converged in %zu/%zu categories\n\n", converged,
              pipeline.reputation().convergence.size());

  TrustDeriver deriver = pipeline.MakeDeriver();
  DensityReport density = ComputeDensityReport(
      deriver, pipeline.direct_connections(), pipeline.explicit_trust());
  std::printf("=== connectivity ===\n%s\n", density.ToString().c_str());

  // --- Validation (needs an explicit web of trust as labels) --------------
  if (pipeline.explicit_trust().nnz() > 0) {
    Result<ValidationReport> report = ValidateDerivedTrust(pipeline);
    WOT_CHECK(report.ok()) << report.status().ToString();
    std::printf("=== validation against the explicit web of trust ===\n%s\n",
                report.ValueOrDie().ToString().c_str());
  } else {
    std::printf(
        "no explicit trust data: skipping validation (this is the "
        "paper's motivating scenario — the derived web below is still "
        "fully usable)\n\n");
  }

  // --- Export ---------------------------------------------------------------
  if (!out.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(out);
    WOT_CHECK_OK(SaveDatasetCsv(dataset, out));
    // Export each user's top-10 derived trustees.
    std::vector<CsvRow> rows = {{"source", "target", "degree_of_trust"}};
    deriver.BuildPostings();
    for (size_t u = 0; u < dataset.num_users(); ++u) {
      for (const auto& scored : deriver.DeriveRowTopK(u, 10)) {
        rows.push_back({dataset.user(UserId(static_cast<uint32_t>(u))).name,
                        dataset.user(UserId(scored.user)).name,
                        FormatDouble(scored.score, 6)});
      }
    }
    std::string path = (fs::path(out) / "derived_trust_top10.csv").string();
    WOT_CHECK_OK(WriteCsvFile(path, rows));
    std::printf("exported dataset + derived web of trust to %s\n",
                out.c_str());
  }
  return 0;
}
