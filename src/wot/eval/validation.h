// The complete Table-4 validation harness: binarizes the derived matrix
// T-hat and the baseline B with the paper's generosity-matched per-user
// quantile rule, evaluates both against the explicit web of trust, and runs
// the paper's follow-up analysis comparing T-hat values of predicted-trust
// pairs inside R & T versus inside R - T.
#ifndef WOT_EVAL_VALIDATION_H_
#define WOT_EVAL_VALIDATION_H_

#include <string>

#include "wot/core/binarization.h"
#include "wot/service/pipeline.h"
#include "wot/eval/confusion.h"
#include "wot/util/histogram.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Statistics of continuous T-hat values over one pair group.
struct ScoreGroupStats {
  RunningStats stats;
  size_t count() const { return static_cast<size_t>(stats.count()); }
};

/// \brief Everything the Table-4 experiment reports.
struct ValidationReport {
  TrustConfusion model;     // T-hat, binarized
  TrustConfusion baseline;  // B, binarized identically

  /// T-hat values of predicted-trust pairs that fall in R & T.
  ScoreGroupStats predicted_in_trust;
  /// T-hat values of predicted-trust pairs that fall in R - T (the pairs
  /// the paper argues "would become trust connectivity in the future").
  ScoreGroupStats predicted_in_nontrust;

  /// \brief Renders the Table-4 rows plus the follow-up analysis.
  std::string ToString() const;
};

/// \brief Runs the full validation on a finished pipeline. The explicit
/// trust matrix must be non-empty (it provides the labels).
Result<ValidationReport> ValidateDerivedTrust(const TrustPipeline& pipeline);

}  // namespace wot

#endif  // WOT_EVAL_VALIDATION_H_
