#include "wot/eval/calibration.h"

#include <algorithm>
#include <cmath>

#include "wot/util/string_util.h"

namespace wot {

double LinearCalibration::ApplyClamped(double x, double lo,
                                       double hi) const {
  return std::clamp(Apply(x), lo, hi);
}

std::string LinearCalibration::ToString() const {
  return "y = " + FormatDouble(slope_, 4) + " * x + " +
         FormatDouble(intercept_, 4);
}

void CalibrationFitter::Add(double x, double y) {
  ++count_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
}

Result<LinearCalibration> CalibrationFitter::Fit() const {
  if (count_ < 2) {
    return Status::FailedPrecondition(
        "calibration needs at least two observations");
  }
  const double n = static_cast<double>(count_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  if (std::fabs(denom) < 1e-12) {
    return Status::FailedPrecondition(
        "calibration needs at least two distinct x values");
  }
  double slope = (n * sum_xy_ - sum_x_ * sum_y_) / denom;
  double intercept = (sum_y_ - slope * sum_x_) / n;
  return LinearCalibration(slope, intercept);
}

}  // namespace wot
