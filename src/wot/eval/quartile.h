// Quartile placement analysis for the Table-2 / Table-3 experiments:
// rank a population by a score, split into four quartiles (Q1 = top 25%),
// and count where the designated users (Advisors / Top Reviewers) land.
#ifndef WOT_EVAL_QUARTILE_H_
#define WOT_EVAL_QUARTILE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "wot/community/ids.h"

namespace wot {

/// \brief One population member with its computed score.
struct ScoredMember {
  UserId user;
  double score;
};

/// \brief Result of one quartile analysis.
struct QuartileReport {
  size_t population = 0;  // members ranked
  size_t designated = 0;  // designated members present in the population
  /// counts[q] = designated members whose rank falls in quartile q
  /// (0 = Q1/top, 3 = Q4/bottom).
  std::array<size_t, 4> counts = {0, 0, 0, 0};

  /// \brief Fraction of designated members in Q1; 0 when none designated.
  double TopQuartileShare() const;
};

/// \brief Ranks \p population by score descending (ties by ascending user
/// id, so results are deterministic) and reports the quartile of every user
/// in \p designated that appears in the population. Designated users absent
/// from the population are ignored — this mirrors the paper's "reselect
/// Advisors ... by removing Advisors who never rate reviews in a sub
/// category".
QuartileReport AnalyzeQuartiles(const std::vector<ScoredMember>& population,
                                const std::vector<UserId>& designated);

}  // namespace wot

#endif  // WOT_EVAL_QUARTILE_H_
