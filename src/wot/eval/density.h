// Fig. 3 quantities: densities of the derived matrix T-hat, the direct
// connection matrix R, and the explicit trust matrix T, plus their overlap
// structure (T & R, T - R).
#ifndef WOT_EVAL_DENSITY_H_
#define WOT_EVAL_DENSITY_H_

#include <string>

#include "wot/core/trust_derivation.h"
#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief Connectivity counts and densities for one community.
struct DensityReport {
  size_t num_users = 0;
  size_t derived_connections = 0;   // nnz(T-hat > 0), diagonal excluded
  size_t direct_connections = 0;    // nnz(R)
  size_t trust_connections = 0;     // nnz(T)
  size_t trust_and_direct = 0;      // |T & R|
  size_t trust_minus_direct = 0;    // |T - R|

  double DerivedDensity() const;
  double DirectDensity() const;
  double TrustDensity() const;

  /// \brief Rendering in the layout of Fig. 3 (counts + densities).
  std::string ToString() const;
};

/// \brief Computes the report. The derived count streams rows through
/// \p deriver without materializing the U x U matrix.
DensityReport ComputeDensityReport(const TrustDeriver& deriver,
                                   const SparseMatrix& direct,
                                   const SparseMatrix& explicit_trust);

}  // namespace wot

#endif  // WOT_EVAL_DENSITY_H_
