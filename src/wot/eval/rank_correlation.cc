#include "wot/eval/rank_correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "wot/util/check.h"

namespace wot {

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Ranks are 1-based; tied values share the average of their positions.
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                      + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg_rank;
    }
    i = j + 1;
  }
  return ranks;
}

namespace {

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double mean_a = std::accumulate(a.begin(), a.end(), 0.0) /
                  static_cast<double>(n);
  double mean_b = std::accumulate(b.begin(), b.end(), 0.0) /
                  static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

double SpearmanRho(const std::vector<double>& a,
                   const std::vector<double>& b) {
  WOT_CHECK_EQ(a.size(), b.size());
  if (a.size() < 2) {
    return 0.0;
  }
  return Pearson(FractionalRanks(a), FractionalRanks(b));
}

double KendallTauB(const std::vector<double>& a,
                   const std::vector<double>& b) {
  WOT_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) {
    return 0.0;
  }
  int64_t concordant = 0;
  int64_t discordant = 0;
  int64_t ties_a = 0;
  int64_t ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      // Tau-b convention: a pair tied in a counts toward n1, tied in b
      // toward n2 (pairs tied in both count toward both); only fully
      // untied pairs are concordant or discordant.
      if (da == 0.0) {
        ++ties_a;
      }
      if (db == 0.0) {
        ++ties_b;
      }
      if (da != 0.0 && db != 0.0) {
        if ((da > 0.0) == (db > 0.0)) {
          ++concordant;
        } else {
          ++discordant;
        }
      }
    }
  }
  double n0 = static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
  double denom = std::sqrt((n0 - static_cast<double>(ties_a)) *
                           (n0 - static_cast<double>(ties_b)));
  if (denom <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(concordant - discordant) / denom;
}

}  // namespace wot
