#include "wot/eval/quartile.h"

#include <algorithm>
#include <unordered_map>

namespace wot {

double QuartileReport::TopQuartileShare() const {
  return designated == 0 ? 0.0
                         : static_cast<double>(counts[0]) /
                               static_cast<double>(designated);
}

QuartileReport AnalyzeQuartiles(const std::vector<ScoredMember>& population,
                                const std::vector<UserId>& designated) {
  QuartileReport report;
  report.population = population.size();
  if (population.empty()) {
    return report;
  }

  std::vector<ScoredMember> ranked = population;
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredMember& a, const ScoredMember& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user < b.user;
            });

  std::unordered_map<uint32_t, size_t> rank_of;
  rank_of.reserve(ranked.size());
  for (size_t r = 0; r < ranked.size(); ++r) {
    rank_of.emplace(ranked[r].user.value(), r);
  }

  const size_t n = ranked.size();
  for (UserId user : designated) {
    auto it = rank_of.find(user.value());
    if (it == rank_of.end()) {
      continue;  // not active in this population
    }
    ++report.designated;
    // Quartile boundaries: rank r (0-based) falls in quartile
    // floor(4r / n), clamped for the final element.
    size_t q = std::min<size_t>(3, 4 * it->second / n);
    ++report.counts[q];
  }
  return report;
}

}  // namespace wot
