// The paper's Table-4 metrics. All three are computed *within R* (the
// direct-connection matrix), because outside R the ground truth "non-trust"
// cannot be distinguished from "never met":
//
//   recall                  = |P & R & T| / |R & T|
//   precision-in-R          = |P & R & T| / |R & P|
//   nontrust-as-trust rate  = |P & (R - T)| / |R - T|
//
// where P is the binarized prediction, & is pattern intersection and - is
// pattern difference.
#ifndef WOT_EVAL_CONFUSION_H_
#define WOT_EVAL_CONFUSION_H_

#include <string>

#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief Raw pattern counts underlying the Table-4 metrics.
struct TrustConfusion {
  size_t trust_in_r = 0;             // |R & T|
  size_t predicted_trust_in_r = 0;   // |R & P|
  size_t hit = 0;                    // |P & R & T|
  size_t nontrust_in_r = 0;          // |R - T|
  size_t false_trust = 0;            // |P & (R - T)|

  /// recall of trust; 0 when |R & T| = 0.
  double Recall() const;
  /// precision of trust in R; 0 when |R & P| = 0.
  double PrecisionInR() const;
  /// rate of predicting non-trust as trust in (R - T); 0 when |R - T| = 0.
  double FalseTrustRate() const;
  /// harmonic mean of Recall and PrecisionInR (not in the paper; handy for
  /// ablation comparisons).
  double F1() const;

  std::string ToString() const;
};

/// \brief Counts the confusion patterns. All matrices must be U x U;
/// \p prediction and \p explicit_trust are interpreted as binary by
/// pattern (stored = 1).
TrustConfusion EvaluateTrustPrediction(const SparseMatrix& prediction,
                                       const SparseMatrix& direct,
                                       const SparseMatrix& explicit_trust);

}  // namespace wot

#endif  // WOT_EVAL_CONFUSION_H_
