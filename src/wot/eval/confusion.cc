#include "wot/eval/confusion.h"

#include <sstream>

#include "wot/linalg/sparse_ops.h"
#include "wot/util/string_util.h"

namespace wot {

double TrustConfusion::Recall() const {
  return trust_in_r == 0
             ? 0.0
             : static_cast<double>(hit) / static_cast<double>(trust_in_r);
}

double TrustConfusion::PrecisionInR() const {
  return predicted_trust_in_r == 0
             ? 0.0
             : static_cast<double>(hit) /
                   static_cast<double>(predicted_trust_in_r);
}

double TrustConfusion::FalseTrustRate() const {
  return nontrust_in_r == 0 ? 0.0
                            : static_cast<double>(false_trust) /
                                  static_cast<double>(nontrust_in_r);
}

double TrustConfusion::F1() const {
  double r = Recall();
  double p = PrecisionInR();
  return (r + p) > 0.0 ? 2.0 * r * p / (r + p) : 0.0;
}

std::string TrustConfusion::ToString() const {
  std::ostringstream os;
  os << "recall=" << FormatDouble(Recall(), 3)
     << " precision_in_R=" << FormatDouble(PrecisionInR(), 3)
     << " nontrust_as_trust=" << FormatDouble(FalseTrustRate(), 3)
     << " (|R&T|=" << trust_in_r << ", |R&P|=" << predicted_trust_in_r
     << ", hits=" << hit << ", |R-T|=" << nontrust_in_r << ")";
  return os.str();
}

TrustConfusion EvaluateTrustPrediction(const SparseMatrix& prediction,
                                       const SparseMatrix& direct,
                                       const SparseMatrix& explicit_trust) {
  WOT_CHECK_EQ(prediction.rows(), direct.rows());
  WOT_CHECK_EQ(direct.rows(), explicit_trust.rows());

  TrustConfusion out;
  // One merge pass per row over the three sorted column lists.
  for (size_t i = 0; i < direct.rows(); ++i) {
    auto rcols = direct.RowCols(i);
    for (uint32_t j : rcols) {
      const bool trusted = explicit_trust.Contains(i, j);
      const bool predicted = prediction.Contains(i, j);
      if (trusted) {
        ++out.trust_in_r;
        if (predicted) {
          ++out.hit;
        }
      } else {
        ++out.nontrust_in_r;
        if (predicted) {
          ++out.false_trust;
        }
      }
      if (predicted) {
        ++out.predicted_trust_in_r;
      }
    }
  }
  return out;
}

}  // namespace wot
