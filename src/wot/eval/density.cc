#include "wot/eval/density.h"

#include <sstream>

#include "wot/linalg/sparse_ops.h"
#include "wot/util/string_util.h"

namespace wot {

namespace {
double PairDensity(size_t count, size_t users) {
  if (users < 2) {
    return 0.0;
  }
  // Off-diagonal pair count; all three matrices exclude the diagonal.
  double pairs = static_cast<double>(users) *
                 (static_cast<double>(users) - 1.0);
  return static_cast<double>(count) / pairs;
}
}  // namespace

double DensityReport::DerivedDensity() const {
  return PairDensity(derived_connections, num_users);
}
double DensityReport::DirectDensity() const {
  return PairDensity(direct_connections, num_users);
}
double DensityReport::TrustDensity() const {
  return PairDensity(trust_connections, num_users);
}

std::string DensityReport::ToString() const {
  std::ostringstream os;
  os << "users=" << num_users << "\n"
     << "derived connections (T-hat > 0): "
     << FormatWithCommas(static_cast<int64_t>(derived_connections))
     << "  density=" << FormatDouble(DerivedDensity(), 6) << "\n"
     << "direct connections (R):          "
     << FormatWithCommas(static_cast<int64_t>(direct_connections))
     << "  density=" << FormatDouble(DirectDensity(), 6) << "\n"
     << "explicit trust (T):              "
     << FormatWithCommas(static_cast<int64_t>(trust_connections))
     << "  density=" << FormatDouble(TrustDensity(), 6) << "\n"
     << "T & R: " << FormatWithCommas(static_cast<int64_t>(trust_and_direct))
     << "   T - R: "
     << FormatWithCommas(static_cast<int64_t>(trust_minus_direct)) << "\n";
  return os.str();
}

DensityReport ComputeDensityReport(const TrustDeriver& deriver,
                                   const SparseMatrix& direct,
                                   const SparseMatrix& explicit_trust) {
  DensityReport report;
  report.num_users = deriver.num_users();
  for (size_t i = 0; i < deriver.num_users(); ++i) {
    report.derived_connections += deriver.CountDerivedConnections(i);
  }
  report.direct_connections = direct.nnz();
  report.trust_connections = explicit_trust.nnz();
  report.trust_and_direct = CountPatternIntersect(explicit_trust, direct);
  report.trust_minus_direct =
      report.trust_connections - report.trust_and_direct;
  return report;
}

}  // namespace wot
