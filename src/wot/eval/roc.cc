#include "wot/eval/roc.h"

#include <algorithm>
#include <sstream>

#include "wot/util/string_util.h"

namespace wot {

std::string RocReport::ToString() const {
  std::ostringstream os;
  os << "AUC=" << FormatDouble(auc, 4) << " over " << positives
     << " positives / " << negatives << " negatives";
  return os.str();
}

Result<RocReport> ComputeRoc(std::vector<ScoredPair> pairs) {
  RocReport report;
  for (const auto& pair : pairs) {
    if (pair.trusted) {
      ++report.positives;
    } else {
      ++report.negatives;
    }
  }
  if (report.positives == 0 || report.negatives == 0) {
    return Status::FailedPrecondition(
        "ROC needs at least one positive and one negative pair");
  }

  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.score > b.score;
            });

  const double p = static_cast<double>(report.positives);
  const double n = static_cast<double>(report.negatives);

  // Sweep thresholds from +inf down; process ties as one block and apply
  // the trapezoid rule so tied scores contribute the average rank.
  double tp = 0.0;
  double fp = 0.0;
  double auc = 0.0;
  const size_t stride = std::max<size_t>(1, pairs.size() / 200);
  size_t i = 0;
  size_t emitted = 0;
  while (i < pairs.size()) {
    size_t j = i;
    double block_tp = 0.0;
    double block_fp = 0.0;
    while (j < pairs.size() && pairs[j].score == pairs[i].score) {
      if (pairs[j].trusted) {
        block_tp += 1.0;
      } else {
        block_fp += 1.0;
      }
      ++j;
    }
    // Trapezoid over the block.
    auc += (block_fp / n) * (tp / p + 0.5 * block_tp / p);
    tp += block_tp;
    fp += block_fp;
    if (emitted++ % stride == 0 || j >= pairs.size()) {
      report.curve.push_back({pairs[i].score, tp / p, fp / n});
    }
    i = j;
  }
  report.auc = auc;
  return report;
}

Result<RocReport> RocOfDerivedTrust(const TrustDeriver& deriver,
                                    const SparseMatrix& direct,
                                    const SparseMatrix& explicit_trust) {
  std::vector<ScoredPair> pairs;
  pairs.reserve(direct.nnz());
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (uint32_t j : direct.RowCols(i)) {
      pairs.push_back(
          {deriver.DeriveOne(i, j), explicit_trust.Contains(i, j)});
    }
  }
  return ComputeRoc(std::move(pairs));
}

Result<RocReport> RocOfSparseScores(const SparseMatrix& scores,
                                    const SparseMatrix& direct,
                                    const SparseMatrix& explicit_trust) {
  std::vector<ScoredPair> pairs;
  pairs.reserve(direct.nnz());
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (uint32_t j : direct.RowCols(i)) {
      pairs.push_back({scores.At(i, j), explicit_trust.Contains(i, j)});
    }
  }
  return ComputeRoc(std::move(pairs));
}

}  // namespace wot
