// Rank correlation coefficients, used to compare computed reputations with
// latent ground truth beyond the paper's quartile counts.
#ifndef WOT_EVAL_RANK_CORRELATION_H_
#define WOT_EVAL_RANK_CORRELATION_H_

#include <vector>

namespace wot {

/// \brief Spearman's rho between two equal-length samples. Ties receive
/// average (fractional) ranks. Returns 0 for samples shorter than 2 or with
/// zero variance.
double SpearmanRho(const std::vector<double>& a,
                   const std::vector<double>& b);

/// \brief Kendall's tau-b (tie-corrected), O(n^2). Returns 0 for samples
/// shorter than 2 or when either sample is entirely tied.
double KendallTauB(const std::vector<double>& a,
                   const std::vector<double>& b);

/// \brief Average fractional ranks of \p values (rank 1 = smallest).
std::vector<double> FractionalRanks(const std::vector<double>& values);

}  // namespace wot

#endif  // WOT_EVAL_RANK_CORRELATION_H_
