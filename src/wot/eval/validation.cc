#include "wot/eval/validation.h"

#include <sstream>

#include "wot/util/string_util.h"
#include "wot/util/table_printer.h"

namespace wot {

std::string ValidationReport::ToString() const {
  TablePrinter table({"Model", "recall", "precision in R",
                      "nontrust-as-trust in R-T"});
  table.AddRow({"T-hat (our model)", FormatDouble(model.Recall(), 3),
                FormatDouble(model.PrecisionInR(), 3),
                FormatDouble(model.FalseTrustRate(), 3)});
  table.AddRow({"B (baseline)", FormatDouble(baseline.Recall(), 3),
                FormatDouble(baseline.PrecisionInR(), 3),
                FormatDouble(baseline.FalseTrustRate(), 3)});

  std::ostringstream os;
  os << table.ToString() << "\n"
     << "Follow-up: T-hat values of predicted-trust pairs\n"
     << "  in R&T: count=" << predicted_in_trust.count()
     << " mean=" << FormatDouble(predicted_in_trust.stats.mean(), 4)
     << " min=" << FormatDouble(predicted_in_trust.stats.min(), 4) << "\n"
     << "  in R-T: count=" << predicted_in_nontrust.count()
     << " mean=" << FormatDouble(predicted_in_nontrust.stats.mean(), 4)
     << " min=" << FormatDouble(predicted_in_nontrust.stats.min(), 4)
     << "\n";
  return os.str();
}

Result<ValidationReport> ValidateDerivedTrust(
    const TrustPipeline& pipeline) {
  const SparseMatrix& direct = pipeline.direct_connections();
  const SparseMatrix& trust = pipeline.explicit_trust();
  if (trust.nnz() == 0) {
    return Status::FailedPrecondition(
        "validation requires an explicit web of trust as ground truth");
  }
  if (pipeline.baseline().nnz() == 0) {
    return Status::FailedPrecondition(
        "validation requires the baseline matrix; run the pipeline with "
        "compute_baseline=true");
  }

  BinarizationOptions options;
  options.policy = BinarizationPolicy::kPerUserQuantile;
  options.per_user_fraction = ComputeTrustGenerosity(direct, trust);

  TrustDeriver deriver = pipeline.MakeDeriver();
  WOT_ASSIGN_OR_RETURN(SparseMatrix model_binary,
                       BinarizeDerivedTrust(deriver, options));
  WOT_ASSIGN_OR_RETURN(
      SparseMatrix baseline_binary,
      BinarizeSparseScores(pipeline.baseline(), options));

  ValidationReport report;
  report.model = EvaluateTrustPrediction(model_binary, direct, trust);
  report.baseline =
      EvaluateTrustPrediction(baseline_binary, direct, trust);

  // Follow-up analysis: continuous T-hat values of predicted pairs in R,
  // split by ground-truth trust.
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (uint32_t j : direct.RowCols(i)) {
      if (!model_binary.Contains(i, j)) {
        continue;
      }
      double value = deriver.DeriveOne(i, j);
      if (trust.Contains(i, j)) {
        report.predicted_in_trust.stats.Add(value);
      } else {
        report.predicted_in_nontrust.stats.Add(value);
      }
    }
  }
  return report;
}

}  // namespace wot
