// Threshold-free evaluation of continuous trust scores: ROC analysis over
// the pairs of R, with the explicit web of trust as labels. Complements
// the paper's Table 4 (which fixes one binarization) by comparing the
// *score functions* themselves — AUC is invariant to any monotone
// conversion rule.
#ifndef WOT_EVAL_ROC_H_
#define WOT_EVAL_ROC_H_

#include <string>
#include <vector>

#include "wot/core/trust_derivation.h"
#include "wot/linalg/sparse_matrix.h"
#include "wot/util/result.h"

namespace wot {

/// \brief One scored, labeled pair (a coordinate of R).
struct ScoredPair {
  double score;
  bool trusted;
};

/// \brief One operating point of the ROC curve.
struct RocPoint {
  double threshold;
  double true_positive_rate;   // recall of trust at this threshold
  double false_positive_rate;  // nontrust-as-trust rate at this threshold
};

/// \brief ROC summary over one score function.
struct RocReport {
  /// Area under the ROC curve; 0.5 = uninformative, 1.0 = perfect.
  double auc = 0.0;
  size_t positives = 0;  // |R & T|
  size_t negatives = 0;  // |R - T|
  /// A decimated curve (at most ~200 points), threshold descending.
  std::vector<RocPoint> curve;

  std::string ToString() const;
};

/// \brief Computes the ROC of arbitrary scored pairs. Ties are handled by
/// the trapezoid rule (Mann-Whitney equivalence). Fails if either class is
/// empty.
Result<RocReport> ComputeRoc(std::vector<ScoredPair> pairs);

/// \brief Scores every coordinate of R with the derived trust (eq. 5) and
/// computes its ROC against \p explicit_trust.
Result<RocReport> RocOfDerivedTrust(const TrustDeriver& deriver,
                                    const SparseMatrix& direct,
                                    const SparseMatrix& explicit_trust);

/// \brief ROC of a sparse score matrix (e.g. the baseline B) over the
/// coordinates of R; coordinates of R missing from \p scores score 0.
Result<RocReport> RocOfSparseScores(const SparseMatrix& scores,
                                    const SparseMatrix& direct,
                                    const SparseMatrix& explicit_trust);

}  // namespace wot

#endif  // WOT_EVAL_ROC_H_
