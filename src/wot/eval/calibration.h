// Score calibration: derived degrees of trust live on a different scale
// than ratings (the experience discount pulls them down), so downstream
// predictors map them through a least-squares affine fit learned on
// visible data. Used by the recommender example and available to any
// application embedding T-hat into a rating-scale model.
#ifndef WOT_EVAL_CALIBRATION_H_
#define WOT_EVAL_CALIBRATION_H_

#include <string>

#include "wot/util/result.h"

namespace wot {

/// \brief An affine map y = slope * x + intercept fitted by least squares.
class LinearCalibration {
 public:
  /// Identity map.
  LinearCalibration() = default;
  LinearCalibration(double slope, double intercept)
      : slope_(slope), intercept_(intercept) {}

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

  /// \brief Applies the map.
  double Apply(double x) const { return slope_ * x + intercept_; }

  /// \brief Applies the map and clamps into [lo, hi].
  double ApplyClamped(double x, double lo, double hi) const;

  std::string ToString() const;

 private:
  double slope_ = 1.0;
  double intercept_ = 0.0;
};

/// \brief Streaming accumulator for the 1-D least-squares fit
/// y ~ a*x + b. Observations are added one at a time; Fit() can be called
/// at any point after two distinct x values have been seen.
class CalibrationFitter {
 public:
  void Add(double x, double y);

  size_t count() const { return count_; }

  /// \brief Solves for (slope, intercept). Fails with FailedPrecondition
  /// until at least two observations with distinct x exist.
  Result<LinearCalibration> Fit() const;

 private:
  size_t count_ = 0;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_xy_ = 0.0;
};

}  // namespace wot

#endif  // WOT_EVAL_CALIBRATION_H_
