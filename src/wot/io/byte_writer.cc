#include "wot/io/byte_writer.h"

#include <bit>

namespace wot {

ByteWriter& ByteWriter::PutLittleEndian(uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buffer_.push_back(static_cast<char>(v & 0xff));
    v >>= 8;
  }
  return *this;
}

ByteWriter& ByteWriter::PutU8(uint8_t v) { return PutLittleEndian(v, 1); }

ByteWriter& ByteWriter::PutU32(uint32_t v) { return PutLittleEndian(v, 4); }

ByteWriter& ByteWriter::PutU64(uint64_t v) { return PutLittleEndian(v, 8); }

ByteWriter& ByteWriter::PutI32(int32_t v) {
  return PutLittleEndian(static_cast<uint32_t>(v), 4);
}

ByteWriter& ByteWriter::PutI64(int64_t v) {
  return PutLittleEndian(static_cast<uint64_t>(v), 8);
}

ByteWriter& ByteWriter::PutDouble(double v) {
  return PutLittleEndian(std::bit_cast<uint64_t>(v), 8);
}

ByteWriter& ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  return PutRaw(s);
}

ByteWriter& ByteWriter::PutRaw(std::string_view bytes) {
  buffer_.append(bytes);
  return *this;
}

}  // namespace wot
