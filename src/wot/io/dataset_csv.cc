#include "wot/io/dataset_csv.h"

#include <filesystem>
#include <unordered_map>

#include "wot/io/csv.h"
#include "wot/util/string_util.h"

namespace wot {

namespace {

namespace fs = std::filesystem;

std::string PathJoin(const std::string& dir, const char* file) {
  return (fs::path(dir) / file).string();
}

Status ExpectHeader(const std::vector<CsvRow>& rows, const CsvRow& expected,
                    const char* file) {
  if (rows.empty()) {
    return Status::Corruption(std::string(file) + ": missing header row");
  }
  if (rows[0] != expected) {
    return Status::Corruption(std::string(file) + ": unexpected header '" +
                              Join(rows[0], ",") + "', want '" +
                              Join(expected, ",") + "'");
  }
  return Status::OK();
}

Status ExpectWidth(const CsvRow& row, size_t width, const char* file,
                   size_t line) {
  if (row.size() != width) {
    return Status::Corruption(std::string(file) + " line " +
                              std::to_string(line + 1) + ": expected " +
                              std::to_string(width) + " fields, got " +
                              std::to_string(row.size()));
  }
  return Status::OK();
}

}  // namespace

Status SaveDatasetCsv(const Dataset& dataset, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + directory +
                           "': " + ec.message());
  }

  {
    std::vector<CsvRow> rows = {{"name"}};
    for (const auto& category : dataset.categories()) {
      rows.push_back({category.name});
    }
    WOT_RETURN_IF_ERROR(
        WriteCsvFile(PathJoin(directory, "categories.csv"), rows));
  }
  {
    std::vector<CsvRow> rows = {{"name"}};
    for (const auto& user : dataset.users()) {
      rows.push_back({user.name});
    }
    WOT_RETURN_IF_ERROR(WriteCsvFile(PathJoin(directory, "users.csv"), rows));
  }
  {
    std::vector<CsvRow> rows = {{"name", "category"}};
    for (const auto& object : dataset.objects()) {
      rows.push_back({object.name, dataset.category(object.category).name});
    }
    WOT_RETURN_IF_ERROR(
        WriteCsvFile(PathJoin(directory, "objects.csv"), rows));
  }
  {
    std::vector<CsvRow> rows = {{"writer", "object"}};
    for (const auto& review : dataset.reviews()) {
      rows.push_back({dataset.user(review.writer).name,
                      dataset.object(review.object).name});
    }
    WOT_RETURN_IF_ERROR(
        WriteCsvFile(PathJoin(directory, "reviews.csv"), rows));
  }
  {
    std::vector<CsvRow> rows = {{"rater", "writer", "object", "value"}};
    for (const auto& rating : dataset.ratings()) {
      const auto& review = dataset.review(rating.review);
      rows.push_back({dataset.user(rating.rater).name,
                      dataset.user(review.writer).name,
                      dataset.object(review.object).name,
                      FormatDouble(rating.value, 1)});
    }
    WOT_RETURN_IF_ERROR(
        WriteCsvFile(PathJoin(directory, "ratings.csv"), rows));
  }
  {
    std::vector<CsvRow> rows = {{"source", "target"}};
    for (const auto& trust : dataset.trust_statements()) {
      rows.push_back({dataset.user(trust.source).name,
                      dataset.user(trust.target).name});
    }
    WOT_RETURN_IF_ERROR(WriteCsvFile(PathJoin(directory, "trust.csv"), rows));
  }
  return Status::OK();
}

Result<Dataset> LoadDatasetCsv(const std::string& directory,
                               DatasetBuilderOptions options) {
  DatasetBuilder builder(options);

  std::unordered_map<std::string, CategoryId> categories;
  std::unordered_map<std::string, UserId> users;
  std::unordered_map<std::string, ObjectId> objects;
  // Reviews are keyed by "writer|object" in ratings.csv.
  std::unordered_map<std::string, ReviewId> reviews;

  {
    WOT_ASSIGN_OR_RETURN(auto rows,
                         ReadCsvFile(PathJoin(directory, "categories.csv")));
    WOT_RETURN_IF_ERROR(ExpectHeader(rows, {"name"}, "categories.csv"));
    for (size_t i = 1; i < rows.size(); ++i) {
      WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 1, "categories.csv", i));
      if (categories.count(rows[i][0]) != 0) {
        return Status::Corruption("categories.csv: duplicate category '" +
                                  rows[i][0] + "'");
      }
      categories.emplace(rows[i][0], builder.AddCategory(rows[i][0]));
    }
  }
  {
    WOT_ASSIGN_OR_RETURN(auto rows,
                         ReadCsvFile(PathJoin(directory, "users.csv")));
    WOT_RETURN_IF_ERROR(ExpectHeader(rows, {"name"}, "users.csv"));
    for (size_t i = 1; i < rows.size(); ++i) {
      WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 1, "users.csv", i));
      if (users.count(rows[i][0]) != 0) {
        return Status::Corruption("users.csv: duplicate user '" +
                                  rows[i][0] + "'");
      }
      users.emplace(rows[i][0], builder.AddUser(rows[i][0]));
    }
  }
  {
    WOT_ASSIGN_OR_RETURN(auto rows,
                         ReadCsvFile(PathJoin(directory, "objects.csv")));
    WOT_RETURN_IF_ERROR(
        ExpectHeader(rows, {"name", "category"}, "objects.csv"));
    for (size_t i = 1; i < rows.size(); ++i) {
      WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 2, "objects.csv", i));
      auto cat = categories.find(rows[i][1]);
      if (cat == categories.end()) {
        return Status::Corruption("objects.csv: unknown category '" +
                                  rows[i][1] + "'");
      }
      if (objects.count(rows[i][0]) != 0) {
        return Status::Corruption("objects.csv: duplicate object '" +
                                  rows[i][0] + "'");
      }
      WOT_ASSIGN_OR_RETURN(ObjectId oid,
                           builder.AddObject(cat->second, rows[i][0]));
      objects.emplace(rows[i][0], oid);
    }
  }
  {
    WOT_ASSIGN_OR_RETURN(auto rows,
                         ReadCsvFile(PathJoin(directory, "reviews.csv")));
    WOT_RETURN_IF_ERROR(
        ExpectHeader(rows, {"writer", "object"}, "reviews.csv"));
    for (size_t i = 1; i < rows.size(); ++i) {
      WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 2, "reviews.csv", i));
      auto writer = users.find(rows[i][0]);
      if (writer == users.end()) {
        return Status::Corruption("reviews.csv: unknown writer '" +
                                  rows[i][0] + "'");
      }
      auto object = objects.find(rows[i][1]);
      if (object == objects.end()) {
        return Status::Corruption("reviews.csv: unknown object '" +
                                  rows[i][1] + "'");
      }
      WOT_ASSIGN_OR_RETURN(
          ReviewId rid, builder.AddReview(writer->second, object->second));
      reviews.emplace(rows[i][0] + "|" + rows[i][1], rid);
    }
  }
  {
    WOT_ASSIGN_OR_RETURN(auto rows,
                         ReadCsvFile(PathJoin(directory, "ratings.csv")));
    WOT_RETURN_IF_ERROR(ExpectHeader(
        rows, {"rater", "writer", "object", "value"}, "ratings.csv"));
    for (size_t i = 1; i < rows.size(); ++i) {
      WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 4, "ratings.csv", i));
      auto rater = users.find(rows[i][0]);
      if (rater == users.end()) {
        return Status::Corruption("ratings.csv: unknown rater '" +
                                  rows[i][0] + "'");
      }
      auto review = reviews.find(rows[i][1] + "|" + rows[i][2]);
      if (review == reviews.end()) {
        return Status::Corruption("ratings.csv: no review of '" +
                                  rows[i][2] + "' by '" + rows[i][1] + "'");
      }
      WOT_ASSIGN_OR_RETURN(double value, ParseDouble(rows[i][3]));
      WOT_RETURN_IF_ERROR(
          builder.AddRating(rater->second, review->second, value));
    }
  }
  // trust.csv is optional: communities without an explicit web of trust are
  // exactly the paper's motivating case.
  {
    std::string path = PathJoin(directory, "trust.csv");
    if (fs::exists(path)) {
      WOT_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
      WOT_RETURN_IF_ERROR(
          ExpectHeader(rows, {"source", "target"}, "trust.csv"));
      for (size_t i = 1; i < rows.size(); ++i) {
        WOT_RETURN_IF_ERROR(ExpectWidth(rows[i], 2, "trust.csv", i));
        auto source = users.find(rows[i][0]);
        auto target = users.find(rows[i][1]);
        if (source == users.end() || target == users.end()) {
          return Status::Corruption("trust.csv line " + std::to_string(i + 1) +
                                    ": unknown user");
        }
        WOT_RETURN_IF_ERROR(builder.AddTrust(source->second, target->second));
      }
    }
  }
  return builder.Build();
}

}  // namespace wot
