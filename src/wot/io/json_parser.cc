#include "wot/io/json_parser.h"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace wot {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<int64_t> JsonValue::GetInt(std::string_view key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) {
    return Status::InvalidArgument("missing field '" + std::string(key) +
                                   "'");
  }
  if (!member->is_number() || !member->number_is_int()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be an integer");
  }
  return member->int_value();
}

Result<double> JsonValue::GetDouble(std::string_view key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) {
    return Status::InvalidArgument("missing field '" + std::string(key) +
                                   "'");
  }
  if (!member->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  return member->number_value();
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* member = Find(key);
  if (member == nullptr) {
    return Status::InvalidArgument("missing field '" + std::string(key) +
                                   "'");
  }
  if (!member->is_string()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a string");
  }
  return member->string_value();
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  // Integral and exactly representable both as double and int64?
  if (std::isfinite(value) && value >= -9.223372036854775808e18 &&
      value < 9.223372036854775808e18 &&
      value == std::trunc(value)) {
    v.number_is_int_ = true;
    v.int_ = static_cast<int64_t>(value);
  }
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    WOT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxJsonDepth) {
      return Error("nesting deeper than " + std::to_string(kMaxJsonDepth));
    }
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        WOT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      WOT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWhitespace();
      WOT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    while (true) {
      SkipWhitespace();
      WOT_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      unsigned char ch = static_cast<unsigned char>(text_[pos_]);
      if (ch == '"') {
        ++pos_;
        return out;
      }
      if (ch < 0x20) {
        return Error("unescaped control character in string");
      }
      if (ch != '\\') {
        out += static_cast<char>(ch);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        return Error("dangling escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          WOT_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Surrogate pair?
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              WOT_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char ch = text_[pos_ + i];
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<uint32_t>(ch - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return code;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    // Leading zero may not be followed by more digits (strict JSON).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    double value = 0.0;
    std::string_view token = text_.substr(start, pos_ - start);
    std::from_chars_result r =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (r.ec == std::errc::result_out_of_range) {
      // Overflowing literals clamp to +/-HUGE_VAL per from_chars; a
      // non-finite number is not representable in JSON, so reject.
      return Error("number out of range");
    }
    if (r.ec != std::errc() || r.ptr != token.data() + token.size()) {
      return Error("invalid number");
    }
    return JsonValue::MakeNumber(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace wot
