// CRC-32 (IEEE 802.3 polynomial, reflected) for binary-format integrity
// checks.
#ifndef WOT_IO_CRC32_H_
#define WOT_IO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace wot {

/// \brief Extends a running CRC-32 with \p len bytes. Start with crc = 0.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// \brief CRC-32 of one contiguous buffer.
inline uint32_t Crc32(const void* data, size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace wot

#endif  // WOT_IO_CRC32_H_
