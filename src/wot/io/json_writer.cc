#include "wot/io/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "wot/util/check.h"

namespace wot {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    // Top-level value: only one is allowed.
    WOT_DCHECK(out_.empty());
    return;
  }
  if (stack_.back() == Scope::kObject) {
    WOT_DCHECK(key_pending_);
    key_pending_ = false;
  } else {
    if (!first_.back()) {
      out_ += ',';
    }
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  WOT_DCHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  WOT_DCHECK(!key_pending_);
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  WOT_DCHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  WOT_DCHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  WOT_DCHECK(!key_pending_);
  if (!first_.back()) {
    out_ += ',';
  }
  first_.back() = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  // Shortest form that parses back to the same bits.
  char buf[32];
  std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), value);
  out_.append(buf, r.ptr);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace wot
