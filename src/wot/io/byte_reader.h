// Bounds-checked little-endian byte deserializer, the inverse of
// ByteWriter.
//
// The reader is sticky-failure: the first underflow latches failed() and
// every later accessor returns a zero value without advancing, so decode
// code stays a straight line of Get calls with a single `failed()` check
// at the end instead of per-field error plumbing. String lengths are
// validated against the remaining buffer before any allocation, so a
// hostile length prefix can never demand more memory than the frame
// itself occupies.
#ifndef WOT_IO_BYTE_READER_H_
#define WOT_IO_BYTE_READER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wot {

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32();
  int64_t GetI64();
  double GetDouble();
  /// u32 length prefix followed by that many raw bytes; fails (and
  /// returns empty) when the prefix overruns the buffer.
  std::string GetString();

  /// \brief Bounds-checks and consumes \p n raw bytes in one step,
  /// returning a pointer into the underlying buffer (valid as long as
  /// the buffer is), or nullptr after latching failure when fewer than
  /// \p n bytes remain. Bulk decoders of fixed-width record arrays use
  /// this to hoist the per-field bounds checks out of their hot loops.
  const char* GetRaw(size_t n);

  /// True once any read has overrun the buffer.
  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  /// True when every byte has been consumed without a failure — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool AtEnd() const { return !failed_ && remaining() == 0; }

 private:
  uint64_t GetLittleEndian(int bytes);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace wot

#endif  // WOT_IO_BYTE_READER_H_
