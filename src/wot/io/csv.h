// RFC-4180-style CSV reading and writing: quoted fields, embedded commas,
// escaped quotes ("") and embedded newlines are supported. CRLF and LF line
// endings are both accepted on input; output uses LF.
#ifndef WOT_IO_CSV_H_
#define WOT_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "wot/util/result.h"

namespace wot {

/// \brief One parsed CSV record (row of fields).
using CsvRow = std::vector<std::string>;

/// \brief Parses an entire CSV document from memory.
/// A trailing newline does not produce an empty final row; completely empty
/// input yields zero rows.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text);

/// \brief Reads and parses a CSV file.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path);

/// \brief Escapes one field per RFC 4180 (quotes only when needed).
std::string CsvEscape(std::string_view field);

/// \brief Serializes rows to CSV text (LF line endings).
std::string WriteCsv(const std::vector<CsvRow>& rows);

/// \brief Writes rows to a file, creating or truncating it.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows);

/// \brief Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes a string to a file (truncate semantics).
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace wot

#endif  // WOT_IO_CSV_H_
