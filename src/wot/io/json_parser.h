// JsonParser: a small, dependency-free JSON parser for the wire protocol.
//
// Parses one complete JSON document into a JsonValue DOM. Strict by
// design — trailing garbage, unterminated literals, invalid escapes and
// documents nested deeper than kMaxJsonDepth are errors — because the
// input is an untrusted NDJSON frame and the API layer must turn any
// malformed line into a structured error instead of crashing.
//
// Numbers are held as double (parsed with std::from_chars, so a double
// written by JsonWriter round-trips bit-identically) plus an
// is-representable-as-int64 flag for fields that are semantically
// integers (ids, counts).
//
// \uXXXX escapes are decoded to UTF-8 (surrogate pairs supported); other
// bytes pass through unvalidated, which is fine for the protocol's ASCII
// framing.
#ifndef WOT_IO_JSON_PARSER_H_
#define WOT_IO_JSON_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wot/util/result.h"

namespace wot {

/// \brief Maximum nesting depth ParseJson accepts. Frames in the wot API
/// are at most ~4 levels deep; the cap exists so adversarial input like
/// "[[[[..." cannot overflow the parser's recursion.
inline constexpr int kMaxJsonDepth = 64;

/// \brief One parsed JSON value (recursive sum type).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors are valid only for the matching kind (0/empty otherwise).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  /// True when the number is integral and fits int64 exactly.
  bool number_is_int() const { return number_is_int_; }
  int64_t int_value() const { return int_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  /// Members in document order (duplicate keys are kept; Find returns the
  /// first).
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // --- Typed field extraction for decoding protocol frames. Each returns
  // --- an error naming \p key when the member is absent or mistyped.
  Result<int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;

  // Construction helpers used by the parser.
  static JsonValue MakeNull();
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool number_is_int_ = false;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// \brief Parses exactly one JSON document (surrounding whitespace
/// allowed). Returns InvalidArgument with an offset-bearing message on any
/// syntax error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace wot

#endif  // WOT_IO_JSON_PARSER_H_
