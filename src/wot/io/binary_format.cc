#include "wot/io/binary_format.h"

#include <cstring>

#include "wot/community/dataset_builder.h"
#include "wot/io/crc32.h"
#include "wot/io/csv.h"

namespace wot {

namespace {

constexpr char kMagic[4] = {'W', 'O', 'T', 'B'};

class Writer {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }
  void PutRaw(const void* data, size_t len) {
    buffer_.append(static_cast<const char*>(data), len);
  }
  std::string Take() { return std::move(buffer_); }
  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }

  Status GetString(std::string* out) {
    uint32_t len = 0;
    WOT_RETURN_IF_ERROR(GetU32(&len));
    if (len > Remaining()) {
      return Status::Corruption("string length exceeds buffer");
    }
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status GetRaw(void* out, size_t len) {
    if (len > Remaining()) {
      return Status::Corruption("unexpected end of buffer");
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  Writer body;
  body.PutU64(dataset.num_categories());
  for (const auto& category : dataset.categories()) {
    body.PutString(category.name);
  }
  body.PutU64(dataset.num_users());
  for (const auto& user : dataset.users()) {
    body.PutString(user.name);
  }
  body.PutU64(dataset.num_objects());
  for (const auto& object : dataset.objects()) {
    body.PutU32(object.category.value());
    body.PutString(object.name);
  }
  body.PutU64(dataset.num_reviews());
  for (const auto& review : dataset.reviews()) {
    body.PutU32(review.writer.value());
    body.PutU32(review.object.value());
  }
  body.PutU64(dataset.num_ratings());
  for (const auto& rating : dataset.ratings()) {
    body.PutU32(rating.rater.value());
    body.PutU32(rating.review.value());
    body.PutDouble(rating.value);
  }
  body.PutU64(dataset.num_trust_statements());
  for (const auto& trust : dataset.trust_statements()) {
    body.PutU32(trust.source.value());
    body.PutU32(trust.target.value());
  }

  Writer out;
  out.PutRaw(kMagic, sizeof(kMagic));
  out.PutU32(kBinaryFormatVersion);
  const std::string& payload = body.buffer();
  out.PutU64(payload.size());
  out.PutRaw(payload.data(), payload.size());
  out.PutU32(Crc32(payload.data(), payload.size()));
  return out.Take();
}

Result<Dataset> DeserializeDataset(std::string_view buffer) {
  Reader reader(buffer);
  char magic[4];
  WOT_RETURN_IF_ERROR(reader.GetRaw(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic; not a WOTB file");
  }
  uint32_t version = 0;
  WOT_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kBinaryFormatVersion) {
    return Status::Corruption("unsupported WOTB version " +
                              std::to_string(version));
  }
  uint64_t payload_size = 0;
  WOT_RETURN_IF_ERROR(reader.GetU64(&payload_size));
  if (payload_size + sizeof(uint32_t) > reader.Remaining()) {
    return Status::Corruption("payload length exceeds buffer");
  }
  std::string_view payload = buffer.substr(reader.pos(), payload_size);
  Reader body(payload);
  // Verify the checksum before trusting any length field inside.
  {
    Reader tail(buffer.substr(reader.pos() + payload_size));
    uint32_t stored_crc = 0;
    WOT_RETURN_IF_ERROR(tail.GetU32(&stored_crc));
    uint32_t actual_crc = Crc32(payload.data(), payload.size());
    if (stored_crc != actual_crc) {
      return Status::Corruption("CRC mismatch: file is corrupt");
    }
  }

  // Loading bypasses name-keyed maps: ids are already dense. Builder
  // validation still applies (referential integrity, policy rules).
  DatasetBuilder builder;
  uint64_t count = 0;

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    WOT_RETURN_IF_ERROR(body.GetString(&name));
    builder.AddCategory(std::move(name));
  }

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    WOT_RETURN_IF_ERROR(body.GetString(&name));
    builder.AddUser(std::move(name));
  }

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t category = 0;
    std::string name;
    WOT_RETURN_IF_ERROR(body.GetU32(&category));
    WOT_RETURN_IF_ERROR(body.GetString(&name));
    WOT_ASSIGN_OR_RETURN(ObjectId oid, builder.AddObject(CategoryId(category),
                                                         std::move(name)));
    (void)oid;
  }

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t writer = 0;
    uint32_t object = 0;
    WOT_RETURN_IF_ERROR(body.GetU32(&writer));
    WOT_RETURN_IF_ERROR(body.GetU32(&object));
    WOT_ASSIGN_OR_RETURN(
        ReviewId rid, builder.AddReview(UserId(writer), ObjectId(object)));
    (void)rid;
  }

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rater = 0;
    uint32_t review = 0;
    double value = 0.0;
    WOT_RETURN_IF_ERROR(body.GetU32(&rater));
    WOT_RETURN_IF_ERROR(body.GetU32(&review));
    WOT_RETURN_IF_ERROR(body.GetDouble(&value));
    WOT_RETURN_IF_ERROR(
        builder.AddRating(UserId(rater), ReviewId(review), value));
  }

  WOT_RETURN_IF_ERROR(body.GetU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t source = 0;
    uint32_t target = 0;
    WOT_RETURN_IF_ERROR(body.GetU32(&source));
    WOT_RETURN_IF_ERROR(body.GetU32(&target));
    WOT_RETURN_IF_ERROR(builder.AddTrust(UserId(source), UserId(target)));
  }

  if (body.Remaining() != 0) {
    return Status::Corruption("trailing bytes after last section");
  }
  return builder.Build();
}

Status SaveDatasetBinary(const Dataset& dataset, const std::string& path) {
  return WriteStringToFile(path, SerializeDataset(dataset));
}

Result<Dataset> LoadDatasetBinary(const std::string& path) {
  WOT_ASSIGN_OR_RETURN(std::string buffer, ReadFileToString(path));
  Result<Dataset> dataset = DeserializeDataset(buffer);
  if (!dataset.ok()) {
    return dataset.status().WithContext(path);
  }
  return dataset;
}

}  // namespace wot
