// JsonWriter: a small, dependency-free JSON emitter for the wire protocol.
//
// Emits compact single-line JSON (no newlines, minimal whitespace), which
// is what the NDJSON framing in wot/api needs: one frame per line. Doubles
// are written with std::to_chars shortest round-trip form, so a value
// parsed back through wot/io/json_parser is bit-identical — the API
// property tests rely on this.
//
//   JsonWriter w;
//   w.BeginObject().Key("method").String("trust")
//    .Key("params").BeginObject()
//      .Key("source").String("alice").Key("k").Int(10)
//    .EndObject().EndObject();
//   std::string line = w.str();
//
// Misuse (e.g. a value with no pending key inside an object) trips a
// WOT_DCHECK; the writer is for trusted library code, not user input.
#ifndef WOT_IO_JSON_WRITER_H_
#define WOT_IO_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wot {

/// \brief Escapes \p text for inclusion inside a JSON string literal
/// (quotes not included). Control characters become \uXXXX.
std::string JsonEscape(std::string_view text);

/// \brief Streaming builder of one compact JSON document.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// \brief Emits the key of the next object member.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  /// Non-finite doubles have no JSON representation and are written as
  /// null (the parser maps them back to 0; API payloads are finite).
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// \brief The document so far. Complete once every Begin* is matched.
  const std::string& str() const { return out_; }

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_;  // parallel to stack_: no member emitted yet
  bool key_pending_ = false;
};

}  // namespace wot

#endif  // WOT_IO_JSON_WRITER_H_
