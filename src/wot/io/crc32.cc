#include "wot/io/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace wot {

namespace {

// Slicing-by-16 tables: tables[0] is the classic byte-at-a-time table,
// tables[k][b] is the CRC contribution of byte b seen k positions deeper
// in a 16-byte block. Same polynomial, same values as the bytewise loop
// — just sixteen independent table lookups per 16 input bytes, which
// matters when the recovery path CRCs multi-megabyte snapshot segments.
std::array<std::array<uint32_t, 256>, 16> MakeTables() {
  std::array<std::array<uint32_t, 256>, 16> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t slice = 1; slice < 16; ++slice) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[slice][i] = c;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 16>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 16> tables =
      MakeTables();
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = Tables();
  crc = ~crc;
  // Two-word main loop on little-endian hosts: the CRC folds into the
  // first word only, so the second word's lookups are independent and
  // the CPU can overlap them. The byte loop below is both the portable
  // fallback and the tail handler.
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 16) {
      uint64_t lo;
      uint64_t hi;
      std::memcpy(&lo, bytes, 8);
      std::memcpy(&hi, bytes + 8, 8);
      lo ^= crc;
      crc = t[15][lo & 0xFFu] ^ t[14][(lo >> 8) & 0xFFu] ^
            t[13][(lo >> 16) & 0xFFu] ^ t[12][(lo >> 24) & 0xFFu] ^
            t[11][(lo >> 32) & 0xFFu] ^ t[10][(lo >> 40) & 0xFFu] ^
            t[9][(lo >> 48) & 0xFFu] ^ t[8][(lo >> 56) & 0xFFu] ^
            t[7][hi & 0xFFu] ^ t[6][(hi >> 8) & 0xFFu] ^
            t[5][(hi >> 16) & 0xFFu] ^ t[4][(hi >> 24) & 0xFFu] ^
            t[3][(hi >> 32) & 0xFFu] ^ t[2][(hi >> 40) & 0xFFu] ^
            t[1][(hi >> 48) & 0xFFu] ^ t[0][(hi >> 56) & 0xFFu];
      bytes += 16;
      len -= 16;
    }
  }
  for (size_t i = 0; i < len; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace wot
