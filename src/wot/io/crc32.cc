#include "wot/io/crc32.h"

#include <array>

namespace wot {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace wot
