// Append-only little-endian byte serializer for wire frames.
//
// Unlike the private Writer inside binary_format.cc (which memcpys native
// representations into a host-endian snapshot file), ByteWriter defines the
// byte order explicitly: every fixed-width field is emitted little-endian
// byte by byte, so frames produced on any host are identical on the wire.
// Strings are length-delimited with a u32 prefix. Doubles travel as their
// IEEE-754 bit pattern in a little-endian u64.
#ifndef WOT_IO_BYTE_WRITER_H_
#define WOT_IO_BYTE_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wot {

class ByteWriter {
 public:
  ByteWriter& PutU8(uint8_t v);
  ByteWriter& PutU32(uint32_t v);
  ByteWriter& PutU64(uint64_t v);
  ByteWriter& PutI32(int32_t v);
  ByteWriter& PutI64(int64_t v);
  ByteWriter& PutDouble(double v);
  /// u32 length prefix followed by the raw bytes.
  ByteWriter& PutString(std::string_view s);
  ByteWriter& PutRaw(std::string_view bytes);

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  ByteWriter& PutLittleEndian(uint64_t v, int bytes);

  std::string buffer_;
};

}  // namespace wot

#endif  // WOT_IO_BYTE_WRITER_H_
