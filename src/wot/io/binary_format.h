// Compact binary dataset serialization ("WOTB" format).
//
// Layout (little-endian):
//   magic "WOTB" | u32 version | 6 sections | u32 crc32(all section bytes)
// Sections, in order: categories, users, objects, reviews, ratings, trust.
// Strings are u32 length + bytes; counts are u64.
//
// The binary format is ~5x smaller and ~20x faster to load than the CSV
// directory; integrity is guarded by the trailing CRC-32.
#ifndef WOT_IO_BINARY_FORMAT_H_
#define WOT_IO_BINARY_FORMAT_H_

#include <string>

#include "wot/community/dataset.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Current writer version. Readers accept exactly this version.
inline constexpr uint32_t kBinaryFormatVersion = 1;

/// \brief Serializes \p dataset to an in-memory buffer.
std::string SerializeDataset(const Dataset& dataset);

/// \brief Parses a buffer produced by SerializeDataset, re-running full
/// builder validation. Corrupt length fields, bad magic, version skew and
/// CRC mismatches all yield Corruption errors (never UB).
Result<Dataset> DeserializeDataset(std::string_view buffer);

/// \brief Writes the serialized dataset to \p path.
Status SaveDatasetBinary(const Dataset& dataset, const std::string& path);

/// \brief Reads a dataset from \p path.
Result<Dataset> LoadDatasetBinary(const std::string& path);

}  // namespace wot

#endif  // WOT_IO_BINARY_FORMAT_H_
