#include "wot/io/csv.h"

#include <fstream>
#include <sstream>

namespace wot {

Result<std::vector<CsvRow>> ParseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // row has at least one (possibly empty) field

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::Corruption(
              "CSV: quote inside unquoted field near offset " +
              std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        field_started = true;  // a field follows the comma, possibly empty
        ++i;
        break;
      case '\r':
        // Swallow; the following \n (if any) terminates the row.
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field.push_back(c);
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV: unterminated quoted field");
  }
  if (!field.empty() || !row.empty() || field_started) {
    end_row();
  }
  return rows;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path) {
  WOT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  Result<std::vector<CsvRow>> parsed = ParseCsv(content);
  if (!parsed.ok()) {
    return parsed.status().WithContext(path);
  }
  return parsed;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out.push_back(',');
      }
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows) {
  return WriteStringToFile(path, WriteCsv(rows));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failure on '" + path + "'");
  }
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) {
    return Status::IOError("write failure on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace wot
