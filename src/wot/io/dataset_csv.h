// Dataset <-> CSV-directory serialization.
//
// A dataset directory contains five files:
//   categories.csv  header: name
//   users.csv       header: name
//   objects.csv     header: name,category
//   reviews.csv     header: writer,object
//   ratings.csv     header: rater,writer,object,value
//   trust.csv       header: source,target            (optional file)
//
// All references are by *name*, so dumps are diffable and a real Epinions
// crawl can be converted to this schema with a few lines of scripting.
// Loading re-interns names into dense ids via DatasetBuilder, running the
// full validation suite.
#ifndef WOT_IO_DATASET_CSV_H_
#define WOT_IO_DATASET_CSV_H_

#include <string>

#include "wot/community/dataset.h"
#include "wot/community/dataset_builder.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Writes all dataset files into \p directory (created if missing).
Status SaveDatasetCsv(const Dataset& dataset, const std::string& directory);

/// \brief Loads a dataset directory written by SaveDatasetCsv (or converted
/// from external data). Missing trust.csv is treated as "no trust data".
Result<Dataset> LoadDatasetCsv(const std::string& directory,
                               DatasetBuilderOptions options = {});

}  // namespace wot

#endif  // WOT_IO_DATASET_CSV_H_
