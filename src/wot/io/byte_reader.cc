#include "wot/io/byte_reader.h"

#include <bit>

namespace wot {

uint64_t ByteReader::GetLittleEndian(int bytes) {
  if (failed_ || remaining() < static_cast<size_t>(bytes)) {
    failed_ = true;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += bytes;
  return v;
}

uint8_t ByteReader::GetU8() { return static_cast<uint8_t>(GetLittleEndian(1)); }

uint32_t ByteReader::GetU32() {
  return static_cast<uint32_t>(GetLittleEndian(4));
}

uint64_t ByteReader::GetU64() { return GetLittleEndian(8); }

int32_t ByteReader::GetI32() {
  return static_cast<int32_t>(static_cast<uint32_t>(GetLittleEndian(4)));
}

int64_t ByteReader::GetI64() { return static_cast<int64_t>(GetLittleEndian(8)); }

double ByteReader::GetDouble() {
  return std::bit_cast<double>(GetLittleEndian(8));
}

const char* ByteReader::GetRaw(size_t n) {
  if (failed_ || remaining() < n) {
    failed_ = true;
    return nullptr;
  }
  const char* p = data_.data() + pos_;
  pos_ += n;
  return p;
}

std::string ByteReader::GetString() {
  uint32_t len = GetU32();
  if (failed_ || len > remaining()) {
    failed_ = true;
    return std::string();
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

}  // namespace wot
