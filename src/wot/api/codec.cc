#include "wot/api/codec.h"

#include <utility>

#include "wot/io/json_parser.h"
#include "wot/io/json_writer.h"

namespace wot {
namespace api {
namespace {

// Indexed by ResponsePayload variant alternative (monostate unnamed).
const char* const kResultTypeNames[] = {
    "", "trust", "topk", "explain", "ingest", "commit", "stats",
    "metrics", "repl_fetch", "repl_status",
};
static_assert(sizeof(kResultTypeNames) / sizeof(kResultTypeNames[0]) ==
                  std::variant_size_v<ResponsePayload>,
              "result type table out of sync with ResponsePayload");

// Replication artifact bytes are arbitrary binary; on the NDJSON wire
// they travel hex-encoded (the v2 binary framing carries them raw).
std::string HexEncode(std::string_view bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xF]);
  }
  return hex;
}

bool HexDecode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

void EncodeParams(const RequestPayload& payload, JsonWriter* w) {
  struct Visitor {
    JsonWriter& w;
    void operator()(const TrustQuery& q) {
      w.Key("source").String(q.source).Key("target").String(q.target);
    }
    void operator()(const TopKQuery& q) {
      w.Key("source").String(q.source).Key("k").Int(q.k);
    }
    void operator()(const ExplainQuery& q) {
      w.Key("source").String(q.source).Key("target").String(q.target);
    }
    void operator()(const IngestUser& q) { w.Key("name").String(q.name); }
    void operator()(const IngestCategory& q) {
      w.Key("name").String(q.name);
    }
    void operator()(const IngestObject& q) {
      w.Key("category").String(q.category).Key("name").String(q.name);
    }
    void operator()(const IngestReview& q) {
      w.Key("writer").String(q.writer).Key("object").Int(q.object);
    }
    void operator()(const IngestRating& q) {
      w.Key("rater").String(q.rater).Key("review").Int(q.review);
      w.Key("value").Double(q.value);
    }
    void operator()(const CommitRequest&) {}
    void operator()(const StatsRequest&) {}
    void operator()(const MetricsRequest&) {}
    void operator()(const ReplFetchRequest& q) {
      w.Key("shard").Int(q.shard);
      w.Key("applied_version").UInt(q.applied_version);
      w.Key("offset").UInt(q.offset);
    }
    void operator()(const ReplStatusRequest&) {}
    void operator()(const ReplPromoteRequest&) {}
  };
  w->Key("params").BeginObject();
  std::visit(Visitor{*w}, payload);
  w->EndObject();
}

void EncodeResult(const ResponsePayload& payload, JsonWriter* w) {
  struct Visitor {
    JsonWriter& w;
    void operator()(const std::monostate&) {}
    void operator()(const TrustResult& r) {
      w.Key("trust").Double(r.trust);
      w.Key("source_name").String(r.source_name);
      w.Key("target_name").String(r.target_name);
      w.Key("snapshot_version").UInt(r.snapshot_version);
    }
    void operator()(const TopKResult& r) {
      w.Key("source_name").String(r.source_name);
      w.Key("trustees").BeginArray();
      for (const ScoredUserEntry& entry : r.trustees) {
        w.BeginObject();
        w.Key("user").UInt(entry.user);
        w.Key("name").String(entry.name);
        w.Key("score").Double(entry.score);
        w.EndObject();
      }
      w.EndArray();
      w.Key("snapshot_version").UInt(r.snapshot_version);
    }
    void operator()(const ExplainResult& r) {
      w.Key("trust").Double(r.trust);
      w.Key("affinity_sum").Double(r.affinity_sum);
      w.Key("source_name").String(r.source_name);
      w.Key("target_name").String(r.target_name);
      w.Key("terms").BeginArray();
      for (const ExplainTermResult& term : r.terms) {
        w.BeginObject();
        w.Key("category").UInt(term.category);
        w.Key("category_name").String(term.category_name);
        w.Key("affiliation").Double(term.affiliation);
        w.Key("expertise").Double(term.expertise);
        w.Key("contribution").Double(term.contribution);
        w.EndObject();
      }
      w.EndArray();
      w.Key("snapshot_version").UInt(r.snapshot_version);
    }
    void operator()(const IngestResult& r) {
      w.Key("assigned_id").Int(r.assigned_id);
    }
    void operator()(const CommitResult& r) {
      w.Key("snapshot_version").UInt(r.snapshot_version);
      w.Key("published").Bool(r.published);
      w.Key("categories_recomputed").Int(r.categories_recomputed);
      w.Key("affiliation_rows_recomputed")
          .Int(r.affiliation_rows_recomputed);
      w.Key("postings_rebuilt").Int(r.postings_rebuilt);
    }
    void operator()(const StatsResult& r) {
      w.Key("snapshot_version").UInt(r.snapshot_version);
      w.Key("users").Int(r.users);
      w.Key("categories").Int(r.categories);
      w.Key("reviews").Int(r.reviews);
      w.Key("ratings").Int(r.ratings);
      w.Key("service_boots").Int(r.service_boots);
      w.Key("requests_served").Int(r.requests_served);
      w.Key("connections_active").Int(r.connections_active);
      w.Key("connections_accepted").Int(r.connections_accepted);
      w.Key("connection_requests_served")
          .Int(r.connection_requests_served);
      // Additive sharding fields: only present when a multi-shard router
      // answered, so unsharded responses stay byte-identical to pre-
      // sharding servers (and to a ShardRouter with one shard).
      if (r.shards > 0) {
        w.Key("shards").Int(r.shards);
        w.Key("shard_service_boots").BeginArray();
        for (int64_t boots : r.shard_service_boots) {
          w.Int(boots);
        }
        w.EndArray();
        w.Key("shard_requests_served").BeginArray();
        for (int64_t requests : r.shard_requests_served) {
          w.Int(requests);
        }
        w.EndArray();
      }
      // Additive durability fields: only present when a durable store is
      // attached (segment_epoch >= 1 from the first boot segment on), so
      // non-durable responses stay byte-identical to pre-storage servers.
      if (r.segment_epoch > 0) {
        w.Key("wal_records").Int(r.wal_records);
        w.Key("wal_bytes").Int(r.wal_bytes);
        w.Key("segment_epoch").Int(r.segment_epoch);
        w.Key("segment_bytes").Int(r.segment_bytes);
        w.Key("recovered_replayed_records")
            .Int(r.recovered_replayed_records);
      }
    }
    void operator()(const MetricsResult& r) {
      w.Key("snapshot_version").UInt(r.snapshot_version);
      w.Key("counters").BeginArray();
      for (const MetricValue& counter : r.counters) {
        w.BeginObject();
        w.Key("name").String(counter.name);
        w.Key("value").Int(counter.value);
        w.EndObject();
      }
      w.EndArray();
      w.Key("gauges").BeginArray();
      for (const MetricValue& gauge : r.gauges) {
        w.BeginObject();
        w.Key("name").String(gauge.name);
        w.Key("value").Int(gauge.value);
        w.EndObject();
      }
      w.EndArray();
      w.Key("histograms").BeginArray();
      for (const MetricHistogramValue& histogram : r.histograms) {
        w.BeginObject();
        w.Key("name").String(histogram.name);
        w.Key("count").Int(histogram.count);
        w.Key("sum").Int(histogram.sum);
        w.Key("min").Int(histogram.min);
        w.Key("max").Int(histogram.max);
        w.Key("p50").Double(histogram.p50);
        w.Key("p90").Double(histogram.p90);
        w.Key("p99").Double(histogram.p99);
        w.Key("p999").Double(histogram.p999);
        w.EndObject();
      }
      w.EndArray();
    }
    void operator()(const ReplFetchResult& r) {
      w.Key("kind").Int(r.kind);
      w.Key("base_version").UInt(r.base_version);
      w.Key("target_version").UInt(r.target_version);
      w.Key("source_version").UInt(r.source_version);
      w.Key("offset").UInt(r.offset);
      w.Key("total_bytes").UInt(r.total_bytes);
      w.Key("payload").String(HexEncode(r.payload));
    }
    void operator()(const ReplStatusResult& r) {
      w.Key("role").Int(r.role);
      w.Key("applied_version").UInt(r.applied_version);
      w.Key("source_version").UInt(r.source_version);
      w.Key("failovers").Int(r.failovers);
      w.Key("replicas").BeginArray();
      for (const ReplReplicaInfo& replica : r.replicas) {
        w.BeginObject();
        w.Key("shard").Int(replica.shard);
        w.Key("address").String(replica.address);
        w.Key("applied_version").UInt(replica.applied_version);
        w.Key("healthy").Int(replica.healthy);
        w.EndObject();
      }
      w.EndArray();
    }
  };
  w->Key("result").BeginObject();
  std::visit(Visitor{*w}, payload);
  w->EndObject();
}

// Pulls the optional envelope integers out of a (possibly partial) frame
// so error responses can still be correlated.
void SalvageEnvelope(const JsonValue& root, Request* request) {
  if (!root.is_object()) return;
  const JsonValue* id = root.Find("id");
  if (id != nullptr && id->is_number() && id->number_is_int()) {
    request->id = id->int_value();
  }
  const JsonValue* version = root.Find("v");
  if (version != nullptr && version->is_number() &&
      version->number_is_int()) {
    request->version = version->int_value();
  }
}

ApiStatus DecodeParams(const std::string& method, const JsonValue& root,
                       Request* request) {
  static const JsonValue kEmptyParams =
      JsonValue::MakeObject({});
  const JsonValue* params = root.Find("params");
  if (params == nullptr) {
    params = &kEmptyParams;  // parameterless methods may omit the object
  } else if (!params->is_object()) {
    return ApiStatus::InvalidArgument("'params' must be an object");
  }

  // One lambda per field keeps the message shape uniform.
  auto string_field = [&](std::string_view key, std::string* out) {
    Result<std::string> value = params->GetString(key);
    if (!value.ok()) return ApiStatus::FromStatus(value.status());
    *out = std::move(value).ValueOrDie();
    return ApiStatus::Ok();
  };
  auto int_field = [&](std::string_view key, int64_t* out) {
    Result<int64_t> value = params->GetInt(key);
    if (!value.ok()) return ApiStatus::FromStatus(value.status());
    *out = value.ValueOrDie();
    return ApiStatus::Ok();
  };

  ApiStatus status = ApiStatus::Ok();
  if (method == "trust") {
    TrustQuery q;
    status = string_field("source", &q.source);
    if (status.ok()) status = string_field("target", &q.target);
    request->payload = std::move(q);
  } else if (method == "topk") {
    TopKQuery q;
    status = string_field("source", &q.source);
    if (status.ok() && params->Find("k") != nullptr) {
      status = int_field("k", &q.k);
    }
    request->payload = std::move(q);
  } else if (method == "explain") {
    ExplainQuery q;
    status = string_field("source", &q.source);
    if (status.ok()) status = string_field("target", &q.target);
    request->payload = std::move(q);
  } else if (method == "ingest_user") {
    IngestUser q;
    status = string_field("name", &q.name);
    request->payload = std::move(q);
  } else if (method == "ingest_category") {
    IngestCategory q;
    status = string_field("name", &q.name);
    request->payload = std::move(q);
  } else if (method == "ingest_object") {
    IngestObject q;
    status = string_field("category", &q.category);
    if (status.ok()) status = string_field("name", &q.name);
    request->payload = std::move(q);
  } else if (method == "ingest_review") {
    IngestReview q;
    status = string_field("writer", &q.writer);
    if (status.ok()) status = int_field("object", &q.object);
    request->payload = std::move(q);
  } else if (method == "ingest_rating") {
    IngestRating q;
    status = string_field("rater", &q.rater);
    if (status.ok()) status = int_field("review", &q.review);
    if (status.ok()) {
      Result<double> value = params->GetDouble("value");
      if (!value.ok()) {
        status = ApiStatus::FromStatus(value.status());
      } else {
        q.value = value.ValueOrDie();
      }
    }
    request->payload = std::move(q);
  } else if (method == "commit") {
    request->payload = CommitRequest{};
  } else if (method == "stats") {
    request->payload = StatsRequest{};
  } else if (method == "metrics") {
    request->payload = MetricsRequest{};
  } else if (method == "repl_fetch") {
    ReplFetchRequest q;
    if (params->Find("shard") != nullptr) {
      status = int_field("shard", &q.shard);
    }
    auto optional_u64 = [&](std::string_view key, uint64_t* out) {
      if (params->Find(key) == nullptr) return ApiStatus::Ok();
      Result<int64_t> value = params->GetInt(key);
      if (!value.ok()) return ApiStatus::FromStatus(value.status());
      *out = static_cast<uint64_t>(value.ValueOrDie());
      return ApiStatus::Ok();
    };
    if (status.ok()) status = optional_u64("applied_version", &q.applied_version);
    if (status.ok()) status = optional_u64("offset", &q.offset);
    request->payload = std::move(q);
  } else if (method == "repl_status") {
    request->payload = ReplStatusRequest{};
  } else if (method == "repl_promote") {
    request->payload = ReplPromoteRequest{};
  } else {
    return ApiStatus::Unimplemented("unknown method '" + method + "'");
  }
  return status;
}

ApiStatus DecodeResultPayload(const std::string& result_type,
                              const JsonValue& result, Response* response) {
  auto u64_field = [&](std::string_view key, uint64_t* out) {
    Result<int64_t> value = result.GetInt(key);
    if (!value.ok()) return ApiStatus::FromStatus(value.status());
    *out = static_cast<uint64_t>(value.ValueOrDie());
    return ApiStatus::Ok();
  };

  auto name_field = [&](std::string_view key, std::string* out) {
    Result<std::string> value = result.GetString(key);
    if (!value.ok()) return ApiStatus::FromStatus(value.status());
    *out = std::move(value).ValueOrDie();
    return ApiStatus::Ok();
  };

  ApiStatus status = ApiStatus::Ok();
  if (result_type == "trust") {
    TrustResult r;
    Result<double> trust = result.GetDouble("trust");
    if (!trust.ok()) return ApiStatus::FromStatus(trust.status());
    r.trust = trust.ValueOrDie();
    status = name_field("source_name", &r.source_name);
    if (!status.ok()) return status;
    status = name_field("target_name", &r.target_name);
    if (!status.ok()) return status;
    status = u64_field("snapshot_version", &r.snapshot_version);
    response->payload = std::move(r);
  } else if (result_type == "topk") {
    TopKResult r;
    status = name_field("source_name", &r.source_name);
    if (!status.ok()) return status;
    const JsonValue* trustees = result.Find("trustees");
    if (trustees == nullptr || !trustees->is_array()) {
      return ApiStatus::InvalidArgument("missing 'trustees' array");
    }
    for (const JsonValue& item : trustees->array()) {
      ScoredUserEntry entry;
      Result<int64_t> user = item.GetInt("user");
      if (!user.ok()) return ApiStatus::FromStatus(user.status());
      entry.user = static_cast<uint32_t>(user.ValueOrDie());
      Result<std::string> name = item.GetString("name");
      if (!name.ok()) return ApiStatus::FromStatus(name.status());
      entry.name = std::move(name).ValueOrDie();
      Result<double> score = item.GetDouble("score");
      if (!score.ok()) return ApiStatus::FromStatus(score.status());
      entry.score = score.ValueOrDie();
      r.trustees.push_back(std::move(entry));
    }
    status = u64_field("snapshot_version", &r.snapshot_version);
    response->payload = std::move(r);
  } else if (result_type == "explain") {
    ExplainResult r;
    Result<double> trust = result.GetDouble("trust");
    if (!trust.ok()) return ApiStatus::FromStatus(trust.status());
    r.trust = trust.ValueOrDie();
    Result<double> affinity = result.GetDouble("affinity_sum");
    if (!affinity.ok()) return ApiStatus::FromStatus(affinity.status());
    r.affinity_sum = affinity.ValueOrDie();
    status = name_field("source_name", &r.source_name);
    if (!status.ok()) return status;
    status = name_field("target_name", &r.target_name);
    if (!status.ok()) return status;
    const JsonValue* terms = result.Find("terms");
    if (terms == nullptr || !terms->is_array()) {
      return ApiStatus::InvalidArgument("missing 'terms' array");
    }
    for (const JsonValue& item : terms->array()) {
      ExplainTermResult term;
      Result<int64_t> category = item.GetInt("category");
      if (!category.ok()) return ApiStatus::FromStatus(category.status());
      term.category = static_cast<uint32_t>(category.ValueOrDie());
      Result<std::string> name = item.GetString("category_name");
      if (!name.ok()) return ApiStatus::FromStatus(name.status());
      term.category_name = std::move(name).ValueOrDie();
      Result<double> affiliation = item.GetDouble("affiliation");
      if (!affiliation.ok()) {
        return ApiStatus::FromStatus(affiliation.status());
      }
      term.affiliation = affiliation.ValueOrDie();
      Result<double> expertise = item.GetDouble("expertise");
      if (!expertise.ok()) return ApiStatus::FromStatus(expertise.status());
      term.expertise = expertise.ValueOrDie();
      Result<double> contribution = item.GetDouble("contribution");
      if (!contribution.ok()) {
        return ApiStatus::FromStatus(contribution.status());
      }
      term.contribution = contribution.ValueOrDie();
      r.terms.push_back(std::move(term));
    }
    status = u64_field("snapshot_version", &r.snapshot_version);
    response->payload = std::move(r);
  } else if (result_type == "ingest") {
    IngestResult r;
    Result<int64_t> id = result.GetInt("assigned_id");
    if (!id.ok()) return ApiStatus::FromStatus(id.status());
    r.assigned_id = id.ValueOrDie();
    response->payload = r;
  } else if (result_type == "commit") {
    CommitResult r;
    status = u64_field("snapshot_version", &r.snapshot_version);
    if (!status.ok()) return status;
    const JsonValue* published = result.Find("published");
    if (published == nullptr || !published->is_bool()) {
      return ApiStatus::InvalidArgument("missing 'published' bool");
    }
    r.published = published->bool_value();
    Result<int64_t> categories = result.GetInt("categories_recomputed");
    if (!categories.ok()) {
      return ApiStatus::FromStatus(categories.status());
    }
    r.categories_recomputed = categories.ValueOrDie();
    Result<int64_t> rows = result.GetInt("affiliation_rows_recomputed");
    if (!rows.ok()) return ApiStatus::FromStatus(rows.status());
    r.affiliation_rows_recomputed = rows.ValueOrDie();
    Result<int64_t> postings = result.GetInt("postings_rebuilt");
    if (!postings.ok()) return ApiStatus::FromStatus(postings.status());
    r.postings_rebuilt = postings.ValueOrDie();
    response->payload = r;
  } else if (result_type == "stats") {
    StatsResult r;
    status = u64_field("snapshot_version", &r.snapshot_version);
    if (!status.ok()) return status;
    struct IntField {
      const char* key;
      int64_t* target;
    };
    for (IntField field : {IntField{"users", &r.users},
                           IntField{"categories", &r.categories},
                           IntField{"reviews", &r.reviews},
                           IntField{"ratings", &r.ratings},
                           IntField{"service_boots", &r.service_boots},
                           IntField{"requests_served",
                                    &r.requests_served}}) {
      Result<int64_t> value = result.GetInt(field.key);
      if (!value.ok()) return ApiStatus::FromStatus(value.status());
      *field.target = value.ValueOrDie();
    }
    // Post-v1.0 additive fields: absent (older server) decodes as 0, per
    // the wire spec's evolution rules.
    for (IntField field :
         {IntField{"connections_active", &r.connections_active},
          IntField{"connections_accepted", &r.connections_accepted},
          IntField{"connection_requests_served",
                   &r.connection_requests_served},
          IntField{"shards", &r.shards},
          IntField{"wal_records", &r.wal_records},
          IntField{"wal_bytes", &r.wal_bytes},
          IntField{"segment_epoch", &r.segment_epoch},
          IntField{"segment_bytes", &r.segment_bytes},
          IntField{"recovered_replayed_records",
                   &r.recovered_replayed_records}}) {
      if (result.Find(field.key) != nullptr) {
        Result<int64_t> value = result.GetInt(field.key);
        if (!value.ok()) return ApiStatus::FromStatus(value.status());
        *field.target = value.ValueOrDie();
      }
    }
    struct ArrayField {
      const char* key;
      std::vector<int64_t>* target;
    };
    for (ArrayField field :
         {ArrayField{"shard_service_boots", &r.shard_service_boots},
          ArrayField{"shard_requests_served",
                     &r.shard_requests_served}}) {
      const JsonValue* array = result.Find(field.key);
      if (array == nullptr) continue;  // unsharded server
      if (!array->is_array()) {
        return ApiStatus::InvalidArgument(std::string("'") + field.key +
                                          "' must be an array");
      }
      for (const JsonValue& item : array->array()) {
        if (!item.is_number() || !item.number_is_int()) {
          return ApiStatus::InvalidArgument(std::string("'") + field.key +
                                            "' must hold integers");
        }
        field.target->push_back(item.int_value());
      }
    }
    response->payload = r;
  } else if (result_type == "metrics") {
    MetricsResult r;
    status = u64_field("snapshot_version", &r.snapshot_version);
    if (!status.ok()) return status;
    struct ValueArray {
      const char* key;
      std::vector<MetricValue>* target;
    };
    for (ValueArray field : {ValueArray{"counters", &r.counters},
                             ValueArray{"gauges", &r.gauges}}) {
      const JsonValue* array = result.Find(field.key);
      if (array == nullptr || !array->is_array()) {
        return ApiStatus::InvalidArgument(std::string("missing '") +
                                          field.key + "' array");
      }
      for (const JsonValue& item : array->array()) {
        MetricValue metric;
        Result<std::string> name = item.GetString("name");
        if (!name.ok()) return ApiStatus::FromStatus(name.status());
        metric.name = std::move(name).ValueOrDie();
        Result<int64_t> value = item.GetInt("value");
        if (!value.ok()) return ApiStatus::FromStatus(value.status());
        metric.value = value.ValueOrDie();
        field.target->push_back(std::move(metric));
      }
    }
    const JsonValue* histograms = result.Find("histograms");
    if (histograms == nullptr || !histograms->is_array()) {
      return ApiStatus::InvalidArgument("missing 'histograms' array");
    }
    for (const JsonValue& item : histograms->array()) {
      MetricHistogramValue histogram;
      Result<std::string> name = item.GetString("name");
      if (!name.ok()) return ApiStatus::FromStatus(name.status());
      histogram.name = std::move(name).ValueOrDie();
      struct IntField {
        const char* key;
        int64_t* target;
      };
      for (IntField field : {IntField{"count", &histogram.count},
                             IntField{"sum", &histogram.sum},
                             IntField{"min", &histogram.min},
                             IntField{"max", &histogram.max}}) {
        Result<int64_t> value = item.GetInt(field.key);
        if (!value.ok()) return ApiStatus::FromStatus(value.status());
        *field.target = value.ValueOrDie();
      }
      struct DoubleField {
        const char* key;
        double* target;
      };
      for (DoubleField field : {DoubleField{"p50", &histogram.p50},
                                DoubleField{"p90", &histogram.p90},
                                DoubleField{"p99", &histogram.p99},
                                DoubleField{"p999", &histogram.p999}}) {
        Result<double> value = item.GetDouble(field.key);
        if (!value.ok()) return ApiStatus::FromStatus(value.status());
        *field.target = value.ValueOrDie();
      }
      r.histograms.push_back(std::move(histogram));
    }
    response->payload = std::move(r);
  } else if (result_type == "repl_fetch") {
    ReplFetchResult r;
    Result<int64_t> kind = result.GetInt("kind");
    if (!kind.ok()) return ApiStatus::FromStatus(kind.status());
    r.kind = kind.ValueOrDie();
    for (auto [key, target] :
         {std::pair<const char*, uint64_t*>{"base_version",
                                            &r.base_version},
          {"target_version", &r.target_version},
          {"source_version", &r.source_version},
          {"offset", &r.offset},
          {"total_bytes", &r.total_bytes}}) {
      status = u64_field(key, target);
      if (!status.ok()) return status;
    }
    Result<std::string> payload = result.GetString("payload");
    if (!payload.ok()) return ApiStatus::FromStatus(payload.status());
    if (!HexDecode(payload.ValueOrDie(), &r.payload)) {
      return ApiStatus::InvalidArgument(
          "'payload' must be a hex-encoded byte string");
    }
    response->payload = std::move(r);
  } else if (result_type == "repl_status") {
    ReplStatusResult r;
    Result<int64_t> role = result.GetInt("role");
    if (!role.ok()) return ApiStatus::FromStatus(role.status());
    r.role = role.ValueOrDie();
    status = u64_field("applied_version", &r.applied_version);
    if (!status.ok()) return status;
    status = u64_field("source_version", &r.source_version);
    if (!status.ok()) return status;
    Result<int64_t> failovers = result.GetInt("failovers");
    if (!failovers.ok()) return ApiStatus::FromStatus(failovers.status());
    r.failovers = failovers.ValueOrDie();
    const JsonValue* replicas = result.Find("replicas");
    if (replicas == nullptr || !replicas->is_array()) {
      return ApiStatus::InvalidArgument("missing 'replicas' array");
    }
    for (const JsonValue& item : replicas->array()) {
      ReplReplicaInfo info;
      Result<int64_t> shard = item.GetInt("shard");
      if (!shard.ok()) return ApiStatus::FromStatus(shard.status());
      info.shard = shard.ValueOrDie();
      Result<std::string> address = item.GetString("address");
      if (!address.ok()) return ApiStatus::FromStatus(address.status());
      info.address = std::move(address).ValueOrDie();
      Result<int64_t> applied = item.GetInt("applied_version");
      if (!applied.ok()) return ApiStatus::FromStatus(applied.status());
      info.applied_version = static_cast<uint64_t>(applied.ValueOrDie());
      Result<int64_t> healthy = item.GetInt("healthy");
      if (!healthy.ok()) return ApiStatus::FromStatus(healthy.status());
      info.healthy = healthy.ValueOrDie();
      r.replicas.push_back(std::move(info));
    }
    response->payload = std::move(r);
  } else {
    return ApiStatus::InvalidArgument("unknown result_type '" +
                                      result_type + "'");
  }
  return status;
}

}  // namespace

std::string EncodeRequest(const Request& request) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Int(request.version);
  w.Key("id").Int(request.id);
  w.Key("method").String(MethodName(request.payload));
  EncodeParams(request.payload, &w);
  w.EndObject();
  return w.str();
}

std::string EncodeResponse(const Response& response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v").Int(response.version);
  w.Key("id").Int(response.id);
  w.Key("status").String(ApiCodeName(response.status.code));
  if (!response.status.ok()) {
    w.Key("error").String(response.status.message);
  } else if (response.payload.index() != 0) {
    w.Key("result_type").String(kResultTypeNames[response.payload.index()]);
    EncodeResult(response.payload, &w);
  }
  w.EndObject();
  return w.str();
}

ApiStatus DecodeRequest(std::string_view line, Request* request) {
  *request = Request{};
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    return ApiStatus::InvalidArgument("malformed frame: " +
                                      parsed.status().message());
  }
  const JsonValue& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return ApiStatus::InvalidArgument("frame must be a JSON object");
  }
  SalvageEnvelope(root, request);
  if (root.Find("v") == nullptr) {
    return ApiStatus::InvalidArgument(
        "missing protocol version field 'v'");
  }
  Result<int64_t> version = root.GetInt("v");
  if (!version.ok()) {
    // Present but mistyped — report that, not "missing".
    return ApiStatus::InvalidArgument("protocol version " +
                                      version.status().message());
  }
  if (version.ValueOrDie() != kProtocolVersion) {
    return ApiStatus::InvalidArgument(
        "unsupported protocol version " +
        std::to_string(version.ValueOrDie()) + " (this server speaks v" +
        std::to_string(kProtocolVersion) + ")");
  }
  const JsonValue* id = root.Find("id");
  if (id != nullptr && (!id->is_number() || !id->number_is_int())) {
    return ApiStatus::InvalidArgument("'id' must be an integer");
  }
  Result<std::string> method = root.GetString("method");
  if (!method.ok()) {
    return ApiStatus::FromStatus(method.status());
  }
  return DecodeParams(method.ValueOrDie(), root, request);
}

ApiStatus DecodeResponse(std::string_view line, Response* response) {
  *response = Response{};
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    return ApiStatus::InvalidArgument("malformed frame: " +
                                      parsed.status().message());
  }
  const JsonValue& root = parsed.ValueOrDie();
  if (!root.is_object()) {
    return ApiStatus::InvalidArgument("frame must be a JSON object");
  }
  Result<int64_t> version = root.GetInt("v");
  if (!version.ok()) return ApiStatus::FromStatus(version.status());
  response->version = version.ValueOrDie();
  Result<int64_t> id = root.GetInt("id");
  if (!id.ok()) return ApiStatus::FromStatus(id.status());
  response->id = id.ValueOrDie();
  Result<std::string> code_name = root.GetString("status");
  if (!code_name.ok()) return ApiStatus::FromStatus(code_name.status());
  Result<ApiCode> code = ApiCodeFromName(code_name.ValueOrDie());
  if (!code.ok()) return ApiStatus::FromStatus(code.status());
  response->status.code = code.ValueOrDie();
  if (!response->status.ok()) {
    Result<std::string> error = root.GetString("error");
    if (error.ok()) {
      response->status.message = std::move(error).ValueOrDie();
    }
    return ApiStatus::Ok();  // the *frame* decoded fine
  }
  const JsonValue* result_type = root.Find("result_type");
  if (result_type == nullptr) {
    response->payload = std::monostate{};  // e.g. a bare OK
    return ApiStatus::Ok();
  }
  if (!result_type->is_string()) {
    return ApiStatus::InvalidArgument("'result_type' must be a string");
  }
  const JsonValue* result = root.Find("result");
  if (result == nullptr || !result->is_object()) {
    return ApiStatus::InvalidArgument("missing 'result' object");
  }
  return DecodeResultPayload(result_type->string_value(), *result,
                             response);
}

}  // namespace api
}  // namespace wot
