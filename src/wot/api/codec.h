// NDJSON wire codec for the api layer: one Request or Response per line.
//
// Frames (compact JSON, no interior newlines; see docs/wire_protocol.md):
//
//   request:  {"v":1,"id":7,"method":"trust",
//              "params":{"source":"alice","target":"bob"}}
//   response: {"v":1,"id":7,"status":"OK","result":{"trust":0.42,
//              "snapshot_version":3}}
//   error:    {"v":1,"id":7,"status":"NOT_FOUND","error":"no user ..."}
//
// Encoding is deterministic (fixed key order, shortest round-trip doubles)
// so a response stream can be byte-diffed in tests. Decoding is strict and
// total: any malformed frame comes back as a non-OK ApiStatus, never a
// crash — the decoded envelope's `id`/`version` are still populated on a
// best-effort basis so the server can address its error reply.
#ifndef WOT_API_CODEC_H_
#define WOT_API_CODEC_H_

#include <string>
#include <string_view>

#include "wot/api/api.h"

namespace wot {
namespace api {

/// \brief Encodes \p request as one NDJSON frame (no trailing newline).
std::string EncodeRequest(const Request& request);

/// \brief Encodes \p response as one NDJSON frame (no trailing newline).
std::string EncodeResponse(const Response& response);

/// \brief Decodes one request frame. On failure returns a non-OK ApiStatus
/// and leaves \p request with whatever envelope fields (id, version) could
/// be salvaged, so the caller can still correlate its error response.
/// A frame whose "v" differs from kProtocolVersion is an error.
ApiStatus DecodeRequest(std::string_view line, Request* request);

/// \brief Decodes one response frame (the client side of the wire).
ApiStatus DecodeResponse(std::string_view line, Response* response);

}  // namespace api
}  // namespace wot

#endif  // WOT_API_CODEC_H_
