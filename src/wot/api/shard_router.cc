#include "wot/api/shard_router.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>
#include <variant>

#include "wot/telemetry/timed.h"
#include "wot/telemetry/trace.h"
#include "wot/util/check.h"
#include "wot/util/string_util.h"

namespace wot {
namespace api {

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const Dataset& seed, size_t num_shards,
    const TrustServiceOptions& options) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  WOT_ASSIGN_OR_RETURN(
      std::vector<Dataset> slices,
      SliceDatasetByUser(seed, num_shards, options.builder));
  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    WOT_ASSIGN_OR_RETURN(shard->service,
                         TrustService::Create(slices[s], options));
    shard->frontend =
        std::make_unique<ServiceFrontend>(shard->service.get());
    router->shards_.push_back(std::move(shard));
  }
  router->InitTelemetry();
  // The router is not visible to any other thread yet; the uncontended
  // lock keeps the guarded write provable.
  MutexLock lock(router->ingest_mu_);
  router->staged_global_users_ = static_cast<int64_t>(seed.num_users());
  return router;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::CreateFromServices(
    std::vector<std::unique_ptr<TrustService>> services) {
  if (services.empty()) {
    return Status::InvalidArgument(
        "CreateFromServices needs at least one service");
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->shards_.reserve(services.size());
  int64_t staged_users = 0;
  for (std::unique_ptr<TrustService>& service : services) {
    if (service == nullptr) {
      return Status::InvalidArgument(
          "CreateFromServices got a null service");
    }
    auto shard = std::make_unique<Shard>();
    shard->service = std::move(service);
    shard->frontend =
        std::make_unique<ServiceFrontend>(shard->service.get());
    staged_users +=
        static_cast<int64_t>(shard->service->staged_dataset().num_users());
    router->shards_.push_back(std::move(shard));
  }
  router->InitTelemetry();
  MutexLock lock(router->ingest_mu_);
  router->staged_global_users_ = staged_users;
  return router;
}

FrontendStats ShardRouter::stats() const {
  FrontendStats stats = Frontend::stats();
  stats.service_boots = static_cast<int64_t>(shards_.size());
  return stats;
}

void ShardRouter::InitTelemetry() {
  fanout_latency_ns_ =
      metrics_registry()->histogram("router.fanout_latency_ns");
  scatter_width_ = metrics_registry()->histogram("router.scatter_width");
  quorum_wait_ns_ =
      metrics_registry()->histogram("router.quorum_wait_ns");
  replica_reads_ = metrics_registry()->counter("router.replica_reads");
  for (const std::unique_ptr<Shard>& shard : shards_) {
    AddMetricsSource(shard->service->metrics_registry());
    shard->read_floor.store(shard->service->Snapshot()->version(),
                            std::memory_order_release);
  }
  if (shards_.size() >= 2) {
    // Fan-out workers: one per shard is the widest a single dispatch
    // spreads. One shard keeps the serial path (bit-identity baseline).
    pool_ = std::make_unique<ThreadPool>(shards_.size());
  }
}

void ShardRouter::AddReplica(size_t shard,
                             std::shared_ptr<ReplicaHandle> handle) {
  WOT_CHECK(shard < shards_.size());
  auto slot = std::make_unique<ReplicaSlot>();
  slot->handle = std::move(handle);
  slot->applied_gauge = metrics_registry()->gauge(
      "replication.replica_applied.s" + std::to_string(shard) + ".r" +
      std::to_string(shards_[shard]->replicas.size()));
  shards_[shard]->replicas.push_back(std::move(slot));
  ReplicationHandler* prior = replication_handler();
  if (prior != nullptr && prior != this) fetch_delegate_ = prior;
  set_replication_handler(this);
}

void ShardRouter::RunOnShards(const std::function<void(size_t)>& body) {
  const size_t count = shards_.size();
  if (pool_ == nullptr || count < 2 ||
      !parallel_fanout_.load(std::memory_order_relaxed)) {
    for (size_t s = 0; s < count; ++s) body(s);
    return;
  }
  // Per-call completion state: Wait()ing on the pool would also wait on
  // other dispatches' tasks.
  struct Completion {
    Mutex mu;
    CondVar done;
    size_t remaining WOT_GUARDED_BY(mu);
  } completion;
  {
    MutexLock lock(completion.mu);
    completion.remaining = count;
  }
  for (size_t s = 0; s < count; ++s) {
    bool accepted = pool_->Submit([&body, &completion, s] {
      body(s);
      MutexLock lock(completion.mu);
      if (--completion.remaining == 0) completion.done.NotifyAll();
    });
    if (!accepted) {
      // Stopped pool (shutdown race): run inline and count it off.
      body(s);
      MutexLock lock(completion.mu);
      if (--completion.remaining == 0) completion.done.NotifyAll();
    }
  }
  MutexLock lock(completion.mu);
  while (completion.remaining > 0) {
    completion.done.Wait(completion.mu);
  }
}

ReplicaProbe ShardRouter::Probe(ReplicaSlot* slot) {
  ReplicaProbe probe = slot->handle->Poll();
  slot->applied.store(probe.applied_version, std::memory_order_release);
  slot->healthy.store(probe.healthy, std::memory_order_release);
  slot->applied_gauge->Set(
      static_cast<int64_t>(probe.applied_version));
  return probe;
}

ShardRouter::ReplicaSlot* ShardRouter::PickReplica(size_t shard) {
  Shard& s = *shards_[shard];
  if (s.replicas.empty()) return nullptr;
  const uint64_t floor = s.read_floor.load(std::memory_order_acquire);
  // Round-robin over {replicas..., primary}: position `size()` is the
  // primary's turn, so reads spread evenly across the whole set.
  const size_t width = s.replicas.size() + 1;
  const size_t start = static_cast<size_t>(
      s.next_read.fetch_add(1, std::memory_order_relaxed) % width);
  for (size_t probe = 0; probe < width; ++probe) {
    const size_t position = (start + probe) % width;
    if (position == s.replicas.size()) return nullptr;  // primary's turn
    ReplicaSlot* slot = s.replicas[position].get();
    if (!slot->healthy.load(std::memory_order_acquire)) continue;
    uint64_t applied = slot->applied.load(std::memory_order_acquire);
    if (applied < floor) {
      // The cache says "too stale" — refresh once; the replica may have
      // caught up since the last quorum wait polled it.
      ReplicaProbe fresh = Probe(slot);
      if (!fresh.healthy) continue;
      applied = fresh.applied_version;
    }
    if (applied >= floor) return slot;
  }
  return nullptr;
}

Response ShardRouter::DispatchShardRead(
    size_t shard, const Request& local,
    const ConnectionContext& connection) {
  ReplicaSlot* slot = PickReplica(shard);
  if (slot != nullptr) {
    std::optional<Response> forwarded = slot->handle->Forward(local);
    if (forwarded.has_value() && forwarded->status.ok()) {
      replica_reads_->Increment();
      return *std::move(forwarded);
    }
    if (!forwarded.has_value()) {
      // Transport death, not an application error: stop reading from
      // this replica until a Poll sees it again.
      slot->healthy.store(false, std::memory_order_release);
    }
    // Either way the primary serves the read — replicas are a capacity
    // optimization, never a correctness dependency.
  }
  return Touch(shard)->Dispatch(local, connection);
}

ApiStatus ShardRouter::AwaitWriteQuorum() {
  const int64_t quorum = write_quorum_.load(std::memory_order_relaxed);
  if (quorum <= 1) return ApiStatus::Ok();  // the primary satisfies it
  const int64_t timeout_ns =
      quorum_timeout_millis_.load(std::memory_order_relaxed) * 1'000'000;
  telemetry::Timer timer;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const uint64_t target = shard.service->Snapshot()->version();
    while (true) {
      int64_t have = 1;  // the primary has, by definition, applied
      for (const std::unique_ptr<ReplicaSlot>& slot : shard.replicas) {
        ReplicaProbe probe = Probe(slot.get());
        if (probe.healthy && probe.applied_version >= target) ++have;
      }
      if (have >= quorum) break;
      if (timer.ElapsedNanos() >= timeout_ns) {
        quorum_wait_ns_->Record(timer.ElapsedNanos());
        return ApiStatus::Internal(
            "write quorum " + std::to_string(quorum) +
            " not reached on shard " + std::to_string(s) + " (" +
            std::to_string(have) + " of " +
            std::to_string(1 + shard.replicas.size()) +
            " copies applied version " + std::to_string(target) + ")");
      }
      MutexLock lock(quorum_mu_);
      quorum_cv_.WaitForMillis(quorum_mu_, 5);
    }
  }
  quorum_wait_ns_->Record(timer.ElapsedNanos());
  return ApiStatus::Ok();
}

Response ShardRouter::HandleReplFetch(const ReplFetchRequest& request) {
  if (fetch_delegate_ != nullptr) {
    return fetch_delegate_->HandleReplFetch(request);
  }
  return ErrorResponse(ApiStatus::Unimplemented(
      "repl_fetch is served by shard primaries, not the router"));
}

Response ShardRouter::HandleReplStatus(const ReplStatusRequest&) {
  ReplStatusResult result;
  result.role = static_cast<int64_t>(ReplRole::kRouter);
  result.applied_version = epoch();
  result.source_version = epoch();
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (const std::unique_ptr<ReplicaSlot>& slot :
         shards_[s]->replicas) {
      ReplReplicaInfo info;
      info.shard = static_cast<int64_t>(s);
      info.address = slot->handle->address();
      info.applied_version =
          slot->applied.load(std::memory_order_acquire);
      info.healthy =
          slot->healthy.load(std::memory_order_acquire) ? 1 : 0;
      result.replicas.push_back(std::move(info));
    }
  }
  Response response;
  response.payload = std::move(result);
  return response;
}

Response ShardRouter::HandleReplPromote(const ReplPromoteRequest&) {
  return ErrorResponse(ApiStatus::InvalidArgument(
      "promotion is requested on the replica process itself, not the "
      "router"));
}

ShardRouter::SnapshotSet ShardRouter::LoadSnapshots() const {
  SnapshotSet snapshots;
  snapshots.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    snapshots.push_back(shard->service->Snapshot());
  }
  return snapshots;
}

ServiceFrontend* ShardRouter::Touch(size_t shard) {
  shards_[shard]->dispatches.fetch_add(1, std::memory_order_relaxed);
  return shards_[shard]->frontend.get();
}

// Mirrors ResolveUserRef's error statuses byte for byte (the one-shard
// router must be indistinguishable from a bare frontend), with the range
// check running against the summed global population.
Result<ShardRouter::ResolvedUser> ShardRouter::ResolvePublished(
    const SnapshotSet& snapshots, std::string_view ref) const {
  if (ref.empty()) {
    return Status::InvalidArgument(kEmptyUserRefMessage);
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t global = as_index.ValueOrDie();
    size_t total = 0;
    for (const std::shared_ptr<const TrustSnapshot>& snapshot :
         snapshots) {
      total += snapshot->num_users();
    }
    if (global < 0 || static_cast<size_t>(global) >= total) {
      return Status::NotFound(UserIndexOutOfRangeMessage(ref, total));
    }
    ResolvedUser resolved;
    resolved.shard =
        ShardOfUser(static_cast<uint64_t>(global), shards_.size());
    resolved.local =
        ShardLocalUser(static_cast<uint64_t>(global), shards_.size());
    resolved.by_index = true;
    // The snapshots were loaded shard by shard, so a commit fan-out
    // racing this read can make the SUM admit an index whose own
    // shard's snapshot (as loaded) does not carry it yet. Queries on
    // that shard would treat the local index as out of range — but the
    // name lookups behind source_name/trustee names hard-check, so gate
    // here. With one shard total == that snapshot's count, so this
    // branch never fires spuriously (bit-identity preserved).
    if (resolved.local >= snapshots[resolved.shard]->num_users()) {
      return Status::NotFound("user index " + std::string(ref) +
                              " is not published on its shard yet");
    }
    return resolved;
  }
  for (size_t s = 0; s < snapshots.size(); ++s) {
    std::optional<uint32_t> id = snapshots[s]->user_names().Find(ref);
    if (id.has_value()) {
      return ResolvedUser{s, *id, false};
    }
  }
  return Status::NotFound(NoUserNamedMessage(ref));
}

Result<ShardRouter::ResolvedUser> ShardRouter::ResolveStagedLocked(
    std::string_view ref) {
  if (ref.empty()) {
    return Status::InvalidArgument(kEmptyUserRefMessage);
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t global = as_index.ValueOrDie();
    if (global < 0 || global >= staged_global_users_) {
      return Status::NotFound(UserIndexOutOfRangeMessage(
          ref, static_cast<size_t>(staged_global_users_)));
    }
    ResolvedUser resolved;
    resolved.shard =
        ShardOfUser(static_cast<uint64_t>(global), shards_.size());
    resolved.local =
        ShardLocalUser(static_cast<uint64_t>(global), shards_.size());
    resolved.by_index = true;
    return resolved;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<UserId> id = shards_[s]->service->ResolveStagedUserRef(ref);
    if (id.ok()) {
      return ResolvedUser{s, id.ValueOrDie().value(), false};
    }
  }
  return Status::NotFound(NoUserNamedMessage(ref));
}

Response ShardRouter::RouteTrustLike(const Request& request,
                                     const ConnectionContext& connection,
                                     std::string_view source_ref,
                                     std::string_view target_ref) {
  // Router-level version space: with 2+ shards every response surface
  // reports the router epoch, never a shard-local snapshot version (the
  // two number spaces drift apart as soon as one shard publishes a
  // no-op commit). Read the epoch BEFORE loading the snapshots so it is
  // a consistent lower bound for the data answered from. One shard
  // keeps the shard's own version — bit-identity with a bare frontend.
  const bool sharded = shards_.size() >= 2;
  const uint64_t epoch = epoch_.load(std::memory_order_acquire);
  SnapshotSet snapshots = LoadSnapshots();
  Result<ResolvedUser> source = ResolvePublished(snapshots, source_ref);
  if (!source.ok()) {
    return ErrorResponse(ApiStatus::FromStatus(source.status()));
  }
  Result<ResolvedUser> target = ResolvePublished(snapshots, target_ref);
  if (!target.ok()) {
    return ErrorResponse(ApiStatus::FromStatus(target.status()));
  }
  const ResolvedUser& s = source.ValueOrDie();
  const ResolvedUser& t = target.ValueOrDie();
  if (s.shard != t.shard) {
    // Unreachable with one shard, so the bit-identity property survives.
    return ErrorResponse(ApiStatus::NotFound(
        "users '" + std::string(source_ref) + "' and '" +
        std::string(target_ref) + "' live on different shards (" +
        std::to_string(s.shard) + " and " + std::to_string(t.shard) +
        "); v1 derives trust within one shard's user slice"));
  }
  // Rewrite the refs to the owning shard's local indices and let that
  // shard's frontend build the response — names, category ids and
  // snapshot_version all come from shard-owned state, so the frame needs
  // no further translation.
  Request local = request;
  if (TrustQuery* trust = std::get_if<TrustQuery>(&local.payload)) {
    trust->source = std::to_string(s.local);
    trust->target = std::to_string(t.local);
  } else if (ExplainQuery* explain =
                 std::get_if<ExplainQuery>(&local.payload)) {
    explain->source = std::to_string(s.local);
    explain->target = std::to_string(t.local);
  }
  telemetry::SetDispatchShard(static_cast<int64_t>(s.shard));
  Response response;
  {
    WOT_TIMED(fanout_latency_ns_);
    response = DispatchShardRead(s.shard, local, connection);
  }
  if (sharded && response.status.ok()) {
    if (TrustResult* trust = std::get_if<TrustResult>(&response.payload)) {
      trust->snapshot_version = epoch;
    } else if (ExplainResult* explain =
                   std::get_if<ExplainResult>(&response.payload)) {
      explain->snapshot_version = epoch;
    }
  }
  return response;
}

Response ShardRouter::DispatchPayload(const Request& request,
                                      const ConnectionContext& connection) {
  struct Visitor {
    ShardRouter& router;
    const Request& request;
    const ConnectionContext& connection;

    Response operator()(const TrustQuery& q) {
      return router.RouteTrustLike(request, connection, q.source,
                                   q.target);
    }

    Response operator()(const ExplainQuery& q) {
      return router.RouteTrustLike(request, connection, q.source,
                                   q.target);
    }

    Response operator()(const TopKQuery& q) {
      if (q.k <= 0) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("'k' must be positive"));
      }
      const size_t num_shards = router.shards_.size();
      // See RouteTrustLike: epoch read precedes the snapshot loads.
      const uint64_t epoch =
          router.epoch_.load(std::memory_order_acquire);
      SnapshotSet snapshots = router.LoadSnapshots();
      Result<ResolvedUser> source =
          router.ResolvePublished(snapshots, q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      // A name staged on several shards has a pinned deterministic
      // owner: the LOWEST shard id holding it (ResolvePublished probes
      // shards in ascending order). source_name always comes from the
      // owner, so repeated queries never flap between shards' spellings
      // of the same name.
      const ResolvedUser& home = source.ValueOrDie();
      TopKResult result;
      result.source_name =
          snapshots[home.shard]->user_names().name(home.local);
      result.snapshot_version =
          num_shards >= 2 ? epoch : snapshots[home.shard]->version();
      // Scatter: every shard hosting the source contributes its local
      // top-k (an index ref lives on exactly one shard; a name may be
      // staged on several). Shards without the source — empty shards
      // included — contribute nothing.
      // Per-shard result buckets: the legs run concurrently over the
      // router pool (serially with one shard), and the shard-ordered
      // concatenation below feeds the same deterministic global merge
      // the sequential scatter produced.
      std::vector<std::vector<ScoredUserEntry>> buckets(num_shards);
      std::vector<uint8_t> contributed(num_shards, 0);
      {
        WOT_TIMED(router.fanout_latency_ns_);
        router.RunOnShards([&](size_t s) {
          std::optional<uint32_t> local;
          if (home.by_index) {
            if (s == home.shard) local = home.local;
          } else {
            local = snapshots[s]->user_names().Find(q.source);
          }
          if (!local.has_value()) return;
          contributed[s] = 1;
          // An eligible replica serves this leg; any failure falls back
          // to the shard's own snapshot.
          if (ReplicaSlot* slot = router.PickReplica(s)) {
            Request leg;
            leg.payload = TopKQuery{std::to_string(*local), q.k};
            std::optional<Response> forwarded =
                slot->handle->Forward(leg);
            if (forwarded.has_value() && forwarded->status.ok()) {
              if (const TopKResult* remote =
                      std::get_if<TopKResult>(&forwarded->payload)) {
                router.replica_reads_->Increment();
                for (const ScoredUserEntry& entry : remote->trustees) {
                  buckets[s].push_back(
                      {static_cast<uint32_t>(GlobalUserOfShard(
                           entry.user, s, num_shards)),
                       entry.name, entry.score});
                }
                return;
              }
            }
            if (!forwarded.has_value()) {
              slot->healthy.store(false, std::memory_order_release);
            }
          }
          router.Touch(s);
          for (const ScoredUser& scored :
               snapshots[s]->TopK(*local, static_cast<size_t>(q.k))) {
            buckets[s].push_back(
                {static_cast<uint32_t>(
                     GlobalUserOfShard(scored.user, s, num_shards)),
                 snapshots[s]->user_names().name(scored.user),
                 scored.score});
          }
        });
      }
      std::vector<ScoredUserEntry> merged;
      int64_t scatter_width = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        scatter_width += contributed[s];
        merged.insert(merged.end(),
                      std::make_move_iterator(buckets[s].begin()),
                      std::make_move_iterator(buckets[s].end()));
      }
      router.scatter_width_->Record(scatter_width);
      // Gather: per-shard lists arrive in TopK order (score desc, local
      // id asc); the global merge keeps the same total order, so one
      // shard degenerates to the bare frontend's list exactly.
      std::sort(merged.begin(), merged.end(),
                [](const ScoredUserEntry& a, const ScoredUserEntry& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.user < b.user;
                });
      if (merged.size() > static_cast<size_t>(q.k)) {
        merged.resize(static_cast<size_t>(q.k));
      }
      result.trustees = std::move(merged);
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const IngestUser& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("user name must not be empty"));
      }
      MutexLock lock(router.ingest_mu_);
      const size_t num_shards = router.shards_.size();
      int64_t global = router.staged_global_users_;
      size_t shard =
          ShardOfUser(static_cast<uint64_t>(global), num_shards);
      telemetry::SetDispatchShard(static_cast<int64_t>(shard));
      router.Touch(shard);
      UserId local = router.shards_[shard]->service->AddUser(q.name);
      (void)local;
      WOT_DCHECK(local.value() ==
                 ShardLocalUser(static_cast<uint64_t>(global),
                                num_shards));
      ++router.staged_global_users_;
      Response response;
      response.payload = IngestResult{global};
      return response;
    }

    Response operator()(const IngestCategory& q) {
      if (q.name.empty()) {
        return ErrorResponse(ApiStatus::InvalidArgument(
            "category name must not be empty"));
      }
      MutexLock lock(router.ingest_mu_);
      // Categories are replicated context: fan out so every shard's id
      // space stays aligned (slicing replays them in the same order).
      int64_t assigned = -1;
      for (size_t s = 0; s < router.shards_.size(); ++s) {
        router.Touch(s);
        CategoryId id =
            router.shards_[s]->service->AddCategory(q.name);
        if (s == 0) {
          assigned = static_cast<int64_t>(id.value());
        } else if (static_cast<int64_t>(id.value()) != assigned) {
          return ErrorResponse(ApiStatus::Internal(
              "category id spaces diverged across shards"));
        }
      }
      Response response;
      response.payload = IngestResult{assigned};
      return response;
    }

    Response operator()(const IngestObject& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("object name must not be empty"));
      }
      MutexLock lock(router.ingest_mu_);
      // Dry-run the category resolution against shard 0 (every shard
      // replicates the same category space, so its verdict is
      // canonical) BEFORE staging anywhere: a rejected ingest must
      // leave every shard's staged state untouched. Staging first and
      // surfacing a later shard's rejection would leave the earlier
      // shards' object spaces permanently diverged.
      Result<CategoryId> category =
          router.shards_[0]->service->ResolveStagedCategoryRef(
              q.category);
      if (!category.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(category.status()));
      }
      int64_t assigned = -1;
      for (size_t s = 0; s < router.shards_.size(); ++s) {
        router.Touch(s);
        Result<ObjectId> id =
            router.shards_[s]->service->AddObjectByRef(q.category,
                                                       q.name);
        if (!id.ok()) {
          // Unreachable after the dry-run above passed; any failure now
          // is a broken replication invariant, not a client error.
          return ErrorResponse(ApiStatus::Internal(
              "object ingest diverged across shards: " +
              id.status().ToString()));
        }
        if (s == 0) {
          assigned = static_cast<int64_t>(id.ValueOrDie().value());
        } else if (static_cast<int64_t>(id.ValueOrDie().value()) !=
                   assigned) {
          return ErrorResponse(ApiStatus::Internal(
              "object id spaces diverged across shards"));
        }
      }
      Response response;
      response.payload = IngestResult{assigned};
      return response;
    }

    Response operator()(const IngestReview& q) {
      MutexLock lock(router.ingest_mu_);
      Result<ResolvedUser> writer = router.ResolveStagedLocked(q.writer);
      if (!writer.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(writer.status()));
      }
      const ResolvedUser& w = writer.ValueOrDie();
      telemetry::SetDispatchShard(static_cast<int64_t>(w.shard));
      router.Touch(w.shard);
      // Object ids are replicated (global == local), so q.object passes
      // through; the shard validates its range and policy.
      Result<ReviewId> id =
          router.shards_[w.shard]->service->AddReviewByRef(
              std::to_string(w.local), q.object);
      if (!id.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(id.status()));
      }
      // Wire review id: local * N + shard (dense per shard, globally
      // unique, identity for one shard).
      Response response;
      response.payload = IngestResult{
          static_cast<int64_t>(id.ValueOrDie().value()) *
              static_cast<int64_t>(router.shards_.size()) +
          static_cast<int64_t>(w.shard)};
      return response;
    }

    Response operator()(const IngestRating& q) {
      MutexLock lock(router.ingest_mu_);
      Result<ResolvedUser> rater = router.ResolveStagedLocked(q.rater);
      if (!rater.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(rater.status()));
      }
      const ResolvedUser& r = rater.ValueOrDie();
      const int64_t num_shards =
          static_cast<int64_t>(router.shards_.size());
      // Range-check HERE, in wire-id terms, so the error names the id
      // the client sent, never a shard-local translation. Checked
      // against the owner shard for a positive id, the rater's shard
      // for a negative one.
      size_t owner = q.review >= 0
                         ? static_cast<size_t>(q.review % num_shards)
                         : r.shard;
      int64_t local = q.review >= 0 ? q.review / num_shards : q.review;
      // StagedReviewCount takes the owner shard's writer lock: the count
      // must not be read through the bare staged view while that shard
      // could be staging (all ingest funnels through ingest_mu_ today,
      // but the service's contract is its own lock, not the router's).
      int64_t owner_reviews = static_cast<int64_t>(
          router.shards_[owner]->service->StagedReviewCount());
      if (local < 0 || local >= owner_reviews) {
        if (num_shards == 1) {
          // One shard: wire ids ARE the review-count range, and the
          // message must match the bare frontend byte for byte.
          return ErrorResponse(ApiStatus::NotFound(
              ReviewIdOutOfRangeMessage(q.review, owner_reviews)));
        }
        // Sharded wire ids interleave per residue class, so no "[0, X)"
        // claim is truthful — name the shard instead.
        return ErrorResponse(ApiStatus::NotFound(
            "no review with id " + std::to_string(q.review) +
            " (its shard " + std::to_string(owner) + " holds " +
            std::to_string(owner_reviews) + " reviews)"));
      }
      if (owner != r.shard) {
        // The review exists (checked above) but on another shard.
        // Unreachable with one shard (owner is always shard 0).
        return ErrorResponse(ApiStatus::NotFound(
            "review id " + std::to_string(q.review) +
            " lives on shard " + std::to_string(owner) +
            " but rater '" + q.rater + "' lives on shard " +
            std::to_string(r.shard) +
            "; v1 ratings stay within one shard"));
      }
      int64_t local_review = local;
      telemetry::SetDispatchShard(static_cast<int64_t>(r.shard));
      router.Touch(r.shard);
      Status status = router.shards_[r.shard]->service->AddRatingByRef(
          std::to_string(r.local), local_review, q.value);
      if (!status.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(status));
      }
      Response response;
      response.payload = IngestResult{-1};
      return response;
    }

    Response operator()(const CommitRequest&) {
      MutexLock lock(router.ingest_mu_);
      const size_t num_shards = router.shards_.size();
      // Per-shard commits run concurrently over the router pool (the
      // recompute is the expensive leg; shard services are independent).
      // Outcomes land in indexed slots; the first failing shard BY INDEX
      // is reported, so the error is deterministic regardless of
      // completion order.
      std::vector<TrustService::CommitStats> stats(num_shards);
      std::vector<Status> outcomes(num_shards, Status::OK());
      {
        WOT_TIMED(router.fanout_latency_ns_);
        router.RunOnShards([&](size_t s) {
          router.Touch(s);
          Result<TrustService::CommitStats> shard_stats =
              router.shards_[s]->service->Commit();
          if (shard_stats.ok()) {
            stats[s] = shard_stats.ValueOrDie();
          } else {
            outcomes[s] = shard_stats.status();
          }
        });
      }
      CommitResult result;
      bool any_published = false;
      for (size_t s = 0; s < num_shards; ++s) {
        if (!outcomes[s].ok()) {
          // The epoch is NOT advanced: a torn fan-out never becomes a
          // visible router-level commit.
          return ErrorResponse(ApiStatus::FromStatus(outcomes[s]));
        }
        any_published |= stats[s].published;
        result.categories_recomputed +=
            static_cast<int64_t>(stats[s].categories_recomputed);
        result.affiliation_rows_recomputed +=
            static_cast<int64_t>(stats[s].affiliation_rows_recomputed);
        result.postings_rebuilt +=
            static_cast<int64_t>(stats[s].postings_rebuilt);
      }
      router.scatter_width_->Record(static_cast<int64_t>(num_shards));
      // Publish the router-level epoch only after EVERY shard swapped:
      // an epoch reader never observes a cross-shard commit half done.
      uint64_t epoch = router.epoch_.load(std::memory_order_relaxed);
      if (any_published) {
        // Quorum gate: the epoch bump that makes this commit visible
        // waits until write_quorum copies of every shard (primary +
        // replicas) have applied it. Quorum 1 short-circuits — the
        // primary already applied — which is the bit-identity baseline.
        ApiStatus quorum = router.AwaitWriteQuorum();
        if (!quorum.ok()) {
          return ErrorResponse(std::move(quorum));
        }
        // Advance the read floors to the just-committed shard versions:
        // replicas below them are no longer eligible to serve reads
        // (commit-visibility gate).
        for (size_t s = 0; s < num_shards; ++s) {
          router.shards_[s]->read_floor.store(
              router.shards_[s]->service->Snapshot()->version(),
              std::memory_order_release);
        }
        ++epoch;
        router.epoch_.store(epoch, std::memory_order_release);
        if (router.epoch_callback_) {
          router.epoch_callback_(epoch);
        }
      }
      result.snapshot_version = epoch;
      result.published = any_published;
      Response response;
      response.payload = result;
      return response;
    }

    Response operator()(const StatsRequest&) {
      SnapshotSet snapshots = router.LoadSnapshots();
      const size_t num_shards = router.shards_.size();
      StatsResult result;
      result.snapshot_version =
          router.epoch_.load(std::memory_order_acquire);
      for (const std::shared_ptr<const TrustSnapshot>& snapshot :
           snapshots) {
        result.users += static_cast<int64_t>(snapshot->num_users());
        result.reviews += static_cast<int64_t>(snapshot->num_reviews());
        result.ratings += static_cast<int64_t>(snapshot->num_ratings());
      }
      // Categories are replicated, not partitioned: report the (shared)
      // space once instead of a meaningless N-fold sum.
      result.categories =
          static_cast<int64_t>(snapshots[0]->num_categories());
      result.service_boots = static_cast<int64_t>(num_shards);
      result.requests_served = router.requests_served_->Value();
      result.connections_active = connection.connections_active;
      result.connections_accepted = connection.connections_accepted;
      result.connection_requests_served =
          connection.connection_requests_served;
      if (num_shards >= 2) {
        result.shards = static_cast<int64_t>(num_shards);
        for (size_t s = 0; s < num_shards; ++s) {
          result.shard_service_boots.push_back(1);
          result.shard_requests_served.push_back(
              router.shards_[s]->dispatches.load(
                  std::memory_order_relaxed));
        }
      }
      // Durability aggregation: counters sum across shards; the epoch is
      // the MINIMUM (the weakest shard bounds how far the whole router
      // is durably snapshotted). All-zero when shards run non-durable —
      // one durable shard out of N still reports, honestly, epoch 0.
      int64_t min_epoch = 0;
      for (size_t s = 0; s < num_shards; ++s) {
        DurabilityStats durability =
            router.shards_[s]->service->durability_stats();
        result.wal_records += durability.wal_records;
        result.wal_bytes += durability.wal_bytes;
        result.segment_bytes += durability.segment_bytes;
        result.recovered_replayed_records +=
            durability.recovered_replayed_records;
        if (s == 0 || durability.segment_epoch < min_epoch) {
          min_epoch = durability.segment_epoch;
        }
      }
      result.segment_epoch = min_epoch;
      if (result.segment_epoch == 0) {
        // Honest zeroes: without a full durable fleet the additive
        // fields stay absent on the NDJSON wire (the one-shard
        // bit-identity property depends on it).
        result.wal_records = 0;
        result.wal_bytes = 0;
        result.segment_bytes = 0;
        result.recovered_replayed_records = 0;
      }
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const MetricsRequest&) {
      // Unreachable: the base envelope answers metrics before
      // DispatchPayload. Kept for variant exhaustiveness.
      return ErrorResponse(ApiStatus::Internal(
          "metrics request reached DispatchPayload"));
    }

    Response operator()(const ReplFetchRequest&) {
      // Unreachable: the base envelope routes replication methods to the
      // attached ReplicationHandler. Kept for variant exhaustiveness.
      return ErrorResponse(ApiStatus::Internal(
          "repl_fetch request reached DispatchPayload"));
    }

    Response operator()(const ReplStatusRequest&) {
      return ErrorResponse(ApiStatus::Internal(
          "repl_status request reached DispatchPayload"));
    }

    Response operator()(const ReplPromoteRequest&) {
      return ErrorResponse(ApiStatus::Internal(
          "repl_promote request reached DispatchPayload"));
    }
  };

  return std::visit(Visitor{*this, request, connection}, request.payload);
}

}  // namespace api
}  // namespace wot
