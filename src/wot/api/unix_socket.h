// Shared stream-socket plumbing of the NDJSON transports — unix-domain
// sockets and TCP — used by both SocketClient (wot/api/client.h) and the
// wot_served accept loop so address setup, line framing and partial-write
// handling cannot diverge.
//
// All writes go through ::send with MSG_NOSIGNAL: a peer that disconnects
// mid-reply produces a Status::IOError instead of a process-killing
// SIGPIPE — a resident server must survive any client's exit.
#ifndef WOT_API_UNIX_SOCKET_H_
#define WOT_API_UNIX_SOCKET_H_

#include <string>
#include <string_view>

#include "wot/util/result.h"

namespace wot {
namespace api {

/// \brief Connects to the stream socket at \p path. Returns the fd; the
/// caller owns it (close(2) when done).
Result<int> ConnectUnixSocket(const std::string& path);

/// \brief Binds + listens on \p path. A stale socket file (no listener
/// behind it) is unlinked first; a path another server is actively
/// serving is AlreadyExists, never stolen. Returns the listening fd; the
/// caller owns it.
Result<int> ListenUnixSocket(const std::string& path, int backlog = 8);

/// \brief Connects to the TCP endpoint "host:port" (IPv4 literal host;
/// empty host means 127.0.0.1). Sets TCP_NODELAY — NDJSON frames are
/// latency-bound, not throughput-bound. Returns the fd; the caller owns
/// it.
Result<int> ConnectTcpSocket(const std::string& host_port);

/// \brief Binds + listens on the TCP endpoint "host:port" (IPv4 literal
/// host; empty host binds 0.0.0.0; port 0 picks an ephemeral port).
/// SO_REUSEADDR is set so a restarting server does not trip over
/// TIME_WAIT. When \p bound_host_port is given it receives the actual
/// "host:port" bound — the way callers learn an ephemeral port. Returns
/// the listening fd; the caller owns it.
Result<int> ListenTcpSocket(const std::string& host_port, int backlog = 8,
                            std::string* bound_host_port = nullptr);

/// \brief Puts \p fd into O_NONBLOCK mode (event-loop servers).
Status SetNonBlocking(int fd);

/// \brief Accepts one pending connection from a (nonblocking) listening
/// socket. Returns the connected fd (caller owns it), or -1 when no
/// connection is pending — the multi-accept pattern is to call this in a
/// loop until -1 after every listen-readable event, so an event loop
/// never leaves an already-queued client waiting for the next wakeup.
///
/// Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) is NOT a listener
/// failure: it also returns -1, setting *\p resource_exhausted when the
/// pointer is given, so a loaded server can back off accepting instead
/// of dying. Only unrecoverable listener errors produce a Status error.
Result<int> AcceptNonBlocking(int listen_fd,
                              bool* resource_exhausted = nullptr);

/// \brief Writes all of \p data to the connected socket \p fd, retrying
/// short writes and EINTR. MSG_NOSIGNAL: a gone peer is an IOError, not a
/// SIGPIPE.
Status SendAll(int fd, std::string_view data);

/// \brief Incremental '\n'-framed reader over a connected socket fd (not
/// owned). Buffers bytes received past the current line.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  /// \brief Reads the next line into \p line (terminator stripped).
  /// Returns false on clean EOF; a non-empty unterminated tail before EOF
  /// is returned as a final line (tolerant NDJSON framing). Read failures
  /// are IOError.
  Result<bool> Next(std::string* line);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_UNIX_SOCKET_H_
