// v2 binary wire codec: the same Request/Response surface as the NDJSON
// codec (codec.h), framed as length-prefixed binary instead of JSON lines.
//
// Frame layout (all fixed-width fields little-endian):
//
//   offset  size  field
//   0       1     magic          0xB2
//   1       1     frame version  2
//   2       1     request: method code (RequestPayload variant index)
//                 response: status code (ApiCode)
//   3       1     request: reserved, 0
//                 response: result type (ResponsePayload variant index)
//   4       8     request id (i64, echoed in the response)
//   12      4     payload length (bytes after the 16-byte header)
//   16      n     payload
//
// The payload is the method/result struct's fields in declaration order:
// integers as little-endian fixed width, doubles as IEEE-754 bits in a
// little-endian u64, strings u32-length-prefixed, vectors a u32 count
// followed by the elements. An error response carries the status message
// string as its entire payload.
//
// Decoding is total: any malformed frame comes back as a non-OK ApiStatus
// (with the id salvaged from the header when at least 12 bytes arrived),
// never a crash. Decoded envelopes carry `version = kProtocolVersion`:
// v2 is a *framing*, not a new semantic surface, so a decoded binary
// request or response is field-identical to its NDJSON twin.
//
// Negotiation (see docs/wire_protocol.md): a connection starts in NDJSON
// and either upgrades via {"v":1,"method":"upgrade","protocol":2} or is
// sniffed as binary-first when its very first byte is the frame magic
// (0xB2 can never start an NDJSON frame).
#ifndef WOT_API_BINARY_CODEC_H_
#define WOT_API_BINARY_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wot/api/api.h"

namespace wot {
namespace api {

/// \brief First byte of every v2 binary frame. Never a legal first byte
/// of an NDJSON frame, so servers can sniff binary-first clients.
inline constexpr uint8_t kBinaryMagic = 0xB2;

/// \brief The binary framing version carried in byte 1 — and the value of
/// the upgrade handshake's "protocol" field.
inline constexpr int64_t kBinaryProtocolVersion = 2;

/// \brief Fixed frame header size in bytes.
inline constexpr size_t kBinaryHeaderSize = 16;

/// \brief Which framing a byte stream speaks.
enum class WireProtocol {
  kNdjson = 1,
  kBinary = 2,
};

/// \brief Parses "ndjson"/"binary" (as accepted by the tools' --protocol
/// flag); error on anything else.
Result<WireProtocol> WireProtocolFromName(std::string_view name);
const char* WireProtocolName(WireProtocol protocol);

/// \brief Encodes \p request as one complete binary frame.
std::string EncodeRequestBinary(const Request& request);

/// \brief Encodes \p response as one complete binary frame.
std::string EncodeResponseBinary(const Response& response);

/// \brief Decodes one binary request frame. On failure returns a non-OK
/// ApiStatus and leaves \p request with the id salvaged from the header
/// (when present) so the caller can correlate its error response. The
/// decoded request carries version = kProtocolVersion.
ApiStatus DecodeRequestBinary(std::string_view frame, Request* request);

/// \brief Decodes one binary response frame (the client side).
ApiStatus DecodeResponseBinary(std::string_view frame, Response* response);

// ---------------------------------------------------------------------------
// Framing.

/// \brief Splits a byte stream into complete binary frames, the binary
/// twin of server::LineAssembler. Append() buffers bytes; NextFrame()
/// pops the next complete frame. The assembler faults — sticky, reported
/// by faulted()/fault_message() — when the pending frame's magic byte is
/// wrong (stream desync) or its payload length exceeds the cap; complete
/// frames popped before the fault are unaffected.
class BinaryFrameAssembler {
 public:
  explicit BinaryFrameAssembler(size_t max_payload_bytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// \brief Buffers \p bytes; returns false once the stream has faulted.
  bool Append(std::string_view bytes);

  /// \brief The next complete frame, or nullopt when more bytes are
  /// needed (or the stream has faulted).
  std::optional<std::string> NextFrame();

  bool faulted() const { return faulted_; }
  /// Why the stream faulted (empty while healthy).
  const std::string& fault_message() const { return fault_message_; }
  /// Bytes buffered but not yet returned by NextFrame().
  size_t buffered() const { return buffer_.size() - start_; }

 private:
  // Validates the frame at the head of the buffer; sets the fault state.
  void CheckHead();

  size_t max_payload_bytes_;
  std::string buffer_;
  size_t start_ = 0;
  bool faulted_ = false;
  std::string fault_message_;
};

// ---------------------------------------------------------------------------
// Upgrade handshake (transport-level; never reaches a Frontend).

/// \brief A decoded {"v":1,"method":"upgrade",...} frame.
struct UpgradeRequest {
  int64_t id = 0;
  /// The requested protocol ("protocol" field, top-level or in params);
  /// 0 when absent or mistyped — the server answers INVALID_ARGUMENT.
  int64_t protocol = 0;
};

/// \brief Parses \p line as an upgrade handshake. Returns nullopt when the
/// line is not a well-formed v1 frame whose method is "upgrade" — such
/// lines belong to the normal dispatch path.
std::optional<UpgradeRequest> ParseUpgradeLine(std::string_view line);

/// \brief The NDJSON acknowledgement of an accepted upgrade (a bare OK
/// response; every frame after it speaks v2 binary). No trailing newline.
std::string EncodeUpgradeAccept(int64_t id);

}  // namespace api
}  // namespace wot

#endif  // WOT_API_BINARY_CODEC_H_
