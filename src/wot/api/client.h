// Client-side transports of the api layer.
//
// ApiClient is the one interface callers program against; picking a
// transport — and a wire protocol — is a construction-time decision:
//
//   * LoopbackClient — in-process dispatch against any Frontend (a
//     ServiceFrontend or a ShardRouter). In `through_codec` mode every
//     call is encoded to a wire frame (NDJSON or v2 binary, per the
//     `protocol` option), pushed through DispatchLine/DispatchFrame and
//     decoded back, exercising the full wire path without a process
//     boundary (the property tests use both modes to prove the codecs
//     are transparent).
//   * SocketClient — NDJSON or v2 binary frames over a SOCK_STREAM
//     socket to a resident server: unix-domain (`wot_served --socket
//     PATH`) via Connect, or TCP (`wot_served --listen HOST:PORT`) via
//     ConnectTcp. A binary client is "binary-first": it never sends the
//     upgrade handshake, relying on the server sniffing the frame magic
//     of its first byte.
//
// Clients are synchronous and single-threaded: Call() writes one frame
// and blocks for its reply. Pipelining callers should talk to the stream
// directly (see tools/wot_served.cc's loop and the round-trip test).
#ifndef WOT_API_CLIENT_H_
#define WOT_API_CLIENT_H_

#include <memory>
#include <string>

#include "wot/api/api.h"
#include "wot/api/binary_codec.h"
#include "wot/api/frontend.h"
#include "wot/api/unix_socket.h"

namespace wot {
namespace api {

/// \brief A synchronous request/response channel to a trust service.
class ApiClient {
 public:
  virtual ~ApiClient() = default;

  /// \brief Executes one call. A nonzero request.id is sent (and echoed)
  /// as-is; id 0 ("unset") is replaced with an internal counter. An
  /// error *Status* means the transport failed (broken socket, malformed
  /// reply); an application error arrives as a Response whose ApiStatus
  /// is non-OK.
  virtual Result<Response> Call(const Request& request) = 0;
};

/// \brief In-process client over a frontend the caller owns.
class LoopbackClient : public ApiClient {
 public:
  /// \p frontend must outlive the client. With \p through_codec, calls
  /// round-trip through the wire format selected by \p protocol.
  explicit LoopbackClient(Frontend* frontend, bool through_codec = false,
                          WireProtocol protocol = WireProtocol::kNdjson)
      : frontend_(frontend),
        through_codec_(through_codec),
        protocol_(protocol) {}

  Result<Response> Call(const Request& request) override;

 private:
  Frontend* frontend_;
  bool through_codec_;
  WireProtocol protocol_;
  int64_t next_id_ = 1;
};

/// \brief Stream-socket client of a resident wot_served process.
class SocketClient : public ApiClient {
 public:
  /// \brief Connects to the server listening on \p socket_path.
  static Result<std::unique_ptr<SocketClient>> Connect(
      const std::string& socket_path,
      WireProtocol protocol = WireProtocol::kNdjson);

  /// \brief Connects to the server listening on TCP \p host_port
  /// ("127.0.0.1:7777"; empty host means loopback).
  static Result<std::unique_ptr<SocketClient>> ConnectTcp(
      const std::string& host_port,
      WireProtocol protocol = WireProtocol::kNdjson);

  ~SocketClient() override;
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  Result<Response> Call(const Request& request) override;

 private:
  SocketClient(int fd, WireProtocol protocol)
      : fd_(fd),
        protocol_(protocol),
        reader_(fd),
        frames_(kClientMaxPayloadBytes) {}

  // Reads one complete binary frame off the socket.
  Result<std::string> NextFrame();

  /// Client-side bound on one response frame's payload (a server answer
  /// larger than this indicates a desynchronized or hostile stream).
  static constexpr size_t kClientMaxPayloadBytes = 64 * 1024 * 1024;

  int fd_;
  WireProtocol protocol_;
  FdLineReader reader_;          // NDJSON framing
  BinaryFrameAssembler frames_;  // binary framing
  int64_t next_id_ = 1;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_CLIENT_H_
