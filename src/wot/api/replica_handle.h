// ReplicaHandle: the ShardRouter's view of one replica of one shard.
//
// The api layer defines only this seam. Concrete handles live where the
// transport lives: wot/replication provides LocalReplicaHandle (an
// in-process follower, for tests and single-process fleets) and
// RemoteReplicaHandle (a SocketClient to a `wot_served --replica-of`
// process). The router uses handles two ways:
//
//   * Poll() during quorum waits and staleness checks — cheap on a local
//     handle, one `repl_status` round-trip on a remote one.
//   * Forward() to serve a point read or a topk scatter leg from the
//     replica instead of the primary. A nullopt return means the
//     TRANSPORT failed (dead process, broken socket): the router marks
//     the replica unhealthy and falls back to the primary. An application
//     error (non-OK Response) also falls back but leaves health alone —
//     the replica answered, it just could not serve this request.
//
// Thread contract: the router calls Poll and Forward concurrently from
// serving threads; implementations must be internally synchronized.
#ifndef WOT_API_REPLICA_HANDLE_H_
#define WOT_API_REPLICA_HANDLE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "wot/api/api.h"

namespace wot {
namespace api {

/// \brief One Poll() observation of a replica.
struct ReplicaProbe {
  /// The replica's applied snapshot version (its `applied_epoch`
  /// checkpoint in the shard's own version space).
  uint64_t applied_version = 0;
  /// False when the replica could not be reached.
  bool healthy = false;
};

/// \brief The router's handle on one replica of one shard.
class ReplicaHandle {
 public:
  virtual ~ReplicaHandle() = default;

  /// \brief Observes the replica's current applied version and health.
  virtual ReplicaProbe Poll() = 0;

  /// \brief Executes one read on the replica. Returns nullopt when the
  /// transport failed; otherwise the replica's response (which may carry
  /// an application error).
  virtual std::optional<Response> Forward(const Request& request) = 0;

  /// \brief A human-readable address for status reporting ("local",
  /// "unix:/path", "tcp:host:port").
  virtual const std::string& address() const = 0;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_REPLICA_HANDLE_H_
