#include "wot/api/unix_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "wot/util/string_util.h"

namespace wot {
namespace api {
namespace {

Result<sockaddr_un> MakeAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Parses "host:port" into an IPv4 sockaddr_in. The host must be an IPv4
// literal (or empty: \p empty_host_means_any picks between 0.0.0.0 for
// listeners and 127.0.0.1 for clients); the port a decimal in [0, 65535].
Result<sockaddr_in> MakeTcpAddress(const std::string& host_port,
                                   bool empty_host_means_any) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("TCP endpoint '" + host_port +
                                   "' is not host:port");
  }
  std::string host = host_port.substr(0, colon);
  WOT_ASSIGN_OR_RETURN(int64_t port,
                       ParseInt64(host_port.substr(colon + 1)));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("TCP port " + std::to_string(port) +
                                   " out of range [0, 65535]");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (host.empty()) {
    addr.sin_addr.s_addr =
        htonl(empty_host_means_any ? INADDR_ANY : INADDR_LOOPBACK);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + host +
                                   "' is not an IPv4 address literal");
  }
  return addr;
}

std::string FormatTcpAddress(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Result<int> ConnectUnixSocket(const std::string& path) {
  WOT_ASSIGN_OR_RETURN(sockaddr_un addr, MakeAddress(path));
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved_errno = errno;
    ::close(fd);
    return Status::IOError("cannot connect to '" + path +
                           "': " + std::strerror(saved_errno));
  }
  return fd;
}

Result<int> ListenUnixSocket(const std::string& path, int backlog) {
  WOT_ASSIGN_OR_RETURN(sockaddr_un addr, MakeAddress(path));
  // A connectable socket means a live server already owns this path:
  // refuse rather than silently stealing its endpoint. Only a stale,
  // unconnectable socket file is cleaned up.
  Result<int> existing = ConnectUnixSocket(path);
  if (existing.ok()) {
    ::close(existing.ValueOrDie());
    return Status::AlreadyExists("a server is already listening on '" +
                                 path + "'");
  }
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") +
                           std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    int saved_errno = errno;
    ::close(fd);
    return Status::IOError("cannot listen on '" + path +
                           "': " + std::strerror(saved_errno));
  }
  return fd;
}

Result<int> ConnectTcpSocket(const std::string& host_port) {
  WOT_ASSIGN_OR_RETURN(sockaddr_in addr,
                       MakeTcpAddress(host_port,
                                      /*empty_host_means_any=*/false));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") +
                           std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved_errno = errno;
    ::close(fd);
    return Status::IOError("cannot connect to '" + host_port +
                           "': " + std::strerror(saved_errno));
  }
  int nodelay = 1;
  // Best effort: a kernel refusing TCP_NODELAY still carries frames.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  return fd;
}

Result<int> ListenTcpSocket(const std::string& host_port, int backlog,
                            std::string* bound_host_port) {
  WOT_ASSIGN_OR_RETURN(sockaddr_in addr,
                       MakeTcpAddress(host_port,
                                      /*empty_host_means_any=*/true));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket(): ") +
                           std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    int saved_errno = errno;
    ::close(fd);
    return Status::IOError("cannot listen on '" + host_port +
                           "': " + std::strerror(saved_errno));
  }
  if (bound_host_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      int saved_errno = errno;
      ::close(fd);
      return Status::IOError(std::string("getsockname(): ") +
                             std::strerror(saved_errno));
    }
    *bound_host_port = FormatTcpAddress(bound);
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<int> AcceptNonBlocking(int listen_fd, bool* resource_exhausted) {
  if (resource_exhausted != nullptr) {
    *resource_exhausted = false;
  }
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      return fd;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return -1;
    }
    if (errno == EINTR) {
      continue;
    }
    // A connection that was reset between queueing and accept() is not
    // a listener failure; report "nothing pending" and let the caller's
    // next readable event retry.
    if (errno == ECONNABORTED) {
      return -1;
    }
    // Out of fds / kernel memory: the listener is fine, the process is
    // just saturated. Let the caller back off rather than treating a
    // full server as a dead one.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      if (resource_exhausted != nullptr) {
        *resource_exhausted = true;
      }
      return -1;
    }
    return Status::IOError(std::string("accept(): ") +
                           std::strerror(errno));
  }
}

Status SendAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send(): ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> FdLineReader::Next(std::string* line) {
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      // Tolerant framing: a trailing unterminated line still counts.
      *line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read(): ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace api
}  // namespace wot
