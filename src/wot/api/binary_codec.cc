#include "wot/api/binary_codec.h"

#include <utility>
#include <variant>

#include "wot/api/codec.h"
#include "wot/io/byte_reader.h"
#include "wot/io/byte_writer.h"
#include "wot/io/json_parser.h"

namespace wot {
namespace api {
namespace {

// Byte offsets within the fixed header.
constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 1;
constexpr size_t kCodeOffset = 2;     // method (request) / status (response)
constexpr size_t kAuxOffset = 3;      // reserved (request) / result type
constexpr size_t kIdOffset = 4;
constexpr size_t kLengthOffset = 12;

uint8_t HeaderByte(std::string_view frame, size_t offset) {
  return static_cast<uint8_t>(frame[offset]);
}

uint32_t HeaderLength(std::string_view frame) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(HeaderByte(frame, kLengthOffset + i))
         << (8 * i);
  }
  return v;
}

int64_t HeaderId(std::string_view frame) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(HeaderByte(frame, kIdOffset + i)) << (8 * i);
  }
  return static_cast<int64_t>(v);
}

std::string FinishFrame(uint8_t code, uint8_t aux, int64_t id,
                        std::string payload) {
  ByteWriter w;
  w.PutU8(kBinaryMagic)
      .PutU8(static_cast<uint8_t>(kBinaryProtocolVersion))
      .PutU8(code)
      .PutU8(aux)
      .PutI64(id)
      .PutU32(static_cast<uint32_t>(payload.size()))
      .PutRaw(payload);
  return w.Take();
}

void EncodeRequestPayload(const RequestPayload& payload, ByteWriter* w) {
  struct Visitor {
    ByteWriter& w;
    void operator()(const TrustQuery& q) {
      w.PutString(q.source).PutString(q.target);
    }
    void operator()(const TopKQuery& q) {
      w.PutString(q.source).PutI64(q.k);
    }
    void operator()(const ExplainQuery& q) {
      w.PutString(q.source).PutString(q.target);
    }
    void operator()(const IngestUser& q) { w.PutString(q.name); }
    void operator()(const IngestCategory& q) { w.PutString(q.name); }
    void operator()(const IngestObject& q) {
      w.PutString(q.category).PutString(q.name);
    }
    void operator()(const IngestReview& q) {
      w.PutString(q.writer).PutI64(q.object);
    }
    void operator()(const IngestRating& q) {
      w.PutString(q.rater).PutI64(q.review).PutDouble(q.value);
    }
    void operator()(const CommitRequest&) {}
    void operator()(const StatsRequest&) {}
    void operator()(const MetricsRequest&) {}
    void operator()(const ReplFetchRequest& q) {
      w.PutI64(q.shard).PutU64(q.applied_version).PutU64(q.offset);
    }
    void operator()(const ReplStatusRequest&) {}
    void operator()(const ReplPromoteRequest&) {}
  };
  std::visit(Visitor{*w}, payload);
}

void EncodeResponsePayload(const ResponsePayload& payload, ByteWriter* w) {
  struct Visitor {
    ByteWriter& w;
    void operator()(const std::monostate&) {}
    void operator()(const TrustResult& r) {
      w.PutDouble(r.trust)
          .PutString(r.source_name)
          .PutString(r.target_name)
          .PutU64(r.snapshot_version);
    }
    void operator()(const TopKResult& r) {
      w.PutString(r.source_name);
      w.PutU32(static_cast<uint32_t>(r.trustees.size()));
      for (const ScoredUserEntry& entry : r.trustees) {
        w.PutU32(entry.user).PutString(entry.name).PutDouble(entry.score);
      }
      w.PutU64(r.snapshot_version);
    }
    void operator()(const ExplainResult& r) {
      w.PutDouble(r.trust)
          .PutDouble(r.affinity_sum)
          .PutString(r.source_name)
          .PutString(r.target_name);
      w.PutU32(static_cast<uint32_t>(r.terms.size()));
      for (const ExplainTermResult& term : r.terms) {
        w.PutU32(term.category)
            .PutString(term.category_name)
            .PutDouble(term.affiliation)
            .PutDouble(term.expertise)
            .PutDouble(term.contribution);
      }
      w.PutU64(r.snapshot_version);
    }
    void operator()(const IngestResult& r) { w.PutI64(r.assigned_id); }
    void operator()(const CommitResult& r) {
      w.PutU64(r.snapshot_version)
          .PutU8(r.published ? 1 : 0)
          .PutI64(r.categories_recomputed)
          .PutI64(r.affiliation_rows_recomputed)
          .PutI64(r.postings_rebuilt);
    }
    void operator()(const StatsResult& r) {
      w.PutU64(r.snapshot_version)
          .PutI64(r.users)
          .PutI64(r.categories)
          .PutI64(r.reviews)
          .PutI64(r.ratings)
          .PutI64(r.service_boots)
          .PutI64(r.requests_served)
          .PutI64(r.connections_active)
          .PutI64(r.connections_accepted)
          .PutI64(r.connection_requests_served)
          .PutI64(r.shards);
      w.PutU32(static_cast<uint32_t>(r.shard_service_boots.size()));
      for (int64_t boots : r.shard_service_boots) {
        w.PutI64(boots);
      }
      w.PutU32(static_cast<uint32_t>(r.shard_requests_served.size()));
      for (int64_t requests : r.shard_requests_served) {
        w.PutI64(requests);
      }
      // Durability counters: the binary codec carries them
      // unconditionally (field presence is fixed per frame version).
      w.PutI64(r.wal_records)
          .PutI64(r.wal_bytes)
          .PutI64(r.segment_epoch)
          .PutI64(r.segment_bytes)
          .PutI64(r.recovered_replayed_records);
    }
    void operator()(const MetricsResult& r) {
      w.PutU64(r.snapshot_version);
      w.PutU32(static_cast<uint32_t>(r.counters.size()));
      for (const MetricValue& counter : r.counters) {
        w.PutString(counter.name).PutI64(counter.value);
      }
      w.PutU32(static_cast<uint32_t>(r.gauges.size()));
      for (const MetricValue& gauge : r.gauges) {
        w.PutString(gauge.name).PutI64(gauge.value);
      }
      w.PutU32(static_cast<uint32_t>(r.histograms.size()));
      for (const MetricHistogramValue& histogram : r.histograms) {
        w.PutString(histogram.name)
            .PutI64(histogram.count)
            .PutI64(histogram.sum)
            .PutI64(histogram.min)
            .PutI64(histogram.max)
            .PutDouble(histogram.p50)
            .PutDouble(histogram.p90)
            .PutDouble(histogram.p99)
            .PutDouble(histogram.p999);
      }
    }
    void operator()(const ReplFetchResult& r) {
      w.PutI64(r.kind)
          .PutU64(r.base_version)
          .PutU64(r.target_version)
          .PutU64(r.source_version)
          .PutU64(r.offset)
          .PutU64(r.total_bytes)
          .PutString(r.payload);
    }
    void operator()(const ReplStatusResult& r) {
      w.PutI64(r.role)
          .PutU64(r.applied_version)
          .PutU64(r.source_version)
          .PutI64(r.failovers);
      w.PutU32(static_cast<uint32_t>(r.replicas.size()));
      for (const ReplReplicaInfo& replica : r.replicas) {
        w.PutI64(replica.shard)
            .PutString(replica.address)
            .PutU64(replica.applied_version)
            .PutI64(replica.healthy);
      }
    }
  };
  std::visit(Visitor{*w}, payload);
}

ApiStatus DecodeRequestPayload(size_t method_index, ByteReader* r,
                               Request* request) {
  switch (method_index) {
    case 0: {
      TrustQuery q;
      q.source = r->GetString();
      q.target = r->GetString();
      request->payload = std::move(q);
      break;
    }
    case 1: {
      TopKQuery q;
      q.source = r->GetString();
      q.k = r->GetI64();
      request->payload = std::move(q);
      break;
    }
    case 2: {
      ExplainQuery q;
      q.source = r->GetString();
      q.target = r->GetString();
      request->payload = std::move(q);
      break;
    }
    case 3: {
      IngestUser q;
      q.name = r->GetString();
      request->payload = std::move(q);
      break;
    }
    case 4: {
      IngestCategory q;
      q.name = r->GetString();
      request->payload = std::move(q);
      break;
    }
    case 5: {
      IngestObject q;
      q.category = r->GetString();
      q.name = r->GetString();
      request->payload = std::move(q);
      break;
    }
    case 6: {
      IngestReview q;
      q.writer = r->GetString();
      q.object = r->GetI64();
      request->payload = std::move(q);
      break;
    }
    case 7: {
      IngestRating q;
      q.rater = r->GetString();
      q.review = r->GetI64();
      q.value = r->GetDouble();
      request->payload = std::move(q);
      break;
    }
    case 8:
      request->payload = CommitRequest{};
      break;
    case 9:
      request->payload = StatsRequest{};
      break;
    case 10:
      request->payload = MetricsRequest{};
      break;
    case 11: {
      ReplFetchRequest q;
      q.shard = r->GetI64();
      q.applied_version = r->GetU64();
      q.offset = r->GetU64();
      request->payload = q;
      break;
    }
    case 12:
      request->payload = ReplStatusRequest{};
      break;
    case 13:
      request->payload = ReplPromoteRequest{};
      break;
    default:
      return ApiStatus::Unimplemented(
          "unknown method code " + std::to_string(method_index));
  }
  if (!r->AtEnd()) {
    return ApiStatus::InvalidArgument(
        std::string("malformed '") +
        MethodName(request->payload) + "' payload");
  }
  return ApiStatus::Ok();
}

ApiStatus DecodeResponsePayload(size_t result_index, ByteReader* r,
                                Response* response) {
  switch (result_index) {
    case 0:
      response->payload = std::monostate{};
      break;
    case 1: {
      TrustResult result;
      result.trust = r->GetDouble();
      result.source_name = r->GetString();
      result.target_name = r->GetString();
      result.snapshot_version = r->GetU64();
      response->payload = std::move(result);
      break;
    }
    case 2: {
      TopKResult result;
      result.source_name = r->GetString();
      uint32_t count = r->GetU32();
      for (uint32_t i = 0; i < count && !r->failed(); ++i) {
        ScoredUserEntry entry;
        entry.user = r->GetU32();
        entry.name = r->GetString();
        entry.score = r->GetDouble();
        result.trustees.push_back(std::move(entry));
      }
      result.snapshot_version = r->GetU64();
      response->payload = std::move(result);
      break;
    }
    case 3: {
      ExplainResult result;
      result.trust = r->GetDouble();
      result.affinity_sum = r->GetDouble();
      result.source_name = r->GetString();
      result.target_name = r->GetString();
      uint32_t count = r->GetU32();
      for (uint32_t i = 0; i < count && !r->failed(); ++i) {
        ExplainTermResult term;
        term.category = r->GetU32();
        term.category_name = r->GetString();
        term.affiliation = r->GetDouble();
        term.expertise = r->GetDouble();
        term.contribution = r->GetDouble();
        result.terms.push_back(std::move(term));
      }
      result.snapshot_version = r->GetU64();
      response->payload = std::move(result);
      break;
    }
    case 4: {
      IngestResult result;
      result.assigned_id = r->GetI64();
      response->payload = result;
      break;
    }
    case 5: {
      CommitResult result;
      result.snapshot_version = r->GetU64();
      result.published = r->GetU8() != 0;
      result.categories_recomputed = r->GetI64();
      result.affiliation_rows_recomputed = r->GetI64();
      result.postings_rebuilt = r->GetI64();
      response->payload = result;
      break;
    }
    case 6: {
      StatsResult result;
      result.snapshot_version = r->GetU64();
      result.users = r->GetI64();
      result.categories = r->GetI64();
      result.reviews = r->GetI64();
      result.ratings = r->GetI64();
      result.service_boots = r->GetI64();
      result.requests_served = r->GetI64();
      result.connections_active = r->GetI64();
      result.connections_accepted = r->GetI64();
      result.connection_requests_served = r->GetI64();
      result.shards = r->GetI64();
      uint32_t boots = r->GetU32();
      for (uint32_t i = 0; i < boots && !r->failed(); ++i) {
        result.shard_service_boots.push_back(r->GetI64());
      }
      uint32_t requests = r->GetU32();
      for (uint32_t i = 0; i < requests && !r->failed(); ++i) {
        result.shard_requests_served.push_back(r->GetI64());
      }
      result.wal_records = r->GetI64();
      result.wal_bytes = r->GetI64();
      result.segment_epoch = r->GetI64();
      result.segment_bytes = r->GetI64();
      result.recovered_replayed_records = r->GetI64();
      response->payload = std::move(result);
      break;
    }
    case 7: {
      MetricsResult result;
      result.snapshot_version = r->GetU64();
      uint32_t counters = r->GetU32();
      for (uint32_t i = 0; i < counters && !r->failed(); ++i) {
        MetricValue counter;
        counter.name = r->GetString();
        counter.value = r->GetI64();
        result.counters.push_back(std::move(counter));
      }
      uint32_t gauges = r->GetU32();
      for (uint32_t i = 0; i < gauges && !r->failed(); ++i) {
        MetricValue gauge;
        gauge.name = r->GetString();
        gauge.value = r->GetI64();
        result.gauges.push_back(std::move(gauge));
      }
      uint32_t histograms = r->GetU32();
      for (uint32_t i = 0; i < histograms && !r->failed(); ++i) {
        MetricHistogramValue histogram;
        histogram.name = r->GetString();
        histogram.count = r->GetI64();
        histogram.sum = r->GetI64();
        histogram.min = r->GetI64();
        histogram.max = r->GetI64();
        histogram.p50 = r->GetDouble();
        histogram.p90 = r->GetDouble();
        histogram.p99 = r->GetDouble();
        histogram.p999 = r->GetDouble();
        result.histograms.push_back(std::move(histogram));
      }
      response->payload = std::move(result);
      break;
    }
    case 8: {
      ReplFetchResult result;
      result.kind = r->GetI64();
      result.base_version = r->GetU64();
      result.target_version = r->GetU64();
      result.source_version = r->GetU64();
      result.offset = r->GetU64();
      result.total_bytes = r->GetU64();
      result.payload = r->GetString();
      response->payload = std::move(result);
      break;
    }
    case 9: {
      ReplStatusResult result;
      result.role = r->GetI64();
      result.applied_version = r->GetU64();
      result.source_version = r->GetU64();
      result.failovers = r->GetI64();
      uint32_t count = r->GetU32();
      for (uint32_t i = 0; i < count && !r->failed(); ++i) {
        ReplReplicaInfo replica;
        replica.shard = r->GetI64();
        replica.address = r->GetString();
        replica.applied_version = r->GetU64();
        replica.healthy = r->GetI64();
        result.replicas.push_back(std::move(replica));
      }
      response->payload = std::move(result);
      break;
    }
    default:
      return ApiStatus::InvalidArgument(
          "unknown result type code " + std::to_string(result_index));
  }
  if (!r->AtEnd()) {
    return ApiStatus::InvalidArgument("malformed result payload");
  }
  return ApiStatus::Ok();
}

// Shared header validation; fills *id with the salvaged correlator.
ApiStatus CheckHeader(std::string_view frame, int64_t* id) {
  if (frame.size() < kBinaryHeaderSize) {
    return ApiStatus::InvalidArgument(
        "truncated binary frame: " + std::to_string(frame.size()) +
        " bytes is shorter than the " + std::to_string(kBinaryHeaderSize) +
        "-byte header");
  }
  if (HeaderByte(frame, kMagicOffset) != kBinaryMagic) {
    return ApiStatus::InvalidArgument("bad frame magic");
  }
  *id = HeaderId(frame);
  uint8_t version = HeaderByte(frame, kVersionOffset);
  if (version != kBinaryProtocolVersion) {
    return ApiStatus::InvalidArgument(
        "unsupported binary framing version " + std::to_string(version) +
        " (this build speaks v" + std::to_string(kBinaryProtocolVersion) +
        ")");
  }
  uint32_t length = HeaderLength(frame);
  if (length != frame.size() - kBinaryHeaderSize) {
    return ApiStatus::InvalidArgument(
        "frame payload length " + std::to_string(length) +
        " does not match the " +
        std::to_string(frame.size() - kBinaryHeaderSize) +
        " payload bytes received");
  }
  return ApiStatus::Ok();
}

}  // namespace

Result<WireProtocol> WireProtocolFromName(std::string_view name) {
  if (name == "ndjson") return WireProtocol::kNdjson;
  if (name == "binary") return WireProtocol::kBinary;
  return Status::InvalidArgument("unknown protocol '" + std::string(name) +
                                 "' (expected ndjson or binary)");
}

const char* WireProtocolName(WireProtocol protocol) {
  return protocol == WireProtocol::kBinary ? "binary" : "ndjson";
}

std::string EncodeRequestBinary(const Request& request) {
  ByteWriter payload;
  EncodeRequestPayload(request.payload, &payload);
  return FinishFrame(static_cast<uint8_t>(request.payload.index()),
                     /*aux=*/0, request.id, payload.Take());
}

std::string EncodeResponseBinary(const Response& response) {
  ByteWriter payload;
  uint8_t result_type = 0;
  if (!response.status.ok()) {
    payload.PutString(response.status.message);
  } else {
    result_type = static_cast<uint8_t>(response.payload.index());
    EncodeResponsePayload(response.payload, &payload);
  }
  return FinishFrame(static_cast<uint8_t>(response.status.code), result_type,
                     response.id, payload.Take());
}

ApiStatus DecodeRequestBinary(std::string_view frame, Request* request) {
  *request = Request{};
  ApiStatus header = CheckHeader(frame, &request->id);
  if (!header.ok()) {
    return header;
  }
  // Byte 3 is reserved on requests and deliberately ignored so it can be
  // claimed by a future revision without breaking this decoder.
  ByteReader reader(frame.substr(kBinaryHeaderSize));
  return DecodeRequestPayload(HeaderByte(frame, kCodeOffset), &reader,
                              request);
}

ApiStatus DecodeResponseBinary(std::string_view frame, Response* response) {
  *response = Response{};
  ApiStatus header = CheckHeader(frame, &response->id);
  if (!header.ok()) {
    return header;
  }
  uint8_t code = HeaderByte(frame, kCodeOffset);
  if (code > static_cast<uint8_t>(ApiCode::kInternal)) {
    return ApiStatus::InvalidArgument("unknown status code " +
                                      std::to_string(code));
  }
  response->status.code = static_cast<ApiCode>(code);
  ByteReader reader(frame.substr(kBinaryHeaderSize));
  if (!response->status.ok()) {
    response->status.message = reader.GetString();
    if (!reader.AtEnd()) {
      return ApiStatus::InvalidArgument("malformed error payload");
    }
    return ApiStatus::Ok();  // the *frame* decoded fine
  }
  return DecodeResponsePayload(HeaderByte(frame, kAuxOffset), &reader,
                               response);
}

bool BinaryFrameAssembler::Append(std::string_view bytes) {
  if (faulted_) {
    return false;
  }
  buffer_.append(bytes);
  CheckHead();
  return !faulted_;
}

void BinaryFrameAssembler::CheckHead() {
  if (faulted_ || buffered() == 0) {
    return;
  }
  if (static_cast<uint8_t>(buffer_[start_]) != kBinaryMagic) {
    faulted_ = true;
    fault_message_ = "bad frame magic (stream desynchronized)";
    return;
  }
  if (buffered() >= kBinaryHeaderSize) {
    uint32_t length = HeaderLength(
        std::string_view(buffer_).substr(start_, kBinaryHeaderSize));
    if (length > max_payload_bytes_) {
      faulted_ = true;
      fault_message_ = "frame payload length " + std::to_string(length) +
                       " exceeds " + std::to_string(max_payload_bytes_) +
                       " bytes";
    }
  }
}

std::optional<std::string> BinaryFrameAssembler::NextFrame() {
  CheckHead();
  if (faulted_ || buffered() < kBinaryHeaderSize) {
    // Reclaim the consumed prefix once it dominates the buffer.
    if (start_ > 0 && start_ >= buffer_.size() / 2) {
      buffer_.erase(0, start_);
      start_ = 0;
    }
    return std::nullopt;
  }
  uint32_t length = HeaderLength(
      std::string_view(buffer_).substr(start_, kBinaryHeaderSize));
  size_t total = kBinaryHeaderSize + length;
  if (buffered() < total) {
    return std::nullopt;
  }
  std::string frame = buffer_.substr(start_, total);
  start_ += total;
  return frame;
}

std::optional<UpgradeRequest> ParseUpgradeLine(std::string_view line) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed.ValueOrDie().is_object()) {
    return std::nullopt;
  }
  const JsonValue& root = parsed.ValueOrDie();
  Result<int64_t> version = root.GetInt("v");
  if (!version.ok() || version.ValueOrDie() != kProtocolVersion) {
    return std::nullopt;
  }
  Result<std::string> method = root.GetString("method");
  if (!method.ok() || method.ValueOrDie() != "upgrade") {
    return std::nullopt;
  }
  UpgradeRequest upgrade;
  const JsonValue* id = root.Find("id");
  if (id != nullptr && id->is_number() && id->number_is_int()) {
    upgrade.id = id->int_value();
  }
  // "protocol" may sit at the top level (the documented frame) or inside
  // params; absent/mistyped stays 0 and the server rejects it.
  Result<int64_t> protocol = root.GetInt("protocol");
  if (!protocol.ok()) {
    const JsonValue* params = root.Find("params");
    if (params != nullptr && params->is_object()) {
      protocol = params->GetInt("protocol");
    }
  }
  if (protocol.ok()) {
    upgrade.protocol = protocol.ValueOrDie();
  }
  return upgrade;
}

std::string EncodeUpgradeAccept(int64_t id) {
  Response ok;
  ok.id = id;
  return EncodeResponse(ok);
}

}  // namespace api
}  // namespace wot
