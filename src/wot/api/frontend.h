// ServiceFrontend: dispatches typed API requests against one TrustService.
//
// This is the single implementation of the API's semantics. Every
// transport funnels into Dispatch() (typed) or DispatchLine() (one NDJSON
// frame in, one frame out):
//
//   * wot_cli query       -> LoopbackClient -> Dispatch
//   * wot_cli --connect   -> SocketClient -> wot_served -> DispatchLine
//   * wot_served          -> DispatchLine over stdin/stdout, or the
//                            wot/server ConnectionServer for --socket
//
// so responses are identical no matter how a request arrived (property-
// tested bit-for-bit). A future shard router is just another owner of
// several frontends.
//
// DispatchLine is total: malformed input, unknown methods, wrong protocol
// versions, missing fields and out-of-range ids all produce a structured
// error response — it never crashes and never returns a non-JSON line.
//
// Thread contract: Dispatch/DispatchLine ARE thread-safe; one frontend is
// shared by every connection of a ConnectionServer. Queries resolve names
// on the published TrustSnapshot (its immutable NameIndex) and run
// lock-free; ingest and commit requests delegate to the TrustService's
// internally serialized write path. Consequence: a user name (or index)
// ingested but not yet committed is NOT resolvable by queries — it
// answers NOT_FOUND until a commit publishes the next snapshot. Ingest
// references, by contrast, resolve against the staged dataset inside the
// writer lock, so "ingest_user then ingest_review by that name" works
// without an intervening commit.
#ifndef WOT_API_FRONTEND_H_
#define WOT_API_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "wot/api/api.h"
#include "wot/service/trust_service.h"
#include "wot/service/trust_snapshot.h"

namespace wot {
namespace api {

/// \brief Resolves \p ref as a user name or decimal user index against the
/// published \p snapshot — the read path's one name-or-index lookup.
/// Touches only snapshot-owned immutable state (safe from any thread).
Result<UserId> ResolveUserRef(const TrustSnapshot& snapshot,
                              std::string_view ref);

/// \brief Serving counters of one frontend (returned by the stats method).
struct FrontendStats {
  /// Boots of the backing service observed by this frontend. Stays 1 for
  /// the lifetime of a resident server — the round-trip smoke asserts a
  /// thousand requests share one boot.
  int64_t service_boots = 1;
  int64_t requests_served = 0;
  int64_t errors = 0;
};

/// \brief Connection-server context for one dispatched request. A
/// ConnectionServer fills this per request so the stats method can
/// surface per-connection and aggregate serving counters; transports
/// without connections (loopback, stdin/stdout) leave it defaulted.
struct ConnectionContext {
  int64_t connections_active = 0;
  int64_t connections_accepted = 0;
  /// Requests read off the asking connection so far, including this one.
  int64_t connection_requests_served = 0;
};

/// \brief Dispatches requests against a TrustService it does not own.
class ServiceFrontend {
 public:
  /// \p service must outlive the frontend.
  explicit ServiceFrontend(TrustService* service) : service_(service) {}

  /// \brief Executes one typed request. The response echoes request.id.
  Response Dispatch(const Request& request) {
    return Dispatch(request, ConnectionContext{});
  }
  Response Dispatch(const Request& request,
                    const ConnectionContext& connection);

  /// \brief Decodes one NDJSON frame, dispatches it, encodes the reply
  /// (no trailing newline). Total: any input yields a valid frame.
  std::string DispatchLine(std::string_view line) {
    return DispatchLine(line, ConnectionContext{});
  }
  std::string DispatchLine(std::string_view line,
                           const ConnectionContext& connection);

  /// Value snapshot of the counters (they advance concurrently).
  FrontendStats stats() const;
  TrustService* service() const { return service_; }

 private:
  Response DispatchPayload(const Request& request,
                           const ConnectionContext& connection);

  TrustService* service_;
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> errors_{0};
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_FRONTEND_H_
