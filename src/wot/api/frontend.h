// Frontend: the one interface every transport serves, and ServiceFrontend,
// its single-service implementation.
//
// A Frontend answers typed API requests (Dispatch) or raw NDJSON frames
// (DispatchLine: one byte line in, one structured frame out — total: any
// input yields a valid frame). Every transport funnels into it:
//
//   * wot_cli query       -> LoopbackClient -> Dispatch
//   * wot_cli --connect   -> SocketClient -> wot_served -> DispatchLine
//                            (or DispatchFrame on a binary connection)
//   * wot_served          -> the wot/server ConnectionServer, for
//                            stdin/stdout, --socket and --listen alike
//
// so responses are identical no matter how a request arrived (property-
// tested bit-for-bit). Implementations:
//
//   * ServiceFrontend (here)        — dispatches against ONE TrustService.
//   * ShardRouter (api/shard_router.h) — owns N TrustService shards and
//     serves the identical wire protocol by routing/scatter-gathering;
//     with one shard it is bit-identical to a ServiceFrontend.
//
// Telemetry: the base envelope owns a telemetry::MetricRegistry and
// answers the additive `metrics` method from it — envelope counters
// (api.requests_served / api.errors, the SAME counters the stats method
// reports, so the two can never disagree), a per-method latency
// histogram (api.latency_ns.<method>), and every registry registered via
// AddMetricsSource (a ConnectionServer's, a StorageManager's, each
// shard service's), merged at scrape time. The envelope also writes the
// slow-request log: set_slow_request_threshold_millis makes any slower
// dispatch emit one WARNING line carrying the request's trace id
// (telemetry/trace.h), method, shard and commit epoch.
//
// Thread contract: Dispatch/DispatchLine ARE thread-safe; one frontend is
// shared by every connection of a ConnectionServer. Queries resolve names
// on the published TrustSnapshot (its immutable NameIndex) and run
// lock-free; ingest and commit requests delegate to the TrustService's
// internally serialized write path. Consequence: a user name (or index)
// ingested but not yet committed is NOT resolvable by queries — it
// answers NOT_FOUND until a commit publishes the next snapshot. Ingest
// references, by contrast, resolve against the staged dataset inside the
// writer lock, so "ingest_user then ingest_review by that name" works
// without an intervening commit.
#ifndef WOT_API_FRONTEND_H_
#define WOT_API_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wot/api/api.h"
#include "wot/service/trust_service.h"
#include "wot/service/trust_snapshot.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace api {

/// \brief Resolves \p ref as a user name or decimal user index against the
/// published \p snapshot — the read path's one name-or-index lookup.
/// Touches only snapshot-owned immutable state (safe from any thread).
Result<UserId> ResolveUserRef(const TrustSnapshot& snapshot,
                              std::string_view ref);

/// \brief A bare error response around \p status (the dispatchers share
/// this so their error frames cannot diverge; the Frontend envelope
/// fills version/id afterwards).
inline Response ErrorResponse(ApiStatus status) {
  Response response;
  response.status = std::move(status);
  return response;
}

/// \brief Serving counters of one frontend (returned by the stats method).
struct FrontendStats {
  /// Boots of the backing service(s) observed by this frontend. Stays at
  /// the shard count for the lifetime of a resident server — 1 for a
  /// ServiceFrontend (the round-trip smoke asserts a thousand requests
  /// share one boot), N for a ShardRouter fronting N shards.
  int64_t service_boots = 1;
  int64_t requests_served = 0;
  int64_t errors = 0;
};

/// \brief Connection-server context for one dispatched request. A
/// ConnectionServer fills this per request so the stats method can
/// surface per-connection and aggregate serving counters; transports
/// without connections (the in-process loopback) leave it defaulted.
struct ConnectionContext {
  int64_t connections_active = 0;
  int64_t connections_accepted = 0;
  /// Requests read off the asking connection so far, including this one.
  int64_t connection_requests_served = 0;
  /// The serving connection's id (1-based per server; 0 = no connection,
  /// e.g. the in-process loopback). Together with
  /// connection_requests_served it forms the request's trace id.
  int64_t connection_id = 0;
};

/// \brief Answers the replication methods (`repl_fetch` / `repl_status` /
/// `repl_promote`). The api layer defines only this seam: concrete
/// implementations live in wot/replication (a ReplicationSource serving a
/// primary's artifacts, a ReplicaService reporting follower progress) and
/// are attached to a Frontend with set_replication_handler. A frontend
/// with no handler answers every replication method with a framed
/// UNIMPLEMENTED error, so the wire surface stays total either way.
///
/// Thread contract: all three methods may be called concurrently from any
/// serving thread.
class ReplicationHandler {
 public:
  virtual ~ReplicationHandler() = default;

  /// One artifact chunk at or after the caller's applied checkpoint.
  virtual Response HandleReplFetch(const ReplFetchRequest& request) = 0;
  /// Role, applied/source versions, failover count, per-replica progress.
  virtual Response HandleReplStatus(const ReplStatusRequest& request) = 0;
  /// Promote this follower to primary (no-op error on a primary).
  virtual Response HandleReplPromote(const ReplPromoteRequest& request) = 0;
};

/// \brief The serving interface: one implementation-agnostic dispatcher of
/// the versioned API. The envelope work — request/error counting, the
/// protocol-version gate, id echoing, NDJSON decode/encode, per-method
/// latency recording, the metrics method, the slow-request log — lives
/// here, so every implementation answers malformed input and version skew
/// with byte-identical frames; subclasses implement DispatchPayload only.
class Frontend {
 public:
  virtual ~Frontend() = default;

  /// \brief Executes one typed request. The response echoes request.id.
  Response Dispatch(const Request& request) {
    return Dispatch(request, ConnectionContext{});
  }
  Response Dispatch(const Request& request,
                    const ConnectionContext& connection);

  /// \brief Decodes one NDJSON frame, dispatches it, encodes the reply
  /// (no trailing newline). Total: any input yields a valid frame.
  std::string DispatchLine(std::string_view line) {
    return DispatchLine(line, ConnectionContext{});
  }
  std::string DispatchLine(std::string_view line,
                           const ConnectionContext& connection);

  /// \brief Decodes one v2 binary frame, dispatches it, encodes the binary
  /// reply — DispatchLine's twin for connections that negotiated the
  /// binary protocol. Total: any input yields a valid binary frame.
  std::string DispatchFrame(std::string_view frame) {
    return DispatchFrame(frame, ConnectionContext{});
  }
  std::string DispatchFrame(std::string_view frame,
                            const ConnectionContext& connection);

  /// Value snapshot of the counters (they advance concurrently).
  virtual FrontendStats stats() const;

  /// \brief The registry the envelope's own instrumentation records into.
  /// Valid for the frontend's lifetime.
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return registry_;
  }

  /// \brief Registers another registry to be merged into every scrape
  /// (a ConnectionServer's, a StorageManager's). Thread-safe; sources
  /// are scraped in registration order and never unregistered.
  void AddMetricsSource(
      std::shared_ptr<const telemetry::MetricRegistry> source)
      WOT_EXCLUDES(sources_mu_);

  /// \brief One merged scrape: the envelope's own registry plus every
  /// AddMetricsSource registry. ShardRouter widens this with its shard
  /// services' registries. Never blocks writers.
  virtual telemetry::MetricsSnapshot ScrapeMetrics() const
      WOT_EXCLUDES(sources_mu_);

  /// \brief The epoch stamped on metrics responses and slow-log lines:
  /// the published snapshot version (ServiceFrontend) or router-level
  /// commit epoch (ShardRouter).
  virtual uint64_t TelemetryEpoch() const { return 0; }

  /// \brief Any dispatch slower than \p millis emits one WARNING line
  /// with the request's trace id, method, shard and epoch (and counts on
  /// api.slow_requests). 0 logs every request; negative (the default)
  /// disables the log. Thread-safe.
  void set_slow_request_threshold_millis(int64_t millis) {
    slow_request_threshold_ns_.store(
        millis < 0 ? -1 : millis * 1'000'000, std::memory_order_relaxed);
  }

  /// \brief Attaches the handler that answers the replication methods;
  /// nullptr (the default) makes them answer UNIMPLEMENTED. \p handler
  /// must outlive the frontend (or a later set_replication_handler call).
  /// Thread-safe, like the slow-request threshold.
  void set_replication_handler(ReplicationHandler* handler) {
    replication_handler_.store(handler, std::memory_order_release);
  }
  ReplicationHandler* replication_handler() const {
    return replication_handler_.load(std::memory_order_acquire);
  }

 protected:
  Frontend();

  /// \brief Executes one payload. Called only with the supported protocol
  /// version; must be thread-safe. The base fills version/id and clears
  /// the payload of error responses afterwards. Never sees a
  /// MetricsRequest (the envelope answers those), but visitors still
  /// carry the handler for variant exhaustiveness.
  virtual Response DispatchPayload(const Request& request,
                                   const ConnectionContext& connection) = 0;

  /// Requests dispatched (including undecodable frames) and errors
  /// answered — registry counters (api.requests_served / api.errors)
  /// maintained by the base envelope, read back by stats(): the stats
  /// and metrics methods report THE SAME cells and can never disagree.
  telemetry::Counter* requests_served_;
  telemetry::Counter* errors_;

 private:
  /// \brief Answers the metrics method from ScrapeMetrics().
  Response DispatchMetrics() const;

  /// \brief Routes a replication method to the attached handler (or
  /// answers UNIMPLEMENTED when none is attached).
  Response DispatchReplication(const Request& request) const;

  void MaybeLogSlow(const Request& request,
                    const ConnectionContext& connection,
                    int64_t elapsed_ns) const;

  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* slow_requests_;
  /// Indexed by RequestPayload alternative (api.latency_ns.<method>).
  std::vector<telemetry::LatencyHistogram*> method_latency_ns_;
  std::atomic<int64_t> slow_request_threshold_ns_{-1};
  std::atomic<ReplicationHandler*> replication_handler_{nullptr};

  mutable Mutex sources_mu_;
  std::vector<std::shared_ptr<const telemetry::MetricRegistry>> sources_
      WOT_GUARDED_BY(sources_mu_);
};

/// \brief Dispatches requests against a TrustService it does not own.
class ServiceFrontend : public Frontend {
 public:
  /// \p service must outlive the frontend. The service's own metric
  /// registry (commit stage timings, WAL latencies recorded by an
  /// attached StorageManager) is registered as a scrape source.
  explicit ServiceFrontend(TrustService* service) : service_(service) {
    AddMetricsSource(service_->metrics_registry());
  }

  TrustService* service() const { return service_; }

  /// The published snapshot version.
  uint64_t TelemetryEpoch() const override {
    return service_->Snapshot()->version();
  }

 protected:
  Response DispatchPayload(const Request& request,
                           const ConnectionContext& connection) override;

 private:
  TrustService* service_;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_FRONTEND_H_
