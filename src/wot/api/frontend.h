// Frontend: the one interface every transport serves, and ServiceFrontend,
// its single-service implementation.
//
// A Frontend answers typed API requests (Dispatch) or raw NDJSON frames
// (DispatchLine: one byte line in, one structured frame out — total: any
// input yields a valid frame). Every transport funnels into it:
//
//   * wot_cli query       -> LoopbackClient -> Dispatch
//   * wot_cli --connect   -> SocketClient -> wot_served -> DispatchLine
//                            (or DispatchFrame on a binary connection)
//   * wot_served          -> the wot/server ConnectionServer, for
//                            stdin/stdout, --socket and --listen alike
//
// so responses are identical no matter how a request arrived (property-
// tested bit-for-bit). Implementations:
//
//   * ServiceFrontend (here)        — dispatches against ONE TrustService.
//   * ShardRouter (api/shard_router.h) — owns N TrustService shards and
//     serves the identical wire protocol by routing/scatter-gathering;
//     with one shard it is bit-identical to a ServiceFrontend.
//
// Thread contract: Dispatch/DispatchLine ARE thread-safe; one frontend is
// shared by every connection of a ConnectionServer. Queries resolve names
// on the published TrustSnapshot (its immutable NameIndex) and run
// lock-free; ingest and commit requests delegate to the TrustService's
// internally serialized write path. Consequence: a user name (or index)
// ingested but not yet committed is NOT resolvable by queries — it
// answers NOT_FOUND until a commit publishes the next snapshot. Ingest
// references, by contrast, resolve against the staged dataset inside the
// writer lock, so "ingest_user then ingest_review by that name" works
// without an intervening commit.
#ifndef WOT_API_FRONTEND_H_
#define WOT_API_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "wot/api/api.h"
#include "wot/service/trust_service.h"
#include "wot/service/trust_snapshot.h"

namespace wot {
namespace api {

/// \brief Resolves \p ref as a user name or decimal user index against the
/// published \p snapshot — the read path's one name-or-index lookup.
/// Touches only snapshot-owned immutable state (safe from any thread).
Result<UserId> ResolveUserRef(const TrustSnapshot& snapshot,
                              std::string_view ref);

/// \brief A bare error response around \p status (the dispatchers share
/// this so their error frames cannot diverge; the Frontend envelope
/// fills version/id afterwards).
inline Response ErrorResponse(ApiStatus status) {
  Response response;
  response.status = std::move(status);
  return response;
}

/// \brief Serving counters of one frontend (returned by the stats method).
struct FrontendStats {
  /// Boots of the backing service(s) observed by this frontend. Stays at
  /// the shard count for the lifetime of a resident server — 1 for a
  /// ServiceFrontend (the round-trip smoke asserts a thousand requests
  /// share one boot), N for a ShardRouter fronting N shards.
  int64_t service_boots = 1;
  int64_t requests_served = 0;
  int64_t errors = 0;
};

/// \brief Connection-server context for one dispatched request. A
/// ConnectionServer fills this per request so the stats method can
/// surface per-connection and aggregate serving counters; transports
/// without connections (the in-process loopback) leave it defaulted.
struct ConnectionContext {
  int64_t connections_active = 0;
  int64_t connections_accepted = 0;
  /// Requests read off the asking connection so far, including this one.
  int64_t connection_requests_served = 0;
};

/// \brief The serving interface: one implementation-agnostic dispatcher of
/// the versioned API. The envelope work — request/error counting, the
/// protocol-version gate, id echoing, NDJSON decode/encode — lives here,
/// so every implementation answers malformed input and version skew with
/// byte-identical frames; subclasses implement DispatchPayload only.
class Frontend {
 public:
  virtual ~Frontend() = default;

  /// \brief Executes one typed request. The response echoes request.id.
  Response Dispatch(const Request& request) {
    return Dispatch(request, ConnectionContext{});
  }
  Response Dispatch(const Request& request,
                    const ConnectionContext& connection);

  /// \brief Decodes one NDJSON frame, dispatches it, encodes the reply
  /// (no trailing newline). Total: any input yields a valid frame.
  std::string DispatchLine(std::string_view line) {
    return DispatchLine(line, ConnectionContext{});
  }
  std::string DispatchLine(std::string_view line,
                           const ConnectionContext& connection);

  /// \brief Decodes one v2 binary frame, dispatches it, encodes the binary
  /// reply — DispatchLine's twin for connections that negotiated the
  /// binary protocol. Total: any input yields a valid binary frame.
  std::string DispatchFrame(std::string_view frame) {
    return DispatchFrame(frame, ConnectionContext{});
  }
  std::string DispatchFrame(std::string_view frame,
                            const ConnectionContext& connection);

  /// Value snapshot of the counters (they advance concurrently).
  virtual FrontendStats stats() const;

 protected:
  /// \brief Executes one payload. Called only with the supported protocol
  /// version; must be thread-safe. The base fills version/id and clears
  /// the payload of error responses afterwards.
  virtual Response DispatchPayload(const Request& request,
                                   const ConnectionContext& connection) = 0;

  /// Requests dispatched (including undecodable frames) and errors
  /// answered, maintained by the base envelope.
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> errors_{0};
};

/// \brief Dispatches requests against a TrustService it does not own.
class ServiceFrontend : public Frontend {
 public:
  /// \p service must outlive the frontend.
  explicit ServiceFrontend(TrustService* service) : service_(service) {}

  TrustService* service() const { return service_; }

 protected:
  Response DispatchPayload(const Request& request,
                           const ConnectionContext& connection) override;

 private:
  TrustService* service_;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_FRONTEND_H_
