// ServiceFrontend: dispatches typed API requests against one TrustService.
//
// This is the single implementation of the API's semantics. Every
// transport funnels into Dispatch() (typed) or DispatchLine() (one NDJSON
// frame in, one frame out):
//
//   * wot_cli query       -> LoopbackClient -> Dispatch
//   * wot_cli --connect   -> SocketClient -> wot_served -> DispatchLine
//   * wot_served          -> DispatchLine over stdin/stdout or a socket
//
// so responses are identical no matter how a request arrived (property-
// tested bit-for-bit). A future shard router is just another owner of
// several frontends.
//
// DispatchLine is total: malformed input, unknown methods, wrong protocol
// versions, missing fields and out-of-range ids all produce a structured
// error response — it never crashes and never returns a non-JSON line.
//
// Thread contract: Dispatch/DispatchLine are NOT thread-safe (ingest and
// name resolution touch the writer-side staged dataset). Run one frontend
// per connection-serving thread; reads still serve lock-free snapshots
// underneath.
#ifndef WOT_API_FRONTEND_H_
#define WOT_API_FRONTEND_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "wot/api/api.h"
#include "wot/community/dataset.h"
#include "wot/service/trust_service.h"

namespace wot {
namespace api {

/// \brief Resolves \p ref as a user name or decimal user index against
/// \p dataset. The one name-or-index lookup shared by every API path.
/// Name resolution is a linear scan; the frontend's dispatch path uses
/// an incrementally maintained index instead (same semantics, O(1)).
Result<UserId> ResolveUserRef(const Dataset& dataset, std::string_view ref);

/// \brief Same semantics for categories.
Result<CategoryId> ResolveCategoryRef(const Dataset& dataset,
                                      std::string_view ref);

/// \brief Serving counters of one frontend (returned by the stats method).
struct FrontendStats {
  /// Boots of the backing service observed by this frontend. Stays 1 for
  /// the lifetime of a resident server — the round-trip smoke asserts a
  /// thousand requests share one boot.
  int64_t service_boots = 1;
  int64_t requests_served = 0;
  int64_t errors = 0;
};

/// \brief Dispatches requests against a TrustService it does not own.
class ServiceFrontend {
 public:
  /// \p service must outlive the frontend.
  explicit ServiceFrontend(TrustService* service) : service_(service) {}

  /// \brief Executes one typed request. The response echoes request.id.
  Response Dispatch(const Request& request);

  /// \brief Decodes one NDJSON frame, dispatches it, encodes the reply
  /// (no trailing newline). Total: any input yields a valid frame.
  std::string DispatchLine(std::string_view line);

  const FrontendStats& stats() const { return stats_; }
  TrustService* service() const { return service_; }

 private:
  Response DispatchPayload(const Request& request);

  /// ResolveUserRef semantics backed by name_index_ (users are dense and
  /// append-only with immutable names, so the index only ever needs to
  /// absorb the staged dataset's tail — even users ingested through a
  /// different frontend over the same service).
  Result<UserId> ResolveUser(std::string_view ref);

  TrustService* service_;
  FrontendStats stats_;
  std::unordered_map<std::string, UserId> name_index_;
  size_t indexed_users_ = 0;  // users absorbed into name_index_
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_FRONTEND_H_
