// ShardRouter: the v1 wire protocol served from N TrustService shards.
//
// A second Frontend implementation (next to ServiceFrontend) that owns N
// independent TrustService shards over a round-robin user partition
// (wot/service/dataset_shard.h) and routes/aggregates so clients keep
// speaking the UNCHANGED protocol in GLOBAL ids:
//
//   * trust / explain / user-ref resolution route to one shard: an index
//     ref g belongs to shard g % N (as local user g / N); a name ref is
//     probed across shard snapshots in shard order. A pair of users on
//     different shards answers NOT_FOUND — v1 derives trust within one
//     shard's user slice (trust localizes to co-rating neighborhoods).
//   * topk scatter-gathers: every shard hosting the source contributes
//     its local top-k list; the router maps hits to global ids, merges by
//     (score desc, global id asc) and truncates to k. Shards without the
//     source (including empty shards) contribute nothing.
//   * ingest routes by user: ingest_user round-robins (preserving the
//     dense global id space), reviews/ratings land on the writer's/
//     rater's shard (wire review id = local * N + shard), while
//     categories and objects fan out to every shard so the replicated
//     context id spaces stay aligned.
//   * commit fans out to every shard and bumps the router-level epoch
//     only after ALL shards swapped, so no reader of the epoch (stats,
//     commit responses) ever observes a torn cross-shard commit.
//   * stats aggregates: entity counts summed over shard snapshots,
//     service_boots = N, plus additive per-shard fields (`shards`,
//     `shard_service_boots`, `shard_requests_served`) when N >= 2.
//
// THE load-bearing invariant (property-tested in
// tests/api/shard_router_property_test.cc): a ShardRouter with ONE shard
// is bit-identical, response for response, to a bare ServiceFrontend over
// the same seed — including every error message and the stats frame.
// The router therefore never special-cases N == 1; the generic
// resolve/scatter/merge path must degenerate exactly.
//
// Thread contract: same as any Frontend. Queries are lock-free against
// per-shard published snapshots; ingest and commit serialize on a
// router-level mutex (global id assignment and cross-shard fan-outs must
// be atomic with respect to each other). The shards are router-owned:
// ingesting into a shard's TrustService directly would break the dense
// round-robin id invariant.
#ifndef WOT_API_SHARD_ROUTER_H_
#define WOT_API_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wot/api/frontend.h"
#include "wot/api/replica_handle.h"
#include "wot/community/dataset.h"
#include "wot/service/dataset_shard.h"
#include "wot/service/trust_service.h"
#include "wot/service/trust_snapshot.h"
#include "wot/util/thread_annotations.h"
#include "wot/util/thread_pool.h"

namespace wot {
namespace api {

class ShardRouter : public Frontend, private ReplicationHandler {
 public:
  /// \brief Slices \p seed across \p num_shards TrustService shards
  /// (round-robin by user index; see wot/service/dataset_shard.h) and
  /// boots one service per shard. Epoch 1 = every shard serving its
  /// initial snapshot.
  static Result<std::unique_ptr<ShardRouter>> Create(
      const Dataset& seed, size_t num_shards,
      const TrustServiceOptions& options = {});

  /// \brief Adopts already booted shard services (the durable recovery
  /// path: each shard came back from its own storage directory). The
  /// services must hold a round-robin user partition exactly as Create
  /// would have produced — i.e. they ARE the services a durable router
  /// persisted, in shard order. The router-level epoch starts at 1;
  /// call RestoreEpoch with the persisted value afterwards.
  static Result<std::unique_ptr<ShardRouter>> CreateFromServices(
      std::vector<std::unique_ptr<TrustService>> services);

  /// \brief Restores the router-level commit epoch after a recovery.
  /// Call before serving traffic.
  void RestoreEpoch(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

  /// \brief Installs a hook invoked after every commit that bumps the
  /// epoch (under the ingest lock, post-store — the value is already
  /// visible to readers). Durable servers persist the epoch from it.
  /// Call before serving traffic; pass nullptr to clear.
  void SetEpochCallback(std::function<void(uint64_t)> callback)
      WOT_EXCLUDES(ingest_mu_) {
    MutexLock lock(ingest_mu_);
    epoch_callback_ = std::move(callback);
  }

  size_t num_shards() const { return shards_.size(); }

  /// \brief Registers a replica of shard \p shard. Point reads and topk
  /// scatter legs load-balance across a shard's replicas whose applied
  /// version has reached the shard's read floor (the version the last
  /// epoch bump published — the staleness gate that keeps the commit-
  /// visibility guarantee); commits always go to the primary. The first
  /// AddReplica also attaches the router's own ReplicationHandler so
  /// `repl_status` reports the replica sets; a handler attached earlier
  /// (a sharded primary's ReplicationSource) is kept as the `repl_fetch`
  /// delegate, so the same process can feed its own followers. NOT
  /// thread-safe against serving traffic: register replicas before
  /// dispatching.
  void AddReplica(size_t shard, std::shared_ptr<ReplicaHandle> handle);

  /// \brief Copies of each commit required per shard — the primary plus
  /// replicas whose applied version reached the committed one — before
  /// the router epoch bump publishes the commit. The default 1 is
  /// satisfied by the primary alone and is property-tested bit-identical
  /// to the pre-replication router. Quorums above 1 + the configured
  /// replica count can never be met and fail every commit at the
  /// timeout. Thread-safe.
  void set_write_quorum(int64_t quorum) {
    write_quorum_.store(quorum < 1 ? 1 : quorum,
                        std::memory_order_relaxed);
  }

  /// \brief How long a commit waits for the write quorum before
  /// answering INTERNAL (without bumping the epoch — the commit is
  /// durable on the primaries and a later commit publishes it).
  void set_quorum_timeout_millis(int64_t millis) {
    quorum_timeout_millis_.store(millis < 0 ? 0 : millis,
                                 std::memory_order_relaxed);
  }

  /// \brief Forces commit fan-out and topk scatter onto the serial
  /// per-shard loop (the pre-pool behavior). A benchmarking / debugging
  /// knob — results are identical either way, only latency differs.
  /// Thread-safe.
  void set_parallel_fanout(bool enabled) {
    parallel_fanout_.store(enabled, std::memory_order_relaxed);
  }

  /// \brief Shard \p shard's service, for inspection (tests, stats
  /// tooling). Do NOT ingest through it — write traffic must go through
  /// Dispatch so the global id space stays dense.
  TrustService* shard_service(size_t shard) const {
    return shards_[shard]->service.get();
  }

  /// \brief The router-level commit epoch: 1 at boot, +1 per commit that
  /// published on at least one shard, bumped only after every shard
  /// swapped.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// service_boots aggregates the per-shard boots (= num_shards).
  FrontendStats stats() const override;

  /// The router-level commit epoch (stamped on metrics responses and
  /// slow-log lines).
  uint64_t TelemetryEpoch() const override { return epoch(); }

 protected:
  Response DispatchPayload(const Request& request,
                           const ConnectionContext& connection) override;

 private:
  /// One registered replica and the router's cached view of it (updated
  /// by Poll during quorum waits and staleness refreshes).
  struct ReplicaSlot {
    std::shared_ptr<ReplicaHandle> handle;
    std::atomic<uint64_t> applied{0};
    std::atomic<bool> healthy{true};
    /// replication.replica_applied.s<shard>.r<index> (router registry).
    telemetry::Gauge* applied_gauge = nullptr;
  };

  struct Shard {
    std::unique_ptr<TrustService> service;
    std::unique_ptr<ServiceFrontend> frontend;
    /// Requests the router dispatched to this shard (fan-outs count on
    /// every shard touched).
    std::atomic<int64_t> dispatches{0};
    /// Replicas of this shard (append-only, fixed before serving).
    std::vector<std::unique_ptr<ReplicaSlot>> replicas;
    /// The shard-local snapshot version the last router epoch bump
    /// published: replicas below it are too stale to serve reads.
    std::atomic<uint64_t> read_floor{0};
    /// Round-robin cursor over {replicas..., primary}.
    std::atomic<uint64_t> next_read{0};
  };

  /// A user ref resolved to its owning shard.
  struct ResolvedUser {
    size_t shard = 0;
    uint32_t local = 0;
    bool by_index = false;  // ref was a decimal global index
  };

  ShardRouter() = default;

  /// Resolves the router's own instruments (router.fanout_latency_ns,
  /// router.scatter_width) and registers every shard service's registry
  /// as a scrape source, so shard-level commit/WAL timings surface in
  /// the router's metrics responses. Both factories call it once the
  /// shard set is final.
  void InitTelemetry();

  using SnapshotSet =
      std::vector<std::shared_ptr<const TrustSnapshot>>;
  SnapshotSet LoadSnapshots() const;

  /// Resolves \p ref against the published shard snapshots: a decimal ref
  /// is range-checked against the summed user count and mapped by
  /// arithmetic; a name is probed shard by shard (first hit wins). Error
  /// statuses match ResolveUserRef byte for byte so one shard degenerates
  /// exactly.
  Result<ResolvedUser> ResolvePublished(const SnapshotSet& snapshots,
                                        std::string_view ref) const;

  /// The staged-side (ingest) counterpart, resolving against what the
  /// shards have staged.
  Result<ResolvedUser> ResolveStagedLocked(std::string_view ref)
      WOT_REQUIRES(ingest_mu_);

  /// Counts a routed request on \p shard and returns its frontend.
  ServiceFrontend* Touch(size_t shard);

  Response RouteTrustLike(const Request& request,
                          const ConnectionContext& connection,
                          std::string_view source_ref,
                          std::string_view target_ref);

  /// \brief Runs body(s) for every shard index, over the router pool when
  /// it exists (2+ shards), serially otherwise. Blocks until every
  /// iteration completed — per-call completion tracking, so concurrent
  /// dispatches never wait on each other's fan-outs.
  void RunOnShards(const std::function<void(size_t)>& body);

  /// \brief Picks an eligible replica of \p shard for one read, round-
  /// robin over {replicas, primary}: a replica whose cached (refreshed
  /// when stale) applied version has reached the shard's read floor and
  /// that is healthy. nullptr means "serve from the primary".
  ReplicaSlot* PickReplica(size_t shard);

  /// \brief One Poll() on \p slot, refreshing the cached applied version,
  /// health and the per-replica gauge.
  ReplicaProbe Probe(ReplicaSlot* slot);

  /// \brief Blocks until every shard's post-commit snapshot version has
  /// been applied by write_quorum copies (primary included), or the
  /// quorum timeout elapses. Records router.quorum_wait_ns. Immediate
  /// OK (no polls, no samples) when the quorum is 1.
  ApiStatus AwaitWriteQuorum();

  /// \brief Dispatches one shard-local read to an eligible replica,
  /// falling back to the primary on transport failure or replica error.
  Response DispatchShardRead(size_t shard, const Request& local,
                             const ConnectionContext& connection);

  // The router's ReplicationHandler face (attached by AddReplica):
  // repl_status reports the replica sets; repl_fetch forwards to the
  // delegate (the process's ReplicationSource) when one was attached
  // before the first AddReplica; promote belongs to replica processes.
  Response HandleReplFetch(const ReplFetchRequest& request) override;
  Response HandleReplStatus(const ReplStatusRequest& request) override;
  Response HandleReplPromote(const ReplPromoteRequest& request) override;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// The handler AddReplica displaced — the serving process's own
  /// ReplicationSource, which keeps answering repl_fetch through the
  /// router. Written only by AddReplica (before serving traffic).
  ReplicationHandler* fetch_delegate_ = nullptr;

  /// Fan-out workers (commit fan-out, topk scatter); null with one shard
  /// — the serial path is the bit-identity baseline.
  std::unique_ptr<ThreadPool> pool_;

  /// set_parallel_fanout: false pins RunOnShards to the serial loop.
  std::atomic<bool> parallel_fanout_{true};

  // Router-level instruments (resolved once in InitTelemetry; the base
  // registry outlives them).
  telemetry::LatencyHistogram* fanout_latency_ns_ = nullptr;
  telemetry::LatencyHistogram* scatter_width_ = nullptr;
  telemetry::LatencyHistogram* quorum_wait_ns_ = nullptr;
  telemetry::Counter* replica_reads_ = nullptr;

  std::atomic<int64_t> write_quorum_{1};
  std::atomic<int64_t> quorum_timeout_millis_{2000};
  /// Sleep slot for the quorum poll loop (nothing signals it; the wait
  /// is a bounded doze between polls).
  Mutex quorum_mu_;
  CondVar quorum_cv_;

  // Ingest state: guarded by ingest_mu_. The router is the sole authority
  // over the global user id space.
  Mutex ingest_mu_;
  int64_t staged_global_users_ WOT_GUARDED_BY(ingest_mu_) = 0;
  std::function<void(uint64_t)> epoch_callback_
      WOT_GUARDED_BY(ingest_mu_);

  std::atomic<uint64_t> epoch_{1};
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_SHARD_ROUTER_H_
