#include "wot/api/api.h"

namespace wot {
namespace api {

const char* ApiCodeName(ApiCode code) {
  switch (code) {
    case ApiCode::kOk:
      return "OK";
    case ApiCode::kNotFound:
      return "NOT_FOUND";
    case ApiCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ApiCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ApiCode::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

Result<ApiCode> ApiCodeFromName(std::string_view name) {
  for (ApiCode code :
       {ApiCode::kOk, ApiCode::kNotFound, ApiCode::kInvalidArgument,
        ApiCode::kUnimplemented, ApiCode::kInternal}) {
    if (name == ApiCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown ApiCode name '" +
                                 std::string(name) + "'");
}

std::string ApiStatus::ToString() const {
  if (ok()) return "OK";
  return std::string(ApiCodeName(code)) + ": " + message;
}

ApiStatus ApiStatus::FromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return Ok();
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
      return NotFound(status.message());
    case StatusCode::kInvalidArgument:
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return InvalidArgument(status.message());
    case StatusCode::kNotImplemented:
      return Unimplemented(status.message());
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kInternal:
      return Internal(status.message());
  }
  return Internal(status.message());
}

Status ToStatus(const ApiStatus& status) {
  switch (status.code) {
    case ApiCode::kOk:
      return Status::OK();
    case ApiCode::kNotFound:
      return Status::NotFound(status.message);
    case ApiCode::kInvalidArgument:
      return Status::InvalidArgument(status.message);
    case ApiCode::kUnimplemented:
      return Status::NotImplemented(status.message);
    case ApiCode::kInternal:
      return Status::Internal(status.message);
  }
  return Status::Internal(status.message);
}

namespace {

// Indexed by RequestPayload variant alternative.
const char* const kMethodNames[] = {
    "trust",         "topk",          "explain",      "ingest_user",
    "ingest_category", "ingest_object", "ingest_review", "ingest_rating",
    "commit",        "stats",         "metrics",      "repl_fetch",
    "repl_status",   "repl_promote",
};
static_assert(sizeof(kMethodNames) / sizeof(kMethodNames[0]) ==
                  std::variant_size_v<RequestPayload>,
              "method name table out of sync with RequestPayload");

}  // namespace

const char* MethodName(const RequestPayload& payload) {
  return kMethodNames[payload.index()];
}

const std::vector<std::string>& AllMethodNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const char* name : kMethodNames) v->push_back(name);
    return v;
  }();
  return *names;
}

}  // namespace api
}  // namespace wot
