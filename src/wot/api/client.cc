#include "wot/api/client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "wot/api/codec.h"

namespace wot {
namespace api {

Result<Response> LoopbackClient::Call(const Request& request) {
  Request stamped = request;
  if (stamped.id == 0) stamped.id = next_id_++;
  if (!through_codec_) {
    return frontend_->Dispatch(stamped);
  }
  Response response;
  ApiStatus decoded;
  if (protocol_ == WireProtocol::kBinary) {
    std::string reply =
        frontend_->DispatchFrame(EncodeRequestBinary(stamped));
    decoded = DecodeResponseBinary(reply, &response);
  } else {
    std::string reply_line =
        frontend_->DispatchLine(EncodeRequest(stamped));
    decoded = DecodeResponse(reply_line, &response);
  }
  if (!decoded.ok()) {
    return Status::Internal("undecodable loopback reply: " +
                            decoded.ToString());
  }
  return response;
}

Result<std::unique_ptr<SocketClient>> SocketClient::Connect(
    const std::string& socket_path, WireProtocol protocol) {
  WOT_ASSIGN_OR_RETURN(int fd, ConnectUnixSocket(socket_path));
  return std::unique_ptr<SocketClient>(new SocketClient(fd, protocol));
}

Result<std::unique_ptr<SocketClient>> SocketClient::ConnectTcp(
    const std::string& host_port, WireProtocol protocol) {
  WOT_ASSIGN_OR_RETURN(int fd, ConnectTcpSocket(host_port));
  return std::unique_ptr<SocketClient>(new SocketClient(fd, protocol));
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<std::string> SocketClient::NextFrame() {
  while (true) {
    if (std::optional<std::string> frame = frames_.NextFrame()) {
      return std::move(*frame);
    }
    if (frames_.faulted()) {
      return Status::IOError("undecodable server reply: " +
                             frames_.fault_message());
    }
    char chunk[16384];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      frames_.Append(std::string_view(chunk, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) {
      continue;
    }
    return Status::IOError(std::string("read(): ") +
                           std::strerror(errno));
  }
}

Result<Response> SocketClient::Call(const Request& request) {
  Request stamped = request;
  if (stamped.id == 0) stamped.id = next_id_++;
  Response response;
  ApiStatus decoded;
  if (protocol_ == WireProtocol::kBinary) {
    WOT_RETURN_IF_ERROR(SendAll(fd_, EncodeRequestBinary(stamped)));
    WOT_ASSIGN_OR_RETURN(std::string frame, NextFrame());
    decoded = DecodeResponseBinary(frame, &response);
  } else {
    WOT_RETURN_IF_ERROR(SendAll(fd_, EncodeRequest(stamped) + "\n"));
    std::string reply_line;
    WOT_ASSIGN_OR_RETURN(bool got_line, reader_.Next(&reply_line));
    if (!got_line) {
      return Status::IOError("server closed the connection");
    }
    decoded = DecodeResponse(reply_line, &response);
  }
  if (!decoded.ok()) {
    return Status::IOError("undecodable server reply: " +
                           decoded.ToString());
  }
  if (response.id != stamped.id) {
    return Status::IOError("response id " + std::to_string(response.id) +
                           " does not match request id " +
                           std::to_string(stamped.id));
  }
  return response;
}

}  // namespace api
}  // namespace wot
