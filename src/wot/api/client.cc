#include "wot/api/client.h"

#include <unistd.h>

#include <utility>

#include "wot/api/codec.h"

namespace wot {
namespace api {

Result<Response> LoopbackClient::Call(const Request& request) {
  Request stamped = request;
  if (stamped.id == 0) stamped.id = next_id_++;
  if (!through_codec_) {
    return frontend_->Dispatch(stamped);
  }
  std::string reply_line =
      frontend_->DispatchLine(EncodeRequest(stamped));
  Response response;
  ApiStatus decoded = DecodeResponse(reply_line, &response);
  if (!decoded.ok()) {
    return Status::Internal("undecodable loopback reply: " +
                            decoded.ToString());
  }
  return response;
}

Result<std::unique_ptr<SocketClient>> SocketClient::Connect(
    const std::string& socket_path) {
  WOT_ASSIGN_OR_RETURN(int fd, ConnectUnixSocket(socket_path));
  return std::unique_ptr<SocketClient>(new SocketClient(fd));
}

Result<std::unique_ptr<SocketClient>> SocketClient::ConnectTcp(
    const std::string& host_port) {
  WOT_ASSIGN_OR_RETURN(int fd, ConnectTcpSocket(host_port));
  return std::unique_ptr<SocketClient>(new SocketClient(fd));
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Response> SocketClient::Call(const Request& request) {
  Request stamped = request;
  if (stamped.id == 0) stamped.id = next_id_++;
  WOT_RETURN_IF_ERROR(SendAll(fd_, EncodeRequest(stamped) + "\n"));
  std::string reply_line;
  WOT_ASSIGN_OR_RETURN(bool got_line, reader_.Next(&reply_line));
  if (!got_line) {
    return Status::IOError("server closed the connection");
  }
  Response response;
  ApiStatus decoded = DecodeResponse(reply_line, &response);
  if (!decoded.ok()) {
    return Status::IOError("undecodable server reply: " +
                           decoded.ToString());
  }
  if (response.id != stamped.id) {
    return Status::IOError("response id " + std::to_string(response.id) +
                           " does not match request id " +
                           std::to_string(stamped.id));
  }
  return response;
}

}  // namespace api
}  // namespace wot
