// The versioned request/response API of the trust serving layer.
//
// Every way of talking to a TrustService — the wot_cli `query` subcommand,
// the resident wot_served binary, examples, benches and (eventually) shard
// routers — goes through the typed messages defined here. A transport is
// then just a way of moving Request/Response values around: in-process
// (api/client.h LoopbackClient), or NDJSON frames over a byte stream
// (api/codec.h + wot_served).
//
// Protocol shape:
//   * A Request is an envelope {version, id, payload}; the payload variant
//     selects the method. `id` is an opaque client-chosen correlator echoed
//     back in the response (pipelining-friendly).
//   * A Response is an envelope {version, id, status, payload}. On error
//     the payload is empty and `status` carries an ApiCode + message; on
//     success the payload variant matches the request's method.
//   * `version` is the wire protocol version (kProtocolVersion). A server
//     answers a frame with any other version with INVALID_ARGUMENT rather
//     than guessing — see docs/wire_protocol.md for the evolution rules.
//
// Users in queries are referenced by *name or decimal index* (one string
// field), resolved server-side by ResolveUserRef so every client shares
// identical lookup semantics.
#ifndef WOT_API_API_H_
#define WOT_API_API_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "wot/util/result.h"
#include "wot/util/status.h"

namespace wot {
namespace api {

/// \brief The wire protocol version this build speaks.
inline constexpr int64_t kProtocolVersion = 1;

/// \brief Machine-readable outcome class of one API call.
enum class ApiCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kUnimplemented = 3,
  kInternal = 4,
};

/// \brief Stable wire name of \p code ("OK", "NOT_FOUND", ...).
const char* ApiCodeName(ApiCode code);

/// \brief Inverse of ApiCodeName; error for unknown names.
Result<ApiCode> ApiCodeFromName(std::string_view name);

/// \brief Outcome of one API call: an ApiCode plus human-readable detail.
struct ApiStatus {
  ApiCode code = ApiCode::kOk;
  std::string message;

  friend bool operator==(const ApiStatus&, const ApiStatus&) = default;

  bool ok() const { return code == ApiCode::kOk; }
  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  static ApiStatus Ok() { return {}; }
  static ApiStatus NotFound(std::string msg) {
    return {ApiCode::kNotFound, std::move(msg)};
  }
  static ApiStatus InvalidArgument(std::string msg) {
    return {ApiCode::kInvalidArgument, std::move(msg)};
  }
  static ApiStatus Unimplemented(std::string msg) {
    return {ApiCode::kUnimplemented, std::move(msg)};
  }
  static ApiStatus Internal(std::string msg) {
    return {ApiCode::kInternal, std::move(msg)};
  }
  /// \brief Maps a library Status onto the API's coarser code space
  /// (NotFound/OutOfRange -> NOT_FOUND, NotImplemented -> UNIMPLEMENTED,
  /// argument/precondition errors -> INVALID_ARGUMENT, rest -> INTERNAL).
  static ApiStatus FromStatus(const Status& status);
};

/// \brief The client-side inverse of ApiStatus::FromStatus: maps an API
/// error back onto the library's Status space so callers can propagate it
/// with the usual WOT_RETURN_IF_ERROR machinery. OK maps to OK.
Status ToStatus(const ApiStatus& status);

// ---------------------------------------------------------------------------
// Request payloads (one struct per method).

/// \brief trust: the derived degree of trust T-hat(source -> target).
struct TrustQuery {
  std::string source;  ///< truster, by name or decimal index
  std::string target;  ///< trustee, by name or decimal index

  friend bool operator==(const TrustQuery&, const TrustQuery&) = default;
};

/// \brief topk: the k most trusted users as seen by source.
struct TopKQuery {
  std::string source;
  int64_t k = 10;

  friend bool operator==(const TopKQuery&, const TopKQuery&) = default;
};

/// \brief explain: per-category breakdown of one derived degree.
struct ExplainQuery {
  std::string source;
  std::string target;

  friend bool operator==(const ExplainQuery&, const ExplainQuery&) = default;
};

/// \brief ingest_user: register a new community member.
struct IngestUser {
  std::string name;

  friend bool operator==(const IngestUser&, const IngestUser&) = default;
};

/// \brief ingest_category: register a new topic context.
struct IngestCategory {
  std::string name;

  friend bool operator==(const IngestCategory&, const IngestCategory&) = default;
};

/// \brief ingest_object: register a reviewable item under a category
/// (referenced by name or decimal index).
struct IngestObject {
  std::string category;
  std::string name;

  friend bool operator==(const IngestObject&, const IngestObject&) = default;
};

/// \brief ingest_review: record that \p writer reviewed object \p object.
struct IngestReview {
  std::string writer;  ///< name or decimal index
  int64_t object = -1;

  friend bool operator==(const IngestReview&, const IngestReview&) = default;
};

/// \brief ingest_rating: record rating \p value by \p rater on a review.
struct IngestRating {
  std::string rater;  ///< name or decimal index
  int64_t review = -1;
  double value = 0.0;

  friend bool operator==(const IngestRating&, const IngestRating&) = default;
};

/// \brief commit: derive staged activity and publish a new snapshot.
struct CommitRequest {
  friend bool operator==(const CommitRequest&, const CommitRequest&) = default;
};

/// \brief stats: serving counters and snapshot shape.
struct StatsRequest {
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

/// \brief metrics: a scrape of the serving telemetry registry (counters,
/// gauges, latency-histogram summaries; docs/observability.md catalogs
/// the names). Additive v1 method — appended at the END of the payload
/// variant so every older wire code is unchanged.
struct MetricsRequest {
  friend bool operator==(const MetricsRequest&,
                         const MetricsRequest&) = default;
};

/// \brief repl_fetch: pull the next replication artifact from a durable
/// primary (docs/replication.md). A replica that has applied nothing
/// (applied_version 0, or a checkpoint the source no longer retains WALs
/// for) receives snapshot-segment chunks addressed by \p offset; a
/// caught-up replica receives WAL-delta record batches starting strictly
/// after its applied commit version. Additive v1 method — appended at
/// the END of the payload variant so every older wire code is unchanged.
struct ReplFetchRequest {
  /// Which shard's artifacts to pull (0 on an unsharded primary; shard
  /// directory index under --shards).
  int64_t shard = 0;
  /// The replica's checkpoint: the last commit version it fully applied
  /// (0 = nothing, bootstrap me).
  uint64_t applied_version = 0;
  /// Byte offset into the segment file during a chunked bootstrap
  /// (ignored for delta fetches).
  uint64_t offset = 0;

  friend bool operator==(const ReplFetchRequest&,
                         const ReplFetchRequest&) = default;
};

/// \brief repl_status: the answering server's replication role and
/// applied/source versions (additive v1 method).
struct ReplStatusRequest {
  friend bool operator==(const ReplStatusRequest&,
                         const ReplStatusRequest&) = default;
};

/// \brief repl_promote: promote a follower to primary (stop pulling,
/// finish applying what is already fetched, accept writes). Answers the
/// post-promotion repl_status. Additive v1 method.
struct ReplPromoteRequest {
  friend bool operator==(const ReplPromoteRequest&,
                         const ReplPromoteRequest&) = default;
};

using RequestPayload =
    std::variant<TrustQuery, TopKQuery, ExplainQuery, IngestUser,
                 IngestCategory, IngestObject, IngestReview, IngestRating,
                 CommitRequest, StatsRequest, MetricsRequest,
                 ReplFetchRequest, ReplStatusRequest, ReplPromoteRequest>;

/// \brief One API call: protocol version, client correlator, method payload.
struct Request {
  int64_t version = kProtocolVersion;
  int64_t id = 0;
  RequestPayload payload;

  friend bool operator==(const Request&, const Request&) = default;
};

/// \brief The wire method name selected by \p payload ("trust", "topk",
/// "explain", "ingest_user", ..., "commit", "stats").
const char* MethodName(const RequestPayload& payload);

/// \brief All wire method names, in variant order (for fuzzing and docs).
const std::vector<std::string>& AllMethodNames();

// ---------------------------------------------------------------------------
// Response payloads.

/// \brief One entry of a top-k listing.
struct ScoredUserEntry {
  uint32_t user = 0;  ///< dense user index
  std::string name;
  double score = 0.0;

  friend bool operator==(const ScoredUserEntry&,
                         const ScoredUserEntry&) = default;
};

struct TrustResult {
  double trust = 0.0;
  /// Resolved display names of the query's refs (clients may have
  /// addressed users by index).
  std::string source_name;
  std::string target_name;
  uint64_t snapshot_version = 0;

  friend bool operator==(const TrustResult&, const TrustResult&) = default;
};

struct TopKResult {
  std::string source_name;
  std::vector<ScoredUserEntry> trustees;
  uint64_t snapshot_version = 0;

  friend bool operator==(const TopKResult&, const TopKResult&) = default;
};

/// \brief One eq.-5 term of an explain breakdown.
struct ExplainTermResult {
  uint32_t category = 0;
  std::string category_name;
  double affiliation = 0.0;
  double expertise = 0.0;
  double contribution = 0.0;

  friend bool operator==(const ExplainTermResult&,
                         const ExplainTermResult&) = default;
};

struct ExplainResult {
  double trust = 0.0;
  double affinity_sum = 0.0;
  std::string source_name;
  std::string target_name;
  std::vector<ExplainTermResult> terms;
  uint64_t snapshot_version = 0;

  friend bool operator==(const ExplainResult&, const ExplainResult&) = default;
};

/// \brief Result of any ingest_* method: the dense id assigned to the new
/// entity (-1 for ingest_rating, which creates no id).
struct IngestResult {
  int64_t assigned_id = -1;

  friend bool operator==(const IngestResult&, const IngestResult&) = default;
};

/// \brief What a commit did. Timing is deliberately NOT on the wire so
/// response streams are byte-deterministic (diffable in tests).
struct CommitResult {
  uint64_t snapshot_version = 0;
  bool published = false;
  int64_t categories_recomputed = 0;
  int64_t affiliation_rows_recomputed = 0;
  int64_t postings_rebuilt = 0;

  friend bool operator==(const CommitResult&, const CommitResult&) = default;
};

struct StatsResult {
  uint64_t snapshot_version = 0;
  int64_t users = 0;
  int64_t categories = 0;
  int64_t reviews = 0;
  int64_t ratings = 0;
  /// How many times the backing service was booted over the lifetime of
  /// the frontend answering this request. A resident server stays at 1 no
  /// matter how many requests it serves — the smoke test asserts this.
  int64_t service_boots = 0;
  /// Requests dispatched by this frontend so far, including this one.
  /// Under a concurrent connection server this aggregates ALL
  /// connections (the frontend is shared).
  int64_t requests_served = 0;
  // Connection-server counters (all 0 only when the request did not
  // arrive through a ConnectionServer, i.e. in-process loopback —
  // wot_served's stdin/stdout mode runs on the connection server too).
  /// Connections currently open on the serving ConnectionServer.
  int64_t connections_active = 0;
  /// Connections accepted over the server's lifetime.
  int64_t connections_accepted = 0;
  /// Requests read off the connection that asked, including this one.
  int64_t connection_requests_served = 0;
  // Shard-router counters (additive v1 fields; 0/empty — and absent on
  // the wire — when the answering frontend serves unsharded, i.e. a
  // ServiceFrontend or a single-shard ShardRouter).
  /// Number of TrustService shards behind the answering ShardRouter.
  int64_t shards = 0;
  /// Per-shard boot counts (always 1 per shard today; their sum is the
  /// aggregate `service_boots`).
  std::vector<int64_t> shard_service_boots;
  /// Per-shard routed-request counts: how many times the router touched
  /// each shard (point queries, scatter-gather fan-outs, ingest, commit).
  std::vector<int64_t> shard_requests_served;
  // Durability counters (additive v1 fields; all 0 — and absent on the
  // NDJSON wire — when the server runs without --data-dir, keeping
  // non-durable responses byte-identical to pre-storage servers). A
  // sharded durable server aggregates: sums over shards, except
  // segment_epoch which is the minimum across shards (the weakest
  // durable snapshot bound).
  /// Records in the live write-ahead log file.
  int64_t wal_records = 0;
  /// Bytes in the live write-ahead log file.
  int64_t wal_bytes = 0;
  /// Version of the newest durable snapshot segment (>= 1 when durable).
  int64_t segment_epoch = 0;
  /// Bytes of that segment file.
  int64_t segment_bytes = 0;
  /// WAL records replayed by the most recent recovery (0 = fresh boot).
  int64_t recovered_replayed_records = 0;

  friend bool operator==(const StatsResult&, const StatsResult&) = default;
};

/// \brief One counter or gauge in a metrics scrape.
struct MetricValue {
  std::string name;
  int64_t value = 0;

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// \brief One latency histogram's summary in a metrics scrape. Latency
/// histograms record nanoseconds (their names end in `_ns`); value
/// histograms (batch sizes, scatter widths) record raw counts. The
/// quantiles are log-bucket estimates (<= 25% relative error).
struct MetricHistogramValue {
  std::string name;
  int64_t count = 0;  ///< samples recorded
  int64_t sum = 0;    ///< sum of recorded values
  int64_t min = 0;    ///< smallest sample, to bucket resolution
  int64_t max = 0;    ///< largest sample, to bucket resolution
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  friend bool operator==(const MetricHistogramValue&,
                         const MetricHistogramValue&) = default;
};

/// \brief A point-in-time scrape of the answering frontend's telemetry:
/// every source it can see (its own registry, the connection server's,
/// each shard's), merged. All three vectors are sorted by name.
struct MetricsResult {
  /// The published snapshot version (commit epoch when sharded) the
  /// scrape is attributable to.
  uint64_t snapshot_version = 0;
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<MetricHistogramValue> histograms;

  friend bool operator==(const MetricsResult&,
                         const MetricsResult&) = default;
};

/// \brief Replication roles reported by repl_status.
enum class ReplRole : int64_t {
  kPrimary = 0,  ///< serves writes and ships artifacts
  kReplica = 1,  ///< follows a primary (promotable)
  kRouter = 2,   ///< fronts shards; reports its replica sets
};

/// \brief Kinds of replication artifact a repl_fetch can return.
enum class ReplArtifactKind : int64_t {
  kNone = 0,     ///< replica is caught up; nothing to ship
  kSegment = 1,  ///< one chunk of a snapshot segment file (bootstrap)
  kWalDelta = 2, ///< CRC-framed WAL records ending at a commit boundary
};

/// \brief One replication artifact (docs/replication.md). For a segment
/// chunk, `base_version == target_version` is the segment's version,
/// `offset`/`total_bytes` address the chunk within the file, and the
/// replica is bootstrapped once it has all `total_bytes`. For a WAL
/// delta, `base_version` is the checkpoint the records apply on top of
/// and `target_version` the commit version reached after applying them
/// all. `source_version` always reports the primary's current published
/// version so replicas can compute their lag.
struct ReplFetchResult {
  int64_t kind = 0;  ///< a ReplArtifactKind
  uint64_t base_version = 0;
  uint64_t target_version = 0;
  uint64_t source_version = 0;
  uint64_t offset = 0;
  uint64_t total_bytes = 0;
  std::string payload;  ///< raw artifact bytes (empty for kNone)

  friend bool operator==(const ReplFetchResult&,
                         const ReplFetchResult&) = default;
};

/// \brief One replica as seen by the server answering repl_status (a
/// ShardRouter reports its configured replica set per shard; a plain
/// primary or follower reports none).
struct ReplReplicaInfo {
  int64_t shard = 0;
  std::string address;
  uint64_t applied_version = 0;
  /// 0 = unreachable on last contact, 1 = healthy.
  int64_t healthy = 0;

  friend bool operator==(const ReplReplicaInfo&,
                         const ReplReplicaInfo&) = default;
};

/// \brief The answering server's replication role and progress.
struct ReplStatusResult {
  /// 0 = primary/source, 1 = follower, 2 = promoted follower.
  int64_t role = 0;
  /// Last commit version fully applied locally (a primary reports its
  /// published version).
  uint64_t applied_version = 0;
  /// The source's published version at last contact (equals
  /// applied_version on a primary).
  uint64_t source_version = 0;
  /// Promotions performed by this process.
  int64_t failovers = 0;
  std::vector<ReplReplicaInfo> replicas;

  friend bool operator==(const ReplStatusResult&,
                         const ReplStatusResult&) = default;
};

using ResponsePayload =
    std::variant<std::monostate, TrustResult, TopKResult, ExplainResult,
                 IngestResult, CommitResult, StatsResult, MetricsResult,
                 ReplFetchResult, ReplStatusResult>;

/// \brief One API reply. `id` echoes the request's correlator (0 when the
/// frame was too malformed to extract one).
struct Response {
  int64_t version = kProtocolVersion;
  int64_t id = 0;
  ApiStatus status;
  ResponsePayload payload;

  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace api
}  // namespace wot

#endif  // WOT_API_API_H_
