#include "wot/api/frontend.h"

#include <limits>
#include <memory>
#include <utility>

#include "wot/api/codec.h"
#include "wot/util/string_util.h"

namespace wot {
namespace api {

Result<UserId> ResolveUserRef(const Dataset& dataset,
                              std::string_view ref) {
  if (ref.empty()) {
    return Status::InvalidArgument("empty user reference");
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= dataset.num_users()) {
      return Status::NotFound("user index " + std::string(ref) +
                              " out of range [0, " +
                              std::to_string(dataset.num_users()) + ")");
    }
    return UserId(static_cast<uint32_t>(index));
  }
  for (const User& user : dataset.users()) {
    if (user.name == ref) {
      return user.id;
    }
  }
  return Status::NotFound("no user named '" + std::string(ref) + "'");
}

Result<CategoryId> ResolveCategoryRef(const Dataset& dataset,
                                      std::string_view ref) {
  if (ref.empty()) {
    return Status::InvalidArgument("empty category reference");
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= dataset.num_categories()) {
      return Status::NotFound(
          "category index " + std::string(ref) + " out of range [0, " +
          std::to_string(dataset.num_categories()) + ")");
    }
    return CategoryId(static_cast<uint32_t>(index));
  }
  return dataset.FindCategory(std::string(ref));
}

namespace {

Response ErrorResponse(ApiStatus status) {
  Response response;
  response.status = std::move(status);
  return response;
}

// Checks an int64 wire id against an entity count before narrowing.
ApiStatus CheckWireId(int64_t value, size_t count, const char* what) {
  if (value < 0 || static_cast<uint64_t>(value) >= count) {
    return ApiStatus::NotFound(std::string(what) + " id " +
                               std::to_string(value) +
                               " out of range [0, " +
                               std::to_string(count) + ")");
  }
  return ApiStatus::Ok();
}

}  // namespace

Result<UserId> ServiceFrontend::ResolveUser(std::string_view ref) {
  const Dataset& dataset = service_->staged_dataset();
  if (ref.empty()) {
    return Status::InvalidArgument("empty user reference");
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= dataset.num_users()) {
      return Status::NotFound("user index " + std::string(ref) +
                              " out of range [0, " +
                              std::to_string(dataset.num_users()) + ")");
    }
    return UserId(static_cast<uint32_t>(index));
  }
  // Absorb users appended since the last lookup. emplace keeps the first
  // id under a duplicated name, matching the linear scan's semantics.
  const std::vector<User>& users = dataset.users();
  for (; indexed_users_ < users.size(); ++indexed_users_) {
    name_index_.emplace(users[indexed_users_].name,
                        users[indexed_users_].id);
  }
  auto it = name_index_.find(std::string(ref));
  if (it == name_index_.end()) {
    return Status::NotFound("no user named '" + std::string(ref) + "'");
  }
  return it->second;
}

Response ServiceFrontend::Dispatch(const Request& request) {
  ++stats_.requests_served;
  Response response = DispatchPayload(request);
  response.version = kProtocolVersion;
  response.id = request.id;
  if (!response.status.ok()) {
    ++stats_.errors;
    response.payload = std::monostate{};
  }
  return response;
}

Response ServiceFrontend::DispatchPayload(const Request& request) {
  if (request.version != kProtocolVersion) {
    return ErrorResponse(ApiStatus::InvalidArgument(
        "unsupported protocol version " + std::to_string(request.version) +
        " (this server speaks v" + std::to_string(kProtocolVersion) +
        ")"));
  }
  const Dataset& dataset = service_->staged_dataset();

  struct Visitor {
    ServiceFrontend& frontend;
    const Dataset& dataset;

    Response operator()(const TrustQuery& q) {
      Result<UserId> source = frontend.ResolveUser(q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      Result<UserId> target = frontend.ResolveUser(q.target);
      if (!target.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(target.status()));
      }
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      TrustResult result;
      result.trust = snapshot->Trust(source.ValueOrDie().index(),
                                     target.ValueOrDie().index());
      result.source_name = dataset.user(source.ValueOrDie()).name;
      result.target_name = dataset.user(target.ValueOrDie()).name;
      result.snapshot_version = snapshot->version();
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const TopKQuery& q) {
      if (q.k <= 0) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("'k' must be positive"));
      }
      Result<UserId> source = frontend.ResolveUser(q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      TopKResult result;
      result.source_name = dataset.user(source.ValueOrDie()).name;
      result.snapshot_version = snapshot->version();
      for (const ScoredUser& scored :
           snapshot->TopK(source.ValueOrDie().index(),
                          static_cast<size_t>(q.k))) {
        result.trustees.push_back(
            {scored.user, dataset.user(UserId(scored.user)).name,
             scored.score});
      }
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const ExplainQuery& q) {
      Result<UserId> source = frontend.ResolveUser(q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      Result<UserId> target = frontend.ResolveUser(q.target);
      if (!target.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(target.status()));
      }
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      TrustExplanation explanation = snapshot->ExplainTrust(
          source.ValueOrDie().index(), target.ValueOrDie().index());
      ExplainResult result;
      result.trust = explanation.trust;
      result.affinity_sum = explanation.affinity_sum;
      result.source_name = dataset.user(source.ValueOrDie()).name;
      result.target_name = dataset.user(target.ValueOrDie()).name;
      result.snapshot_version = snapshot->version();
      for (const TrustContribution& term : explanation.terms) {
        result.terms.push_back(
            {term.category,
             dataset.category(CategoryId(term.category)).name,
             term.affiliation, term.expertise, term.contribution});
      }
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const IngestUser& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("user name must not be empty"));
      }
      UserId id = frontend.service_->AddUser(q.name);
      Response response;
      response.payload = IngestResult{static_cast<int64_t>(id.value())};
      return response;
    }

    Response operator()(const IngestCategory& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("category name must not be empty"));
      }
      CategoryId id = frontend.service_->AddCategory(q.name);
      Response response;
      response.payload = IngestResult{static_cast<int64_t>(id.value())};
      return response;
    }

    Response operator()(const IngestObject& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("object name must not be empty"));
      }
      Result<CategoryId> category =
          ResolveCategoryRef(dataset, q.category);
      if (!category.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(category.status()));
      }
      Result<ObjectId> id =
          frontend.service_->AddObject(category.ValueOrDie(), q.name);
      if (!id.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(id.status()));
      }
      Response response;
      response.payload =
          IngestResult{static_cast<int64_t>(id.ValueOrDie().value())};
      return response;
    }

    Response operator()(const IngestReview& q) {
      Result<UserId> writer = frontend.ResolveUser(q.writer);
      if (!writer.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(writer.status()));
      }
      ApiStatus range =
          CheckWireId(q.object, dataset.num_objects(), "object");
      if (!range.ok()) return ErrorResponse(std::move(range));
      Result<ReviewId> id = frontend.service_->AddReview(
          writer.ValueOrDie(), ObjectId(static_cast<uint32_t>(q.object)));
      if (!id.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(id.status()));
      }
      Response response;
      response.payload =
          IngestResult{static_cast<int64_t>(id.ValueOrDie().value())};
      return response;
    }

    Response operator()(const IngestRating& q) {
      Result<UserId> rater = frontend.ResolveUser(q.rater);
      if (!rater.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(rater.status()));
      }
      ApiStatus range =
          CheckWireId(q.review, dataset.num_reviews(), "review");
      if (!range.ok()) return ErrorResponse(std::move(range));
      Status status = frontend.service_->AddRating(
          rater.ValueOrDie(), ReviewId(static_cast<uint32_t>(q.review)),
          q.value);
      if (!status.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(status));
      }
      Response response;
      response.payload = IngestResult{-1};
      return response;
    }

    Response operator()(const CommitRequest&) {
      Result<TrustService::CommitStats> stats =
          frontend.service_->Commit();
      if (!stats.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(stats.status()));
      }
      const TrustService::CommitStats& s = stats.ValueOrDie();
      Response response;
      response.payload = CommitResult{
          s.version, s.published,
          static_cast<int64_t>(s.categories_recomputed),
          static_cast<int64_t>(s.affiliation_rows_recomputed),
          static_cast<int64_t>(s.postings_rebuilt)};
      return response;
    }

    Response operator()(const StatsRequest&) {
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      StatsResult result;
      result.snapshot_version = snapshot->version();
      result.users = static_cast<int64_t>(snapshot->num_users());
      result.categories =
          static_cast<int64_t>(snapshot->num_categories());
      result.reviews = static_cast<int64_t>(snapshot->num_reviews());
      result.ratings = static_cast<int64_t>(snapshot->num_ratings());
      result.service_boots = frontend.stats_.service_boots;
      result.requests_served = frontend.stats_.requests_served;
      Response response;
      response.payload = result;
      return response;
    }
  };

  return std::visit(Visitor{*this, dataset}, request.payload);
}

std::string ServiceFrontend::DispatchLine(std::string_view line) {
  Request request;
  ApiStatus decode_status = DecodeRequest(line, &request);
  if (!decode_status.ok()) {
    ++stats_.requests_served;
    ++stats_.errors;
    Response response;
    response.id = request.id;
    response.status = std::move(decode_status);
    return EncodeResponse(response);
  }
  return EncodeResponse(Dispatch(request));
}

}  // namespace api
}  // namespace wot
