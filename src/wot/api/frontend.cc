#include "wot/api/frontend.h"

#include <memory>
#include <utility>
#include <variant>

#include "wot/api/binary_codec.h"
#include "wot/api/codec.h"
#include "wot/telemetry/timed.h"
#include "wot/telemetry/trace.h"
#include "wot/util/logging.h"
#include "wot/util/string_util.h"

namespace wot {
namespace api {

Result<UserId> ResolveUserRef(const TrustSnapshot& snapshot,
                              std::string_view ref) {
  if (ref.empty()) {
    return Status::InvalidArgument(kEmptyUserRefMessage);
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= snapshot.num_users()) {
      return Status::NotFound(
          UserIndexOutOfRangeMessage(ref, snapshot.num_users()));
    }
    return UserId(static_cast<uint32_t>(index));
  }
  std::optional<uint32_t> id = snapshot.user_names().Find(ref);
  if (!id.has_value()) {
    return Status::NotFound(NoUserNamedMessage(ref));
  }
  return UserId(*id);
}

Frontend::Frontend() : registry_(std::make_shared<telemetry::MetricRegistry>()) {
  requests_served_ = registry_->counter("api.requests_served");
  errors_ = registry_->counter("api.errors");
  slow_requests_ = registry_->counter("api.slow_requests");
  method_latency_ns_.reserve(AllMethodNames().size());
  for (const std::string& method : AllMethodNames()) {
    method_latency_ns_.push_back(
        registry_->histogram("api.latency_ns." + method));
  }
}

FrontendStats Frontend::stats() const {
  FrontendStats stats;
  stats.requests_served = requests_served_->Value();
  stats.errors = errors_->Value();
  return stats;
}

void Frontend::AddMetricsSource(
    std::shared_ptr<const telemetry::MetricRegistry> source) {
  MutexLock lock(sources_mu_);
  sources_.push_back(std::move(source));
}

telemetry::MetricsSnapshot Frontend::ScrapeMetrics() const {
  telemetry::MetricsSnapshot merged = registry_->Scrape();
  MutexLock lock(sources_mu_);
  for (const std::shared_ptr<const telemetry::MetricRegistry>& source :
       sources_) {
    merged.MergeFrom(source->Scrape());
  }
  return merged;
}

Response Frontend::DispatchMetrics() const {
  telemetry::MetricsSnapshot snapshot = ScrapeMetrics();
  MetricsResult result;
  result.snapshot_version = TelemetryEpoch();
  result.counters.reserve(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    result.counters.push_back({name, value});
  }
  result.gauges.reserve(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    result.gauges.push_back({name, value});
  }
  result.histograms.reserve(snapshot.histograms.size());
  for (const telemetry::HistogramSnapshot& h : snapshot.histograms) {
    MetricHistogramValue v;
    v.name = h.name;
    v.count = h.count;
    v.sum = h.sum;
    v.min = h.ApproxMin();
    v.max = h.ApproxMax();
    v.p50 = h.Quantile(0.5);
    v.p90 = h.Quantile(0.9);
    v.p99 = h.Quantile(0.99);
    v.p999 = h.Quantile(0.999);
    result.histograms.push_back(std::move(v));
  }
  Response response;
  response.payload = std::move(result);
  return response;
}

Response Frontend::DispatchReplication(const Request& request) const {
  ReplicationHandler* handler = replication_handler();
  if (handler == nullptr) {
    return ErrorResponse(ApiStatus::Unimplemented(
        "replication is not enabled on this server"));
  }
  if (const auto* fetch = std::get_if<ReplFetchRequest>(&request.payload)) {
    return handler->HandleReplFetch(*fetch);
  }
  if (const auto* status =
          std::get_if<ReplStatusRequest>(&request.payload)) {
    return handler->HandleReplStatus(*status);
  }
  return handler->HandleReplPromote(
      std::get<ReplPromoteRequest>(request.payload));
}

void Frontend::MaybeLogSlow(const Request& request,
                            const ConnectionContext& connection,
                            int64_t elapsed_ns) const {
  const int64_t threshold_ns =
      slow_request_threshold_ns_.load(std::memory_order_relaxed);
  if (threshold_ns < 0 || elapsed_ns < threshold_ns) return;
  slow_requests_->Increment();
  WOT_LOG(Warning) << "slow request trace="
                   << telemetry::TraceId(
                          connection.connection_id,
                          connection.connection_requests_served)
                   << " method=" << MethodName(request.payload)
                   << " elapsed_ms=" << elapsed_ns / 1e6
                   << " shard=" << telemetry::DispatchShard()
                   << " epoch=" << TelemetryEpoch();
}

Response Frontend::Dispatch(const Request& request,
                            const ConnectionContext& connection) {
  requests_served_->Increment();
#ifndef WOT_TELEMETRY_OFF
  telemetry::ClearDispatchShard();
  telemetry::Timer timer;
#endif
  Response response;
  if (request.version != kProtocolVersion) {
    response.status = ApiStatus::InvalidArgument(
        "unsupported protocol version " + std::to_string(request.version) +
        " (this server speaks v" + std::to_string(kProtocolVersion) + ")");
  } else if (std::holds_alternative<MetricsRequest>(request.payload)) {
    // The envelope answers metrics itself so every implementation serves
    // the method uniformly (and a scrape can never deadlock a subclass).
    response = DispatchMetrics();
  } else if (std::holds_alternative<ReplFetchRequest>(request.payload) ||
             std::holds_alternative<ReplStatusRequest>(request.payload) ||
             std::holds_alternative<ReplPromoteRequest>(request.payload)) {
    // Replication methods are likewise envelope-routed: every frontend
    // answers them (UNIMPLEMENTED without an attached handler), so the
    // wire surface stays total whether or not replication is enabled.
    response = DispatchReplication(request);
  } else {
    response = DispatchPayload(request, connection);
  }
#ifndef WOT_TELEMETRY_OFF
  const int64_t elapsed_ns =
      timer.RecordInto(method_latency_ns_[request.payload.index()]);
  MaybeLogSlow(request, connection, elapsed_ns);
#endif
  response.version = kProtocolVersion;
  response.id = request.id;
  if (!response.status.ok()) {
    errors_->Increment();
    response.payload = std::monostate{};
  }
  return response;
}

std::string Frontend::DispatchLine(std::string_view line,
                                   const ConnectionContext& connection) {
  Request request;
  ApiStatus decode_status = DecodeRequest(line, &request);
  if (!decode_status.ok()) {
    requests_served_->Increment();
    errors_->Increment();
    Response response;
    response.id = request.id;
    response.status = std::move(decode_status);
    return EncodeResponse(response);
  }
  return EncodeResponse(Dispatch(request, connection));
}

std::string Frontend::DispatchFrame(std::string_view frame,
                                    const ConnectionContext& connection) {
  Request request;
  ApiStatus decode_status = DecodeRequestBinary(frame, &request);
  if (!decode_status.ok()) {
    requests_served_->Increment();
    errors_->Increment();
    Response response;
    response.id = request.id;
    response.status = std::move(decode_status);
    return EncodeResponseBinary(response);
  }
  return EncodeResponseBinary(Dispatch(request, connection));
}

Response ServiceFrontend::DispatchPayload(
    const Request& request, const ConnectionContext& connection) {
  struct Visitor {
    ServiceFrontend& frontend;
    const ConnectionContext& connection;

    Response operator()(const TrustQuery& q) {
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      Result<UserId> source = ResolveUserRef(*snapshot, q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      Result<UserId> target = ResolveUserRef(*snapshot, q.target);
      if (!target.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(target.status()));
      }
      TrustResult result;
      result.trust = snapshot->Trust(source.ValueOrDie().index(),
                                     target.ValueOrDie().index());
      result.source_name =
          snapshot->user_names().name(source.ValueOrDie().index());
      result.target_name =
          snapshot->user_names().name(target.ValueOrDie().index());
      result.snapshot_version = snapshot->version();
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const TopKQuery& q) {
      if (q.k <= 0) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("'k' must be positive"));
      }
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      Result<UserId> source = ResolveUserRef(*snapshot, q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      TopKResult result;
      result.source_name =
          snapshot->user_names().name(source.ValueOrDie().index());
      result.snapshot_version = snapshot->version();
      for (const ScoredUser& scored :
           snapshot->TopK(source.ValueOrDie().index(),
                          static_cast<size_t>(q.k))) {
        result.trustees.push_back(
            {scored.user, snapshot->user_names().name(scored.user),
             scored.score});
      }
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const ExplainQuery& q) {
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      Result<UserId> source = ResolveUserRef(*snapshot, q.source);
      if (!source.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(source.status()));
      }
      Result<UserId> target = ResolveUserRef(*snapshot, q.target);
      if (!target.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(target.status()));
      }
      TrustExplanation explanation = snapshot->ExplainTrust(
          source.ValueOrDie().index(), target.ValueOrDie().index());
      ExplainResult result;
      result.trust = explanation.trust;
      result.affinity_sum = explanation.affinity_sum;
      result.source_name =
          snapshot->user_names().name(source.ValueOrDie().index());
      result.target_name =
          snapshot->user_names().name(target.ValueOrDie().index());
      result.snapshot_version = snapshot->version();
      for (const TrustContribution& term : explanation.terms) {
        result.terms.push_back(
            {term.category, snapshot->category_names()[term.category],
             term.affiliation, term.expertise, term.contribution});
      }
      Response response;
      response.payload = std::move(result);
      return response;
    }

    Response operator()(const IngestUser& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("user name must not be empty"));
      }
      UserId id = frontend.service_->AddUser(q.name);
      Response response;
      response.payload = IngestResult{static_cast<int64_t>(id.value())};
      return response;
    }

    Response operator()(const IngestCategory& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("category name must not be empty"));
      }
      CategoryId id = frontend.service_->AddCategory(q.name);
      Response response;
      response.payload = IngestResult{static_cast<int64_t>(id.value())};
      return response;
    }

    Response operator()(const IngestObject& q) {
      if (q.name.empty()) {
        return ErrorResponse(
            ApiStatus::InvalidArgument("object name must not be empty"));
      }
      Result<ObjectId> id =
          frontend.service_->AddObjectByRef(q.category, q.name);
      if (!id.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(id.status()));
      }
      Response response;
      response.payload =
          IngestResult{static_cast<int64_t>(id.ValueOrDie().value())};
      return response;
    }

    Response operator()(const IngestReview& q) {
      Result<ReviewId> id =
          frontend.service_->AddReviewByRef(q.writer, q.object);
      if (!id.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(id.status()));
      }
      Response response;
      response.payload =
          IngestResult{static_cast<int64_t>(id.ValueOrDie().value())};
      return response;
    }

    Response operator()(const IngestRating& q) {
      Status status =
          frontend.service_->AddRatingByRef(q.rater, q.review, q.value);
      if (!status.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(status));
      }
      Response response;
      response.payload = IngestResult{-1};
      return response;
    }

    Response operator()(const CommitRequest&) {
      Result<TrustService::CommitStats> stats =
          frontend.service_->Commit();
      if (!stats.ok()) {
        return ErrorResponse(ApiStatus::FromStatus(stats.status()));
      }
      const TrustService::CommitStats& s = stats.ValueOrDie();
      Response response;
      response.payload = CommitResult{
          s.version, s.published,
          static_cast<int64_t>(s.categories_recomputed),
          static_cast<int64_t>(s.affiliation_rows_recomputed),
          static_cast<int64_t>(s.postings_rebuilt)};
      return response;
    }

    Response operator()(const StatsRequest&) {
      std::shared_ptr<const TrustSnapshot> snapshot =
          frontend.service_->Snapshot();
      StatsResult result;
      result.snapshot_version = snapshot->version();
      result.users = static_cast<int64_t>(snapshot->num_users());
      result.categories =
          static_cast<int64_t>(snapshot->num_categories());
      result.reviews = static_cast<int64_t>(snapshot->num_reviews());
      result.ratings = static_cast<int64_t>(snapshot->num_ratings());
      result.service_boots = 1;
      result.requests_served = frontend.requests_served_->Value();
      result.connections_active = connection.connections_active;
      result.connections_accepted = connection.connections_accepted;
      result.connection_requests_served =
          connection.connection_requests_served;
      DurabilityStats durability =
          frontend.service_->durability_stats();
      result.wal_records = durability.wal_records;
      result.wal_bytes = durability.wal_bytes;
      result.segment_epoch = durability.segment_epoch;
      result.segment_bytes = durability.segment_bytes;
      result.recovered_replayed_records =
          durability.recovered_replayed_records;
      Response response;
      response.payload = result;
      return response;
    }

    Response operator()(const MetricsRequest&) {
      // Unreachable: the base envelope answers metrics before
      // DispatchPayload. Kept for variant exhaustiveness.
      return ErrorResponse(ApiStatus::Internal(
          "metrics request reached DispatchPayload"));
    }

    Response operator()(const ReplFetchRequest&) {
      // Unreachable: the base envelope routes replication methods to the
      // attached ReplicationHandler. Kept for variant exhaustiveness.
      return ErrorResponse(ApiStatus::Internal(
          "repl_fetch request reached DispatchPayload"));
    }

    Response operator()(const ReplStatusRequest&) {
      return ErrorResponse(ApiStatus::Internal(
          "repl_status request reached DispatchPayload"));
    }

    Response operator()(const ReplPromoteRequest&) {
      return ErrorResponse(ApiStatus::Internal(
          "repl_promote request reached DispatchPayload"));
    }
  };

  return std::visit(Visitor{*this, connection}, request.payload);
}

}  // namespace api
}  // namespace wot
