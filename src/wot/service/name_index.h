// NameIndex: an immutable, structurally shared user-name directory.
//
// Every published TrustSnapshot owns one, so ResolveUserRef runs entirely
// against the snapshot — concurrent readers never touch the writer-side
// staged dataset. Users are dense, append-only and carry immutable names,
// which makes the index *persistent* in the functional sense: Extend()
// reuses the previous snapshot's chunks and only indexes the appended
// tail, so per-commit cost tracks the number of NEW users, not the
// community size.
//
// Internally the index is a short run of immutable chunks (oldest first),
// merged LSM-style: a new chunk absorbs trailing chunks no larger than
// itself, keeping the chunk count O(log U) and total merge work
// O(U log U) across any append schedule. Lookup scans chunks oldest
// first, so a duplicated name resolves to the FIRST id that carried it —
// identical to the historical linear-scan semantics.
//
// Thread contract: a NameIndex is deeply immutable after construction;
// any number of threads may call Find()/name() concurrently.
#ifndef WOT_SERVICE_NAME_INDEX_H_
#define WOT_SERVICE_NAME_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wot/community/entities.h"

namespace wot {

/// \brief Immutable name->id / id->name directory over a dense user range.
class NameIndex {
 public:
  /// \brief The empty index (size 0). Always the same shared instance.
  static std::shared_ptr<const NameIndex> Empty();

  /// \brief An index over names [0, users.size()), reusing \p base's
  /// chunks (which must cover a prefix of \p users — i.e. base->size() <=
  /// users.size()). Returns \p base itself when nothing was appended.
  /// \p base may be null (treated as empty).
  static std::shared_ptr<const NameIndex> Extend(
      const std::shared_ptr<const NameIndex>& base,
      const std::vector<User>& users);

  /// Users covered: ids [0, size()).
  size_t size() const { return size_; }

  /// \brief The smallest user id whose name is \p name, or nullopt.
  std::optional<uint32_t> Find(std::string_view name) const;

  /// \brief The name of user \p index (must be < size()).
  const std::string& name(size_t index) const;

  /// Structural introspection for tests: stays O(log size) under any
  /// append schedule.
  size_t num_chunks() const { return chunks_.size(); }

 private:
  // One immutable sorted-run of the index: names [first, first + count)
  // plus a map keyed by views into its own (address-stable) name storage.
  struct Chunk {
    size_t first = 0;
    std::vector<std::string> names;
    std::unordered_map<std::string_view, uint32_t> by_name;
  };

  NameIndex() = default;

  static std::shared_ptr<const Chunk> BuildChunk(
      size_t first, const std::vector<User>& users, size_t end);

  std::vector<std::shared_ptr<const Chunk>> chunks_;  // oldest first
  size_t size_ = 0;
};

}  // namespace wot

#endif  // WOT_SERVICE_NAME_INDEX_H_
