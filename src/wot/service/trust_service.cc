#include "wot/service/trust_service.h"

#include <algorithm>
#include <utility>

#include "wot/core/affiliation.h"
#include "wot/telemetry/timed.h"
#include "wot/util/logging.h"
#include "wot/util/string_util.h"

namespace wot {

std::string UserIndexOutOfRangeMessage(std::string_view ref,
                                       size_t num_users) {
  return "user index " + std::string(ref) + " out of range [0, " +
         std::to_string(num_users) + ")";
}

std::string NoUserNamedMessage(std::string_view ref) {
  return "no user named '" + std::string(ref) + "'";
}

std::string ReviewIdOutOfRangeMessage(int64_t review, int64_t bound) {
  return "review id " + std::to_string(review) + " out of range [0, " +
         std::to_string(bound) + ")";
}

TrustService::TrustService(const TrustServiceOptions& options)
    : options_(options),
      metrics_(std::make_shared<telemetry::MetricRegistry>()),
      commits_(metrics_->counter("service.commits")),
      commit_ns_(metrics_->histogram("service.commit_ns")),
      commit_update_ns_(metrics_->histogram("service.commit_update_ns")),
      commit_affiliation_ns_(
          metrics_->histogram("service.commit_affiliation_ns")),
      commit_postings_ns_(
          metrics_->histogram("service.commit_postings_ns")),
      commit_publish_ns_(metrics_->histogram("service.commit_publish_ns")),
      commit_dirty_categories_(
          metrics_->histogram("service.commit_dirty_categories")),
      builder_(options.builder),
      engine_(options.reputation) {}

Result<std::unique_ptr<TrustService>> TrustService::Create(
    const Dataset& seed, const TrustServiceOptions& options) {
  std::unique_ptr<TrustService> service(new TrustService(options));
  // No other thread can reference the service yet, but the replay writes
  // builder_ state, so take the writer lock for the whole boot — it is
  // uncontended, and the analysis then proves the accesses like any
  // other write path.
  MutexLock lock(service->writer_mu_);
  // Replay the seed in storage order: the builder assigns ids densely in
  // insertion order, so every id of the seed stays valid in the service.
  for (const auto& category : seed.categories()) {
    service->builder_.AddCategory(category.name);
  }
  for (const auto& user : seed.users()) {
    service->builder_.AddUser(user.name);
  }
  for (const auto& object : seed.objects()) {
    Result<ObjectId> id =
        service->builder_.AddObject(object.category, object.name);
    if (!id.ok()) return id.status();
  }
  for (const auto& review : seed.reviews()) {
    Result<ReviewId> id =
        service->builder_.AddReview(review.writer, review.object);
    if (!id.ok()) return id.status();
  }
  for (const auto& rating : seed.ratings()) {
    WOT_RETURN_IF_ERROR(
        service->builder_.AddRating(rating.rater, rating.review,
                                    rating.value));
  }
  for (const auto& statement : seed.trust_statements()) {
    WOT_RETURN_IF_ERROR(
        service->builder_.AddTrust(statement.source, statement.target));
  }

  WOT_ASSIGN_OR_RETURN(CommitStats stats, service->CommitLocked());
  (void)stats;
  return service;
}

Result<std::unique_ptr<TrustService>> TrustService::CreateEmpty(
    const TrustServiceOptions& options) {
  return Create(Dataset(), options);
}

Result<std::unique_ptr<TrustService>> TrustService::Restore(
    Dataset dataset, ReputationResult reputation, DenseMatrix affiliation,
    std::vector<ExpertisePostingPtr> postings, uint64_t version,
    const TrustServiceOptions& options) {
  if (version == 0) {
    return Status::InvalidArgument("snapshot version must be >= 1");
  }
  std::unique_ptr<TrustService> service(new TrustService(options));
  MutexLock lock(service->writer_mu_);
  // Adopt the persisted dataset wholesale instead of replaying it
  // through the per-entity ingest path: ids are already dense in column
  // order (the segment loader went through FromValidatedColumns), the
  // per-row policy rules are re-checked inside AdoptValidated, and the
  // ingest dedup keys are rebuilt lazily on the first mutation. This is
  // what makes durable boot O(load) instead of O(rebuild).
  WOT_RETURN_IF_ERROR(service->builder_.AdoptValidated(std::move(dataset)));

  const Dataset& staged = service->builder_.StagedView();
  if (affiliation.rows() != staged.num_users() ||
      affiliation.cols() != staged.num_categories()) {
    return Status::InvalidArgument(
        "affiliation shape does not match the restored dataset");
  }
  if (!postings.empty() && postings.size() != staged.num_categories()) {
    return Status::InvalidArgument(
        "postings do not cover the restored categories");
  }
  for (const ExpertisePostingPtr& posting : postings) {
    if (posting == nullptr) {
      return Status::InvalidArgument("null expertise posting");
    }
  }
  // Seed the incremental engine with the persisted converged state (it
  // validates the reputation shapes) so the next Commit() recomputes only
  // categories dirtied after this restore point. The index-free overload
  // counts the activity fingerprints off the columns directly.
  WOT_RETURN_IF_ERROR(service->engine_.Seed(staged, reputation));

  // Rebuilding the name directory as one chunk preserves lookup
  // semantics exactly (first id wins under duplicate names either way).
  std::shared_ptr<const NameIndex> user_names =
      NameIndex::Extend(NameIndex::Empty(), staged.users());
  auto category_names = std::make_shared<std::vector<std::string>>();
  category_names->reserve(staged.num_categories());
  for (const Category& category : staged.categories()) {
    category_names->push_back(category.name);
  }

  std::shared_ptr<const TrustSnapshot> snapshot = TrustSnapshot::Assemble(
      std::move(reputation), std::move(affiliation), std::move(postings),
      std::move(user_names), std::move(category_names), version,
      staged.num_reviews(), staged.num_ratings());
  service->published_.store(snapshot, std::memory_order_release);
  service->published_users_ = staged.num_users();
  service->published_categories_ = staged.num_categories();
  service->published_reviews_ = staged.num_reviews();
  service->published_ratings_ = staged.num_ratings();
  service->next_version_ = version + 1;
  return service;
}

UserId TrustService::AddUser(std::string name) {
  MutexLock lock(writer_mu_);
  UserId id = builder_.AddUser(std::move(name));
  if (mutation_log_ != nullptr) {
    mutation_log_->LogAddUser(builder_.StagedView().users().back().name);
  }
  return id;
}

CategoryId TrustService::AddCategory(std::string name) {
  MutexLock lock(writer_mu_);
  CategoryId id = builder_.AddCategory(std::move(name));
  if (mutation_log_ != nullptr) {
    mutation_log_->LogAddCategory(
        builder_.StagedView().categories().back().name);
  }
  return id;
}

Result<ObjectId> TrustService::AddObject(CategoryId category,
                                         std::string name) {
  MutexLock lock(writer_mu_);
  Result<ObjectId> id = builder_.AddObject(category, std::move(name));
  if (id.ok() && mutation_log_ != nullptr) {
    mutation_log_->LogAddObject(category.value(),
                                builder_.StagedView().objects().back().name);
  }
  return id;
}

Result<ReviewId> TrustService::AddReview(UserId writer, ObjectId object) {
  MutexLock lock(writer_mu_);
  Result<ReviewId> id = builder_.AddReview(writer, object);
  if (id.ok()) {
    MarkDirty(writer);
    if (mutation_log_ != nullptr) {
      mutation_log_->LogAddReview(writer.value(), object.value());
    }
  }
  return id;
}

Status TrustService::AddRating(UserId rater, ReviewId review, double value) {
  MutexLock lock(writer_mu_);
  Status status = builder_.AddRating(rater, review, value);
  if (status.ok()) {
    MarkDirty(rater);
    if (mutation_log_ != nullptr) {
      mutation_log_->LogAddRating(rater.value(), review.value(), value);
    }
  }
  return status;
}

Result<UserId> TrustService::ResolveStagedUserRef(std::string_view ref) {
  MutexLock lock(writer_mu_);
  return ResolveStagedUserLocked(ref);
}

Result<UserId> TrustService::ResolveStagedUserLocked(std::string_view ref) {
  const Dataset& staged = builder_.StagedView();
  if (ref.empty()) {
    return Status::InvalidArgument(kEmptyUserRefMessage);
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 || static_cast<size_t>(index) >= staged.num_users()) {
      return Status::NotFound(
          UserIndexOutOfRangeMessage(ref, staged.num_users()));
    }
    return UserId(static_cast<uint32_t>(index));
  }
  const std::vector<User>& users = staged.users();
  for (; staged_indexed_users_ < users.size(); ++staged_indexed_users_) {
    staged_name_index_.emplace(users[staged_indexed_users_].name,
                               users[staged_indexed_users_].id);
  }
  auto it = staged_name_index_.find(std::string(ref));
  if (it == staged_name_index_.end()) {
    return Status::NotFound(NoUserNamedMessage(ref));
  }
  return it->second;
}

Result<CategoryId> TrustService::ResolveStagedCategoryLocked(
    std::string_view ref) {
  const Dataset& staged = builder_.StagedView();
  if (ref.empty()) {
    return Status::InvalidArgument("empty category reference");
  }
  Result<int64_t> as_index = ParseInt64(ref);
  if (as_index.ok()) {
    int64_t index = as_index.ValueOrDie();
    if (index < 0 ||
        static_cast<size_t>(index) >= staged.num_categories()) {
      return Status::NotFound(
          "category index " + std::string(ref) + " out of range [0, " +
          std::to_string(staged.num_categories()) + ")");
    }
    return CategoryId(static_cast<uint32_t>(index));
  }
  return staged.FindCategory(std::string(ref));
}

Result<CategoryId> TrustService::ResolveStagedCategoryRef(
    std::string_view ref) {
  MutexLock lock(writer_mu_);
  return ResolveStagedCategoryLocked(ref);
}

Result<ObjectId> TrustService::AddObjectByRef(std::string_view category_ref,
                                              std::string name) {
  MutexLock lock(writer_mu_);
  WOT_ASSIGN_OR_RETURN(CategoryId category,
                       ResolveStagedCategoryLocked(category_ref));
  Result<ObjectId> id = builder_.AddObject(category, std::move(name));
  if (id.ok() && mutation_log_ != nullptr) {
    mutation_log_->LogAddObject(category.value(),
                                builder_.StagedView().objects().back().name);
  }
  return id;
}

Result<ReviewId> TrustService::AddReviewByRef(std::string_view writer_ref,
                                              int64_t object) {
  MutexLock lock(writer_mu_);
  WOT_ASSIGN_OR_RETURN(UserId writer, ResolveStagedUserLocked(writer_ref));
  if (object < 0 || static_cast<uint64_t>(object) >=
                        builder_.StagedView().num_objects()) {
    return Status::NotFound(
        "object id " + std::to_string(object) + " out of range [0, " +
        std::to_string(builder_.StagedView().num_objects()) + ")");
  }
  Result<ReviewId> id =
      builder_.AddReview(writer, ObjectId(static_cast<uint32_t>(object)));
  if (id.ok()) {
    MarkDirty(writer);
    if (mutation_log_ != nullptr) {
      mutation_log_->LogAddReview(writer.value(),
                                  static_cast<uint32_t>(object));
    }
  }
  return id;
}

Status TrustService::AddRatingByRef(std::string_view rater_ref,
                                    int64_t review, double value) {
  MutexLock lock(writer_mu_);
  WOT_ASSIGN_OR_RETURN(UserId rater, ResolveStagedUserLocked(rater_ref));
  if (review < 0 || static_cast<uint64_t>(review) >=
                        builder_.StagedView().num_reviews()) {
    return Status::NotFound(ReviewIdOutOfRangeMessage(
        review,
        static_cast<int64_t>(builder_.StagedView().num_reviews())));
  }
  Status status = builder_.AddRating(
      rater, ReviewId(static_cast<uint32_t>(review)), value);
  if (status.ok()) {
    MarkDirty(rater);
    if (mutation_log_ != nullptr) {
      mutation_log_->LogAddRating(rater.value(),
                                  static_cast<uint32_t>(review), value);
    }
  }
  return status;
}

void TrustService::MarkDirty(UserId user) {
  if (user.index() >= dirty_users_.size()) {
    dirty_users_.resize(user.index() + 1, false);
  }
  dirty_users_[user.index()] = true;
}

Result<TrustService::CommitStats> TrustService::Commit() {
  MutexLock lock(writer_mu_);
  return CommitLocked();
}

Result<TrustService::CommitStats> TrustService::CommitLocked() {
  telemetry::Timer timer;
  CommitStats stats;
  const Dataset& staged = builder_.StagedView();
  std::shared_ptr<const TrustSnapshot> prev =
      published_.load(std::memory_order_acquire);

  if (prev != nullptr && staged.num_users() == published_users_ &&
      staged.num_categories() == published_categories_ &&
      staged.num_reviews() == published_reviews_ &&
      staged.num_ratings() == published_ratings_) {
    // Nothing derivable changed (at most new reviewless objects): the
    // serving snapshot stays as is. The log still sees the commit so a
    // batched-fsync WAL flushes before the ack.
    stats.version = prev->version();
    stats.elapsed_millis = timer.ElapsedMillis();
    if (mutation_log_ != nullptr) {
      WOT_RETURN_IF_ERROR(mutation_log_->LogCommit(
          stats.version, /*published=*/false, prev, staged));
    }
    return stats;
  }

  DatasetIndices indices(staged);

  // Step 1: dirty categories only.
  {
    WOT_TIMED(commit_update_ns_);
    WOT_RETURN_IF_ERROR(engine_.Update(staged, indices));
  }
  const std::vector<size_t>& dirty_categories =
      engine_.last_recomputed_categories();
  stats.categories_recomputed = dirty_categories.size();
  commit_dirty_categories_->Record(
      static_cast<int64_t>(dirty_categories.size()));
  // The snapshot owns an independent copy so later Updates cannot mutate
  // published state behind readers' backs.
  ReputationResult reputation = engine_.result();

  // Step 2: refresh only the affiliation rows of users whose own activity
  // changed; everyone else keeps their previous row (zero-padded for new
  // categories, where their counts are still zero).
  const size_t num_users = staged.num_users();
  const size_t num_categories = staged.num_categories();
  const size_t prev_users = prev != nullptr ? prev->num_users() : 0;
  DenseMatrix affiliation(num_users, num_categories, 0.0);
  {
    WOT_TIMED(commit_affiliation_ns_);
    for (size_t u = 0; u < num_users; ++u) {
      const bool dirty =
          u >= prev_users || (u < dirty_users_.size() && dirty_users_[u]);
      if (dirty) {
        ComputeAffiliationRow(staged, indices,
                              UserId(static_cast<uint32_t>(u)),
                              affiliation.Row(u));
        ++stats.affiliation_rows_recomputed;
      } else {
        auto src = prev->affiliation().Row(u);
        std::copy(src.begin(), src.end(), affiliation.Row(u).begin());
      }
    }
  }

  // Step 3 inputs: rebuild postings for dirty categories; clean categories
  // share the previous snapshot's postings (their expertise column is
  // unchanged — new users carry zero expertise there and postings omit
  // zeros).
  std::vector<ExpertisePostingPtr> postings;
  if (options_.build_postings) {
    WOT_TIMED(commit_postings_ns_);
    postings.resize(num_categories);
    std::vector<bool> category_dirty(num_categories, false);
    for (size_t c : dirty_categories) {
      category_dirty[c] = true;
    }
    static const std::vector<ExpertisePostingPtr> kNoPostings;
    const std::vector<ExpertisePostingPtr>& prev_postings =
        prev != nullptr ? prev->deriver().postings() : kNoPostings;
    for (size_t c = 0; c < num_categories; ++c) {
      if (!category_dirty[c] && c < prev_postings.size()) {
        postings[c] = prev_postings[c];
      } else {
        postings[c] =
            TrustDeriver::BuildCategoryPosting(reputation.expertise, c);
        ++stats.postings_rebuilt;
      }
    }
  }

  // Name directory: extend the previous snapshot's persistent index with
  // the appended user tail (shared wholesale when no users were added),
  // and reshare category names unless categories grew.
  std::shared_ptr<const NameIndex> user_names = NameIndex::Extend(
      prev != nullptr ? prev->shared_user_names() : NameIndex::Empty(),
      staged.users());
  std::shared_ptr<const std::vector<std::string>> category_names;
  if (prev != nullptr &&
      prev->category_names().size() == staged.num_categories()) {
    category_names = prev->shared_category_names();
  } else {
    auto names = std::make_shared<std::vector<std::string>>();
    names->reserve(staged.num_categories());
    for (const Category& category : staged.categories()) {
      names->push_back(category.name);
    }
    category_names = std::move(names);
  }

  std::shared_ptr<const TrustSnapshot> snapshot;
  {
    WOT_TIMED(commit_publish_ns_);
    snapshot = TrustSnapshot::Assemble(
        std::move(reputation), std::move(affiliation), std::move(postings),
        std::move(user_names), std::move(category_names), next_version_++,
        staged.num_reviews(), staged.num_ratings());
    published_.store(snapshot, std::memory_order_release);
  }

  published_users_ = staged.num_users();
  published_categories_ = staged.num_categories();
  published_reviews_ = staged.num_reviews();
  published_ratings_ = staged.num_ratings();
  std::fill(dirty_users_.begin(), dirty_users_.end(), false);

  stats.version = snapshot->version();
  stats.published = true;
  commits_->Increment();
  stats.elapsed_millis = timer.RecordInto(commit_ns_) / 1e6;
  WOT_LOG(Info) << "published trust snapshot v" << stats.version << " ("
                << stats.categories_recomputed << " categories, "
                << stats.affiliation_rows_recomputed
                << " affiliation rows, " << stats.postings_rebuilt
                << " postings recomputed) in " << stats.elapsed_millis
                << " ms";
  if (mutation_log_ != nullptr) {
    WOT_RETURN_IF_ERROR(mutation_log_->LogCommit(
        stats.version, /*published=*/true, snapshot, staged));
  }
  return stats;
}

}  // namespace wot
