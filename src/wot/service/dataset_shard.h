// Shard-local dataset slicing: the data side of serving one community
// from N TrustService shards (see wot/api/shard_router.h).
//
// Users are partitioned ROUND-ROBIN by their global index: global user g
// lives on shard g % N as shard-local user g / N. The scheme is chosen so
// the global id space stays dense under router-driven ingest (the router
// assigns global ids in order, so every shard's local ids stay dense and
// the global<->local maps are pure arithmetic — no directory to keep
// consistent). Categories and objects are REPLICATED to every shard with
// identical ids: they are context, not participants, and replication
// keeps cross-shard id spaces aligned so the router can fan object and
// category ingest out without translation.
//
// Reviews live on their writer's shard (renumbered densely per shard);
// ratings live on their rater's shard and are kept only when the rated
// review lives there too. A seed rating whose rater and review-writer
// land on different shards is DROPPED: per-shard reputation derives trust
// within one user slice (the paper's trust computation localizes to
// co-rating neighborhoods; see docs/wire_protocol.md, "Sharded serving").
// Trust statements follow the same rule. Slicing with num_shards == 1
// reproduces the seed dataset exactly.
#ifndef WOT_SERVICE_DATASET_SHARD_H_
#define WOT_SERVICE_DATASET_SHARD_H_

#include <cstdint>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/dataset_builder.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Shard owning global user \p global under \p num_shards.
inline size_t ShardOfUser(uint64_t global, size_t num_shards) {
  return static_cast<size_t>(global % num_shards);
}

/// \brief Shard-local index of global user \p global.
inline uint32_t ShardLocalUser(uint64_t global, size_t num_shards) {
  return static_cast<uint32_t>(global / num_shards);
}

/// \brief Global index of shard \p shard's local user \p local.
inline int64_t GlobalUserOfShard(uint32_t local, size_t shard,
                                 size_t num_shards) {
  return static_cast<int64_t>(local) * static_cast<int64_t>(num_shards) +
         static_cast<int64_t>(shard);
}

/// \brief What SliceDatasetByUser dropped (activity spanning two shards).
struct ShardSliceStats {
  size_t ratings_dropped = 0;
  size_t trust_statements_dropped = 0;
};

/// \brief Splits \p seed into \p num_shards per-shard datasets under the
/// partition documented above. \p options governs the per-shard builders
/// (use the same policy the serving TrustService will replay with).
/// Emits one dataset per shard (possibly with zero users when
/// num_shards exceeds the seed population); \p stats, when given,
/// receives the cross-shard drop counts.
Result<std::vector<Dataset>> SliceDatasetByUser(
    const Dataset& seed, size_t num_shards,
    const DatasetBuilderOptions& options = {},
    ShardSliceStats* stats = nullptr);

}  // namespace wot

#endif  // WOT_SERVICE_DATASET_SHARD_H_
