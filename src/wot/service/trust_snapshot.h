// TrustSnapshot: one immutable, fully derived version of the web of trust.
//
// A snapshot bundles everything the read path needs — the Step-1
// ReputationResult (expertise E, rater reputations, review qualities,
// convergence info), the Step-2 affiliation matrix A, and a Step-3
// TrustDeriver with per-category expertise postings — into a single
// self-contained object. Snapshots never reference the live dataset, so a
// reader holding a std::shared_ptr<const TrustSnapshot> can keep querying
// it (lock-free) while the writer builds and publishes newer versions.
//
// Immutable-after-build is a machine-checked invariant, not a
// convention: the public surface below must stay const/static-only —
// tools/wot_lint.py (rule: snapshot, a smoke-tier ctest entry) fails
// the suite if a non-const public member function ever appears here.
//
// Construction paths:
//   * Build()    — one-shot, from a dataset (the batch path; TrustPipeline
//                  is a facade over this).
//   * Assemble() — from precomputed components (the incremental path;
//                  TrustService reuses clean postings from the previous
//                  snapshot and hands the rest in).
#ifndef WOT_SERVICE_TRUST_SNAPSHOT_H_
#define WOT_SERVICE_TRUST_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/core/trust_derivation.h"
#include "wot/linalg/dense_matrix.h"
#include "wot/reputation/engine.h"
#include "wot/service/name_index.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Options of one-shot snapshot construction.
struct SnapshotOptions {
  ReputationOptions reputation;
  /// Build per-category expertise postings so TopK uses the threshold
  /// algorithm. Skippable for batch callers that never ask for top-k.
  bool build_postings = true;
};

/// \brief One eq.-5 term of an ExplainTrust breakdown.
struct TrustContribution {
  uint32_t category = 0;
  double affiliation = 0.0;   ///< A[i][c]
  double expertise = 0.0;     ///< E[j][c]
  double contribution = 0.0;  ///< A[i][c] * E[j][c] / sum_c A[i][c]
};

/// \brief Per-category breakdown of one derived degree of trust.
struct TrustExplanation {
  /// The derived degree, computed exactly like Trust(i, j). The terms'
  /// contributions sum to this up to floating-point re-association.
  double trust = 0.0;
  /// sum_c A[i][c], the eq.-5 denominator (0 for an inactive truster).
  double affinity_sum = 0.0;
  /// Terms with A[i][c] > 0, sorted by descending contribution (ties by
  /// ascending category id).
  std::vector<TrustContribution> terms;
};

/// \brief An immutable published version of the derived web of trust.
///
/// All query methods are const, touch only snapshot-owned state, and are
/// safe to call concurrently from any number of threads. Out-of-range user
/// indices (e.g. users ingested after this snapshot was published) derive
/// to 0 / empty rather than faulting, so readers racing a writer never
/// need to re-validate ids against a newer snapshot.
class TrustSnapshot {
 public:
  /// \brief One-shot construction: Steps 1-3 from scratch over \p dataset.
  /// \p indices must describe \p dataset. The snapshot gets version 1.
  static Result<std::shared_ptr<const TrustSnapshot>> Build(
      const Dataset& dataset, const DatasetIndices& indices,
      const SnapshotOptions& options = {});

  /// \brief Assembles a snapshot from precomputed components. \p postings
  /// must be empty (no top-k acceleration) or have one non-null entry per
  /// category. \p user_names must cover exactly the affiliation rows and
  /// \p category_names its columns (both may be shared with the previous
  /// snapshot — names are append-only). \p num_reviews / \p num_ratings
  /// describe the dataset version the components were derived from.
  static std::shared_ptr<const TrustSnapshot> Assemble(
      ReputationResult reputation, DenseMatrix affiliation,
      std::vector<ExpertisePostingPtr> postings,
      std::shared_ptr<const NameIndex> user_names,
      std::shared_ptr<const std::vector<std::string>> category_names,
      uint64_t version, size_t num_reviews, size_t num_ratings);

  /// Monotonically increasing publish sequence number (1 = initial).
  uint64_t version() const { return version_; }

  size_t num_users() const { return affiliation_.rows(); }
  size_t num_categories() const { return affiliation_.cols(); }
  size_t num_reviews() const { return num_reviews_; }
  size_t num_ratings() const { return num_ratings_; }

  /// \brief The derived degree of trust T-hat[i][j] (eq. 5); 0 when either
  /// index is out of range for this snapshot.
  double Trust(size_t i, size_t j) const;

  /// \brief Exact top-k trustees of user \p i (descending score, ties by
  /// ascending user id, diagonal excluded). Empty when \p i is out of
  /// range.
  std::vector<ScoredUser> TopK(size_t i, size_t k) const;

  /// \brief Per-category contribution breakdown of Trust(i, j). Empty
  /// terms and trust 0 when out of range.
  TrustExplanation ExplainTrust(size_t i, size_t j) const;

  /// \brief The immutable user-name directory this snapshot serves. Name
  /// resolution on the read path goes through here exclusively, so
  /// concurrent readers never see the writer-side staged dataset; users
  /// ingested after this snapshot published are not yet resolvable.
  const NameIndex& user_names() const { return *user_names_; }
  /// Shared form, for extending into the next snapshot's index.
  const std::shared_ptr<const NameIndex>& shared_user_names() const {
    return user_names_;
  }

  /// Display names of the snapshot's categories (index = CategoryId).
  const std::vector<std::string>& category_names() const {
    return *category_names_;
  }
  const std::shared_ptr<const std::vector<std::string>>&
  shared_category_names() const {
    return category_names_;
  }

  /// Full Step-1 output (E, rater reputations, review qualities,
  /// convergence diagnostics).
  const ReputationResult& reputation() const { return reputation_; }
  /// E: U x C.
  const DenseMatrix& expertise() const { return reputation_.expertise; }
  /// A: U x C.
  const DenseMatrix& affiliation() const { return affiliation_; }
  /// The bound deriver (for batch-style bulk derivation over the
  /// snapshot). References snapshot-owned matrices; the snapshot must stay
  /// alive while the reference is used.
  const TrustDeriver& deriver() const { return *deriver_; }

 private:
  TrustSnapshot() = default;

  ReputationResult reputation_;
  DenseMatrix affiliation_;
  // Bound to reputation_.expertise and affiliation_; created after both
  // reach their final addresses.
  std::unique_ptr<TrustDeriver> deriver_;
  // Never null; shared with neighboring snapshots where unchanged.
  std::shared_ptr<const NameIndex> user_names_;
  std::shared_ptr<const std::vector<std::string>> category_names_;
  uint64_t version_ = 0;
  size_t num_reviews_ = 0;
  size_t num_ratings_ = 0;
};

}  // namespace wot

#endif  // WOT_SERVICE_TRUST_SNAPSHOT_H_
