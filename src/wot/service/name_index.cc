#include "wot/service/name_index.h"

#include <algorithm>

#include "wot/util/check.h"

namespace wot {

std::shared_ptr<const NameIndex> NameIndex::Empty() {
  static const std::shared_ptr<const NameIndex> kEmpty(new NameIndex());
  return kEmpty;
}

std::shared_ptr<const NameIndex::Chunk> NameIndex::BuildChunk(
    size_t first, const std::vector<User>& users, size_t end) {
  auto chunk = std::make_shared<Chunk>();
  chunk->first = first;
  chunk->names.reserve(end - first);
  for (size_t u = first; u < end; ++u) {
    chunk->names.push_back(users[u].name);
  }
  // Map keys view into chunk->names, whose strings never move again.
  // emplace keeps the smallest id under a duplicated name.
  chunk->by_name.reserve(chunk->names.size());
  for (size_t i = 0; i < chunk->names.size(); ++i) {
    chunk->by_name.emplace(chunk->names[i],
                           static_cast<uint32_t>(first + i));
  }
  return chunk;
}

std::shared_ptr<const NameIndex> NameIndex::Extend(
    const std::shared_ptr<const NameIndex>& base,
    const std::vector<User>& users) {
  const NameIndex& prefix = base != nullptr ? *base : *Empty();
  WOT_CHECK(prefix.size() <= users.size());
  if (prefix.size() == users.size()) {
    return base != nullptr ? base : Empty();
  }

  std::shared_ptr<NameIndex> index(new NameIndex());
  index->chunks_ = prefix.chunks_;
  index->size_ = users.size();

  // LSM merge rule: the fresh tail absorbs every trailing chunk that is
  // no larger than what it has accumulated, so chunk sizes stay
  // geometrically decreasing (newest smallest) and the count O(log U).
  size_t first = prefix.size();
  size_t tail = users.size() - first;
  while (!index->chunks_.empty() &&
         index->chunks_.back()->names.size() <= tail) {
    first = index->chunks_.back()->first;
    tail = users.size() - first;
    index->chunks_.pop_back();
  }
  index->chunks_.push_back(BuildChunk(first, users, users.size()));
  return index;
}

std::optional<uint32_t> NameIndex::Find(std::string_view name) const {
  // Oldest chunk first: a duplicated name resolves to its first id.
  for (const auto& chunk : chunks_) {
    auto it = chunk->by_name.find(name);
    if (it != chunk->by_name.end()) {
      return it->second;
    }
  }
  return std::nullopt;
}

const std::string& NameIndex::name(size_t index) const {
  WOT_CHECK(index < size_);
  // The owning chunk is the last one starting at or before `index`.
  auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), index,
      [](size_t value, const std::shared_ptr<const Chunk>& chunk) {
        return value < chunk->first;
      });
  WOT_CHECK(it != chunks_.begin());
  const Chunk& chunk = **(--it);
  return chunk.names[index - chunk.first];
}

}  // namespace wot
