// TrustService: the long-lived serving API over the paper's pipeline.
//
// Where TrustPipeline is the *batch* path (one dataset in, one set of
// artifacts out), TrustService is the *serving* path a server sits behind:
//
//   * Ingest is append-only: AddUser / AddCategory / AddObject / AddReview /
//     AddRating accumulate activity under the same referential-integrity
//     rules as DatasetBuilder.
//   * Commit() folds the staged activity into derived state incrementally —
//     Step 1 recomputes only dirty categories (IncrementalReputationEngine),
//     Step 2 refreshes only the affiliation rows of users whose activity
//     changed, Step 3 rebuilds expertise postings only for dirty categories
//     (clean categories share the previous snapshot's postings) — and
//     publishes a new immutable TrustSnapshot. Results are bit-identical to
//     a from-scratch TrustPipeline::Run over the same data.
//   * Reads are lock-free: Snapshot() atomically loads the latest published
//     std::shared_ptr<const TrustSnapshot>; unlimited reader threads may
//     call Trust / TopK / ExplainTrust concurrently with a committing
//     writer and only ever observe fully published versions.
//
// Thread contract: any number of concurrent readers; write operations
// (Add* and Commit) are serialized internally by a mutex, so multiple
// writer threads are safe but see sequential throughput.
//
//   WOT_ASSIGN_OR_RETURN(std::unique_ptr<TrustService> service,
//                        TrustService::Create(dataset));
//   double t = service->Trust(alice.index(), bob.index());
//   ... later, on the write path ...
//   WOT_RETURN_IF_ERROR(service->AddRating(rater, review, 0.8));
//   WOT_ASSIGN_OR_RETURN(TrustService::CommitStats stats,
//                        service->Commit());
#ifndef WOT_SERVICE_TRUST_SERVICE_H_
#define WOT_SERVICE_TRUST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/dataset_builder.h"
#include "wot/reputation/incremental.h"
#include "wot/service/mutation_log.h"
#include "wot/service/trust_snapshot.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/result.h"
#include "wot/util/thread_annotations.h"

namespace wot {

// Canonical wording of the ref-resolution errors. Shared by every
// resolver — the service's staged lookup, the api layer's published
// snapshot lookup (api::ResolveUserRef), and the shard router's
// global-id resolvers — because the router's one-shard bit-identity
// property holds only while these strings stay byte-identical across
// all of them.
inline constexpr char kEmptyUserRefMessage[] = "empty user reference";
std::string UserIndexOutOfRangeMessage(std::string_view ref,
                                       size_t num_users);
std::string NoUserNamedMessage(std::string_view ref);
std::string ReviewIdOutOfRangeMessage(int64_t review, int64_t bound);

/// \brief Service-level options.
struct TrustServiceOptions {
  ReputationOptions reputation;
  /// Ingest policy (referential integrity and rating-scale rules).
  DatasetBuilderOptions builder;
  /// Maintain per-category expertise postings in every snapshot so TopK
  /// runs the threshold algorithm.
  bool build_postings = true;
};

/// \brief Long-lived, concurrently readable trust serving layer.
class TrustService {
 public:
  /// \brief What one Commit() did.
  struct CommitStats {
    /// Version of the snapshot serving after the commit (unchanged when
    /// nothing was published).
    uint64_t version = 0;
    /// False when no derived state changed (nothing appended, or only
    /// objects without reviews): the previous snapshot keeps serving.
    bool published = false;
    size_t categories_recomputed = 0;
    size_t affiliation_rows_recomputed = 0;
    size_t postings_rebuilt = 0;
    double elapsed_millis = 0.0;
  };

  /// \brief Boots a service over a copy of \p seed and publishes snapshot
  /// version 1. The seed is not referenced after Create returns.
  static Result<std::unique_ptr<TrustService>> Create(
      const Dataset& seed, const TrustServiceOptions& options = {});

  /// \brief Boots an empty service (version-1 snapshot over zero users).
  static Result<std::unique_ptr<TrustService>> CreateEmpty(
      const TrustServiceOptions& options = {});

  /// \brief Boots a service from durably persisted components (the
  /// instant-boot path: a storage segment instead of a raw-dataset
  /// derivation). \p dataset is the full staged dataset at segment-write
  /// time; it is adopted wholesale by the builder (ids are dense in
  /// column order already, per-row policy rules are re-checked, and the
  /// ingest dedup keys rebuild lazily on first mutation), while the
  /// expensive derived state — \p reputation, \p affiliation,
  /// \p postings — is adopted as published snapshot \p version without
  /// recomputation. The incremental engine is seeded so the next Commit()
  /// stays incremental and bit-identical to an uninterrupted service.
  /// \p postings may be empty (TopK falls back to dense derivation).
  static Result<std::unique_ptr<TrustService>> Restore(
      Dataset dataset, ReputationResult reputation, DenseMatrix affiliation,
      std::vector<ExpertisePostingPtr> postings, uint64_t version,
      const TrustServiceOptions& options = {});

  // --- Write path (append-only; serialized internally) -------------------

  UserId AddUser(std::string name) WOT_EXCLUDES(writer_mu_);
  CategoryId AddCategory(std::string name) WOT_EXCLUDES(writer_mu_);
  Result<ObjectId> AddObject(CategoryId category, std::string name)
      WOT_EXCLUDES(writer_mu_);
  Result<ReviewId> AddReview(UserId writer, ObjectId object)
      WOT_EXCLUDES(writer_mu_);
  Status AddRating(UserId rater, ReviewId review, double value)
      WOT_EXCLUDES(writer_mu_);

  // Ref-based ingest: resolves "name or decimal index" references against
  // the STAGED dataset (so an entity ingested moments ago is addressable
  // before any commit), validates ranges, and appends — all inside the
  // writer lock, so any number of concurrently ingesting frontends is
  // safe. Staged name lookups hit an incrementally maintained index, not
  // a scan. Queries are different: they resolve on the published
  // snapshot (TrustSnapshot::user_names) and never take this lock.
  Result<ObjectId> AddObjectByRef(std::string_view category_ref,
                                  std::string name)
      WOT_EXCLUDES(writer_mu_);
  Result<ReviewId> AddReviewByRef(std::string_view writer_ref,
                                  int64_t object) WOT_EXCLUDES(writer_mu_);
  Status AddRatingByRef(std::string_view rater_ref, int64_t review,
                        double value) WOT_EXCLUDES(writer_mu_);

  /// \brief Resolves a name-or-index user ref against the STAGED dataset
  /// (takes the writer lock). This is the ingest-side resolution the
  /// *ByRef methods use internally, exposed so a shard router can probe
  /// which shard stages a given name before fanning an ingest out.
  Result<UserId> ResolveStagedUserRef(std::string_view ref)
      WOT_EXCLUDES(writer_mu_);

  /// \brief Resolves a name-or-index category ref against the STAGED
  /// dataset without staging anything (takes the writer lock). This is
  /// exactly AddObjectByRef's validation, exposed so a shard router can
  /// obtain the canonical verdict BEFORE fanning an object ingest out to
  /// every shard — a rejection must stage nothing anywhere.
  Result<CategoryId> ResolveStagedCategoryRef(std::string_view ref)
      WOT_EXCLUDES(writer_mu_);

  /// \brief Derives the staged activity and publishes a new snapshot.
  /// No-op (published = false) when nothing derivable changed.
  Result<CommitStats> Commit() WOT_EXCLUDES(writer_mu_);

  // --- Read path (lock-free; safe concurrently with the write path) ------

  /// \brief The latest published snapshot (never null). Hold the returned
  /// shared_ptr for as long as a consistent view is needed.
  std::shared_ptr<const TrustSnapshot> Snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Convenience single-query forms; each loads one snapshot. For multiple
  /// related queries, call Snapshot() once and query it directly.
  double Trust(size_t i, size_t j) const { return Snapshot()->Trust(i, j); }
  std::vector<ScoredUser> TopK(size_t i, size_t k) const {
    return Snapshot()->TopK(i, k);
  }
  TrustExplanation ExplainTrust(size_t i, size_t j) const {
    return Snapshot()->ExplainTrust(i, j);
  }

  /// \brief The number of reviews currently staged (committed or not).
  /// Takes the writer lock; safe from any thread. The shard router uses
  /// it to range-check wire review ids against the owning shard.
  size_t StagedReviewCount() const WOT_EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return builder_.StagedView().num_reviews();
  }

  /// \brief The dataset under ingest (grows across Add* calls). Writer-side
  /// view: the returned reference outlives the internal lock, so do NOT
  /// read it concurrently with Add* calls from another thread; readers
  /// should query snapshots instead. (Taking the lock here still gives a
  /// caller that joined its writer threads a happens-before edge to every
  /// completed Add*.)
  const Dataset& staged_dataset() const WOT_EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return builder_.StagedView();
  }

  // --- Durability ---------------------------------------------------------

  /// \brief Attaches \p log (not owned; may be null to detach). Every
  /// subsequently accepted mutation and commit is reported to it before
  /// the mutating call returns. Attach before serving traffic; the log
  /// must outlive the service or be detached first.
  void SetMutationLog(MutationLog* log) WOT_EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    mutation_log_ = log;
  }

  /// \brief Durability counters of the attached log (all zero when no log
  /// is attached). Takes the writer lock briefly; safe from any thread.
  DurabilityStats durability_stats() const WOT_EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return mutation_log_ != nullptr ? mutation_log_->durability_stats()
                                    : DurabilityStats{};
  }

  // --- Telemetry ----------------------------------------------------------

  /// \brief The registry this service records its commit-stage timings
  /// into (service.commit_*; see docs/observability.md). Owned by the
  /// service; frontends register it as a scrape source.
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return metrics_;
  }

 private:
  explicit TrustService(const TrustServiceOptions& options);

  /// Marks \p user as needing an affiliation-row refresh at next Commit.
  void MarkDirty(UserId user) WOT_REQUIRES(writer_mu_);

  /// Resolves a name-or-index user ref against the staged dataset
  /// (absorbs the staged tail into the name index).
  Result<UserId> ResolveStagedUserLocked(std::string_view ref)
      WOT_REQUIRES(writer_mu_);

  /// Resolves a name-or-index category ref against the staged dataset.
  Result<CategoryId> ResolveStagedCategoryLocked(std::string_view ref)
      WOT_REQUIRES(writer_mu_);

  /// Builds and atomically publishes the next snapshot.
  Result<CommitStats> CommitLocked() WOT_REQUIRES(writer_mu_);

  TrustServiceOptions options_;

  // Telemetry: the registry outlives every resolved handle below. The
  // handles are written once, in the constructor, and recorded into only
  // under writer_mu_ (commit is serialized), so no further guarding.
  std::shared_ptr<telemetry::MetricRegistry> metrics_;
  telemetry::Counter* commits_;
  telemetry::LatencyHistogram* commit_ns_;
  telemetry::LatencyHistogram* commit_update_ns_;
  telemetry::LatencyHistogram* commit_affiliation_ns_;
  telemetry::LatencyHistogram* commit_postings_ns_;
  telemetry::LatencyHistogram* commit_publish_ns_;
  telemetry::LatencyHistogram* commit_dirty_categories_;

  // Writer state: guarded by writer_mu_. Readers never touch it.
  mutable Mutex writer_mu_;
  DatasetBuilder builder_ WOT_GUARDED_BY(writer_mu_);
  IncrementalReputationEngine engine_ WOT_GUARDED_BY(writer_mu_);
  // Indexed by user id.
  std::vector<bool> dirty_users_ WOT_GUARDED_BY(writer_mu_);
  // Staged-side name lookup for ref-based ingest; absorbs the appended
  // tail lazily (users are dense with immutable names, so entries never
  // change). emplace keeps the first id under a duplicated name.
  std::unordered_map<std::string, UserId> staged_name_index_
      WOT_GUARDED_BY(writer_mu_);
  size_t staged_indexed_users_ WOT_GUARDED_BY(writer_mu_) = 0;
  // Durability hook; not owned. Null until SetMutationLog.
  MutationLog* mutation_log_ WOT_GUARDED_BY(writer_mu_) = nullptr;
  uint64_t next_version_ WOT_GUARDED_BY(writer_mu_) = 1;
  // Entity counts the latest snapshot was derived from.
  size_t published_users_ WOT_GUARDED_BY(writer_mu_) = 0;
  size_t published_categories_ WOT_GUARDED_BY(writer_mu_) = 0;
  size_t published_reviews_ WOT_GUARDED_BY(writer_mu_) = 0;
  size_t published_ratings_ WOT_GUARDED_BY(writer_mu_) = 0;

  // The one reader/writer rendezvous: an atomically swapped shared_ptr.
  std::atomic<std::shared_ptr<const TrustSnapshot>> published_;
};

}  // namespace wot

#endif  // WOT_SERVICE_TRUST_SERVICE_H_
