#include "wot/service/pipeline.h"

#include "wot/util/logging.h"
#include "wot/util/stopwatch.h"

namespace wot {

Result<TrustPipeline> TrustPipeline::Run(const Dataset& dataset,
                                         const PipelineOptions& options) {
  Stopwatch timer;
  TrustPipeline pipeline;
  pipeline.dataset_ = &dataset;
  pipeline.indices_ = std::make_unique<DatasetIndices>(dataset);

  // Batch callers derive in bulk through MakeDeriver and build postings
  // themselves if they want top-k, so the snapshot skips them.
  SnapshotOptions snapshot_options;
  snapshot_options.reputation = options.reputation;
  snapshot_options.build_postings = false;
  WOT_ASSIGN_OR_RETURN(
      pipeline.snapshot_,
      TrustSnapshot::Build(dataset, *pipeline.indices_, snapshot_options));

  pipeline.direct_ =
      BuildDirectConnectionMatrix(dataset, *pipeline.indices_);
  pipeline.explicit_trust_ = BuildExplicitTrustMatrix(dataset);
  if (options.compute_baseline) {
    pipeline.baseline_ = ComputeBaselineMatrix(dataset, *pipeline.indices_);
  }

  size_t unconverged = 0;
  for (const auto& info : pipeline.snapshot_->reputation().convergence) {
    if (!info.converged) {
      ++unconverged;
    }
  }
  if (unconverged > 0) {
    WOT_LOG(Warning) << unconverged
                     << " categories hit the iteration cap before reaching "
                        "the quality tolerance";
  }
  WOT_LOG(Info) << "pipeline ran in " << timer.ElapsedMillis() << " ms over "
                << dataset.Summary();
  return pipeline;
}

}  // namespace wot
