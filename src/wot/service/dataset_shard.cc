#include "wot/service/dataset_shard.h"

#include <utility>

namespace wot {

Result<std::vector<Dataset>> SliceDatasetByUser(
    const Dataset& seed, size_t num_shards,
    const DatasetBuilderOptions& options, ShardSliceStats* stats) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  ShardSliceStats dropped;
  std::vector<DatasetBuilder> builders;
  builders.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    builders.emplace_back(options);
  }

  // Replicated context: identical category and object id spaces on every
  // shard (insertion order is id order for DatasetBuilder).
  for (const Category& category : seed.categories()) {
    for (DatasetBuilder& builder : builders) {
      builder.AddCategory(category.name);
    }
  }
  for (const User& user : seed.users()) {
    builders[ShardOfUser(user.id.value(), num_shards)].AddUser(user.name);
  }
  for (const Object& object : seed.objects()) {
    for (DatasetBuilder& builder : builders) {
      WOT_RETURN_IF_ERROR(
          builder.AddObject(object.category, object.name).status());
    }
  }

  // Reviews land on their writer's shard, renumbered densely in seed
  // order; remember the mapping so ratings can follow them.
  std::vector<size_t> review_shard(seed.num_reviews(), 0);
  std::vector<uint32_t> review_local(seed.num_reviews(), 0);
  for (const Review& review : seed.reviews()) {
    size_t shard = ShardOfUser(review.writer.value(), num_shards);
    WOT_ASSIGN_OR_RETURN(
        ReviewId local,
        builders[shard].AddReview(
            UserId(ShardLocalUser(review.writer.value(), num_shards)),
            review.object));
    review_shard[review.id.index()] = shard;
    review_local[review.id.index()] = local.value();
  }

  // Ratings and trust statements stay iff both endpoints co-shard.
  for (const ReviewRating& rating : seed.ratings()) {
    size_t shard = ShardOfUser(rating.rater.value(), num_shards);
    if (review_shard[rating.review.index()] != shard) {
      ++dropped.ratings_dropped;
      continue;
    }
    WOT_RETURN_IF_ERROR(builders[shard].AddRating(
        UserId(ShardLocalUser(rating.rater.value(), num_shards)),
        ReviewId(review_local[rating.review.index()]), rating.value));
  }
  for (const TrustStatement& statement : seed.trust_statements()) {
    size_t shard = ShardOfUser(statement.source.value(), num_shards);
    if (ShardOfUser(statement.target.value(), num_shards) != shard) {
      ++dropped.trust_statements_dropped;
      continue;
    }
    WOT_RETURN_IF_ERROR(builders[shard].AddTrust(
        UserId(ShardLocalUser(statement.source.value(), num_shards)),
        UserId(ShardLocalUser(statement.target.value(), num_shards))));
  }

  std::vector<Dataset> slices;
  slices.reserve(num_shards);
  for (DatasetBuilder& builder : builders) {
    WOT_ASSIGN_OR_RETURN(Dataset slice, builder.Build());
    slices.push_back(std::move(slice));
  }
  if (stats != nullptr) {
    *stats = dropped;
  }
  return slices;
}

}  // namespace wot
