// TrustPipeline: the one-shot *batch* front end of the library.
//
//   Dataset -> indices -> TrustSnapshot::Build (Steps 1-3 derived state)
//           -> observation matrices (R, T) and the baseline B
//
// TrustPipeline is a thin facade over one-shot service construction: the
// derived artifacts (expertise E, affiliation A, review qualities) live in
// an immutable TrustSnapshot built by the serving layer, and the pipeline
// adds the validation-only matrices on top. Use TrustPipeline when you have
// a complete dataset and want every artifact once (experiments, validation,
// offline derivation); use TrustService (wot/service/trust_service.h) when
// the community keeps growing and trust values must stay queryable while
// they are refreshed incrementally.
//
// A typical batch caller:
//
//   WOT_ASSIGN_OR_RETURN(TrustPipeline pipe,
//                        TrustPipeline::Run(dataset, {}));
//   TrustDeriver deriver = pipe.MakeDeriver();
//   double degree = deriver.DeriveOne(alice.index(), bob.index());
#ifndef WOT_SERVICE_PIPELINE_H_
#define WOT_SERVICE_PIPELINE_H_

#include <memory>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/core/baseline.h"
#include "wot/core/trust_derivation.h"
#include "wot/reputation/engine.h"
#include "wot/service/trust_snapshot.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Pipeline-level options.
struct PipelineOptions {
  ReputationOptions reputation;
  /// Also compute the baseline matrix B (skippable when not validating).
  bool compute_baseline = true;
};

/// \brief Owns every artifact derived from one dataset. The dataset itself
/// is borrowed and must outlive the pipeline.
class TrustPipeline {
 public:
  /// \brief Runs steps 1-2 and builds R, T and (optionally) B.
  static Result<TrustPipeline> Run(const Dataset& dataset,
                                   const PipelineOptions& options = {});

  const Dataset& dataset() const { return *dataset_; }
  const DatasetIndices& indices() const { return *indices_; }

  /// E (eq. 3 per category): U x C.
  const DenseMatrix& expertise() const { return snapshot_->expertise(); }
  /// Rater reputations (eq. 2 per category): U x C.
  const DenseMatrix& rater_reputation() const {
    return snapshot_->reputation().rater_reputation;
  }
  /// A (eq. 4): U x C.
  const DenseMatrix& affiliation() const { return snapshot_->affiliation(); }
  /// Full Step-1 output including review qualities and convergence info.
  const ReputationResult& reputation() const {
    return snapshot_->reputation();
  }

  /// \brief The derived-state snapshot backing this pipeline (version 1;
  /// the same object a TrustService would have published initially).
  const TrustSnapshot& snapshot() const { return *snapshot_; }

  /// R: who rated whose reviews.
  const SparseMatrix& direct_connections() const { return direct_; }
  /// T: the explicit web of trust (empty when the community has none).
  const SparseMatrix& explicit_trust() const { return explicit_trust_; }
  /// B: baseline degrees of trust (empty if compute_baseline was false).
  const SparseMatrix& baseline() const { return baseline_; }

  /// \brief A deriver bound to this pipeline's A and E (eq. 5). The
  /// pipeline must outlive the deriver.
  TrustDeriver MakeDeriver() const {
    return TrustDeriver(snapshot_->affiliation(), snapshot_->expertise());
  }

 private:
  TrustPipeline() = default;

  const Dataset* dataset_ = nullptr;
  std::unique_ptr<DatasetIndices> indices_;
  std::shared_ptr<const TrustSnapshot> snapshot_;
  SparseMatrix direct_;
  SparseMatrix explicit_trust_;
  SparseMatrix baseline_;
};

}  // namespace wot

#endif  // WOT_SERVICE_PIPELINE_H_
