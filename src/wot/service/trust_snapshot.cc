#include "wot/service/trust_snapshot.h"

#include <algorithm>

#include "wot/core/affiliation.h"
#include "wot/util/check.h"

namespace wot {

Result<std::shared_ptr<const TrustSnapshot>> TrustSnapshot::Build(
    const Dataset& dataset, const DatasetIndices& indices,
    const SnapshotOptions& options) {
  WOT_ASSIGN_OR_RETURN(
      ReputationResult reputation,
      ComputeReputations(dataset, indices, options.reputation));
  DenseMatrix affiliation = ComputeAffiliationMatrix(dataset, indices);

  std::vector<ExpertisePostingPtr> postings;
  if (options.build_postings) {
    postings.resize(dataset.num_categories());
    for (size_t c = 0; c < postings.size(); ++c) {
      postings[c] = TrustDeriver::BuildCategoryPosting(reputation.expertise, c);
    }
  }
  auto category_names = std::make_shared<std::vector<std::string>>();
  category_names->reserve(dataset.num_categories());
  for (const Category& category : dataset.categories()) {
    category_names->push_back(category.name);
  }
  return Assemble(std::move(reputation), std::move(affiliation),
                  std::move(postings),
                  NameIndex::Extend(NameIndex::Empty(), dataset.users()),
                  std::move(category_names), /*version=*/1,
                  dataset.num_reviews(), dataset.num_ratings());
}

std::shared_ptr<const TrustSnapshot> TrustSnapshot::Assemble(
    ReputationResult reputation, DenseMatrix affiliation,
    std::vector<ExpertisePostingPtr> postings,
    std::shared_ptr<const NameIndex> user_names,
    std::shared_ptr<const std::vector<std::string>> category_names,
    uint64_t version, size_t num_reviews, size_t num_ratings) {
  WOT_CHECK_EQ(reputation.expertise.rows(), affiliation.rows());
  WOT_CHECK_EQ(reputation.expertise.cols(), affiliation.cols());
  WOT_CHECK(user_names != nullptr);
  WOT_CHECK(category_names != nullptr);
  WOT_CHECK_EQ(user_names->size(), affiliation.rows());
  WOT_CHECK_EQ(category_names->size(), affiliation.cols());
  std::shared_ptr<TrustSnapshot> snapshot(new TrustSnapshot());
  snapshot->reputation_ = std::move(reputation);
  snapshot->affiliation_ = std::move(affiliation);
  snapshot->user_names_ = std::move(user_names);
  snapshot->category_names_ = std::move(category_names);
  snapshot->version_ = version;
  snapshot->num_reviews_ = num_reviews;
  snapshot->num_ratings_ = num_ratings;
  snapshot->deriver_ = std::make_unique<TrustDeriver>(
      snapshot->affiliation_, snapshot->reputation_.expertise);
  if (!postings.empty()) {
    snapshot->deriver_->AdoptPostings(std::move(postings));
  }
  return snapshot;
}

double TrustSnapshot::Trust(size_t i, size_t j) const {
  if (i >= num_users() || j >= num_users()) {
    return 0.0;
  }
  return deriver_->DeriveOne(i, j);
}

std::vector<ScoredUser> TrustSnapshot::TopK(size_t i, size_t k) const {
  if (i >= num_users()) {
    return {};
  }
  return deriver_->DeriveRowTopK(i, k);
}

TrustExplanation TrustSnapshot::ExplainTrust(size_t i, size_t j) const {
  TrustExplanation explanation;
  if (i >= num_users() || j >= num_users()) {
    return explanation;
  }
  explanation.trust = deriver_->DeriveOne(i, j);
  explanation.affinity_sum = affiliation_.RowSum(i);
  if (explanation.affinity_sum <= 0.0) {
    return explanation;
  }
  auto arow = affiliation_.Row(i);
  auto erow = reputation_.expertise.Row(j);
  for (size_t c = 0; c < arow.size(); ++c) {
    if (arow[c] > 0.0) {
      explanation.terms.push_back(
          {static_cast<uint32_t>(c), arow[c], erow[c],
           arow[c] * erow[c] / explanation.affinity_sum});
    }
  }
  std::sort(explanation.terms.begin(), explanation.terms.end(),
            [](const TrustContribution& a, const TrustContribution& b) {
              if (a.contribution != b.contribution) {
                return a.contribution > b.contribution;
              }
              return a.category < b.category;
            });
  return explanation;
}

}  // namespace wot
