// MutationLog: the durability hook TrustService writes through.
//
// A TrustService optionally carries a MutationLog (storage::StorageManager
// is the production implementation). Every successfully staged ingest
// mutation and every Commit() is reported to the log *inside the writer
// lock, before the call returns* — so once the API acknowledges a
// mutation, the log has seen it (ack-after-durable, modulo the configured
// fsync policy). The interface lives in the service layer so api-level
// frontends can surface DurabilityStats without depending on storage.
//
// Contract:
//   * LogAdd* report mutations that the builder accepted; rejected
//     mutations are never logged. Records carry resolved dense ids (refs
//     were resolved before staging), and entity ids are implied by append
//     order, so replaying the records through a fresh service rebuilds
//     the identical staged state.
//   * LogAdd* cannot fail the ingest: an implementation that loses its
//     backing store must latch the failure (stop appending — a hole in
//     the log is worse than a short log) and surface it from the next
//     LogCommit.
//   * LogCommit may veto the commit acknowledgement by returning a
//     non-OK status; the snapshot is already published to in-process
//     readers at that point (availability is kept; the caller learns
//     durability is gone).
#ifndef WOT_SERVICE_MUTATION_LOG_H_
#define WOT_SERVICE_MUTATION_LOG_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "wot/util/status.h"

namespace wot {

class Dataset;
class TrustSnapshot;

/// \brief Wire-visible durability counters (the additive v1 `stats`
/// fields). All zero when no durable store is attached.
struct DurabilityStats {
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  /// Version of the newest durable snapshot segment (>= 1 whenever a
  /// durable store is active — boot writes the first segment).
  int64_t segment_epoch = 0;
  int64_t segment_bytes = 0;
  /// WAL records replayed by the most recent recovery (0 on fresh boot).
  int64_t recovered_replayed_records = 0;
};

/// \brief Receives every accepted TrustService mutation and commit.
///
/// Called under the service's writer lock (mutations are already
/// serialized); durability_stats() may race those calls and must be
/// internally synchronized.
class MutationLog {
 public:
  virtual ~MutationLog() = default;

  virtual void LogAddUser(std::string_view name) = 0;
  virtual void LogAddCategory(std::string_view name) = 0;
  virtual void LogAddObject(uint32_t category, std::string_view name) = 0;
  virtual void LogAddReview(uint32_t writer, uint32_t object) = 0;
  virtual void LogAddRating(uint32_t rater, uint32_t review,
                            double value) = 0;

  /// \brief A Commit() finished. \p snapshot is the snapshot now serving
  /// (the freshly published one when \p published, else the incumbent) —
  /// shared ownership, so an implementation that serializes it off the
  /// commit path (background segment writes) can retain it. \p staged is
  /// the full staged dataset, valid only for the duration of the call
  /// (copy it to keep it). A non-OK return fails the commit ack.
  virtual Status LogCommit(
      uint64_t version, bool published,
      const std::shared_ptr<const TrustSnapshot>& snapshot,
      const Dataset& staged) = 0;

  virtual DurabilityStats durability_stats() const = 0;
};

}  // namespace wot

#endif  // WOT_SERVICE_MUTATION_LOG_H_
