#include "wot/server/connection_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "wot/api/binary_codec.h"
#include "wot/api/codec.h"
#include "wot/api/unix_socket.h"
#include "wot/server/line_assembler.h"
#include "wot/telemetry/timed.h"
#include "wot/util/logging.h"
#include "wot/util/stopwatch.h"
#include "wot/util/thread_pool.h"

namespace wot {
namespace server {
namespace {

// epoll user-data tags for the two non-connection fds; connection ids
// start above them. Split-fd connections (ServeConnection with distinct
// read/write fds) register the write side under the connection id with
// the top bit set.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnectionId = 2;
constexpr uint64_t kWriteTagBit = 1ull << 63;

}  // namespace

// Per-connection state, owned by the event-loop thread exclusively; the
// dispatch pool only ever sees (connection_id, seq, payload) copies.
struct ConnectionServer::Connection {
  Connection(uint64_t id_in, int in_fd_in, int out_fd_in,
             const ConnectionServerOptions& options)
      : id(id_in),
        in_fd(in_fd_in),
        out_fd(out_fd_in),
        wire(options.initial_protocol),
        assembler(options.max_line_bytes),
        frames(options.max_line_bytes) {}

  uint64_t id;
  int in_fd;   // read side
  int out_fd;  // write side (== in_fd for accepted sockets)
  // False when in_fd rejects epoll registration (EPERM: a regular file).
  // Such a connection is scheduled synthetically — sound because regular
  // files are always ready and never EAGAIN.
  bool pollable = true;

  // Codec state: which framing the connection currently speaks. Flips
  // NDJSON -> binary on the upgrade handshake or a sniffed magic byte.
  api::WireProtocol wire;
  bool sniffed = false;  // first byte inspected (magic sniffing done)
  LineAssembler assembler;           // NDJSON framing
  api::BinaryFrameAssembler frames;  // v2 binary framing

  uint64_t next_seq = 0;   // assigned to requests in arrival order
  uint64_t flush_seq = 0;  // next seq to append to the write buffer
  std::map<uint64_t, std::string> ready;  // out-of-order completions
  size_t in_flight = 0;  // dispatched to the pool, not yet in `ready`

  std::string out;     // encoded frames awaiting write
  size_t out_pos = 0;  // bytes of `out` already written
  // Last epoll interest + registration state, per fd. A connection with
  // no interest (paused or half-closed, waiting on the pool) is
  // deregistered entirely: epoll reports EPOLLHUP regardless of the
  // mask, so leaving a hung-up fd registered would busy-spin the loop.
  uint32_t in_events = 0;
  uint32_t out_events = 0;
  bool in_registered = false;
  bool out_registered = false;

  bool read_closed = false;        // EOF seen, or the server is draining
  bool close_after_flush = false;  // fatal framing error: flush, then die
  int64_t requests = 0;            // requests read off this connection
  // Telemetry bookkeeping: whether the connection is currently counted
  // as read-paused (so server.backpressure_pauses counts transitions,
  // not loop iterations) and the unsent-byte figure last folded into the
  // server.write_buffer_bytes gauge.
  bool counted_paused = false;
  size_t reported_unsent = 0;
};

// The per-Serve() event loop. Split from the server object so Serve()'s
// state (epoll fd, connection table, pool) has clean RAII teardown while
// the ConnectionServer itself stays reusable for stats after returning.
class ConnectionServer::Loop {
 public:
  /// Listener mode: \p listen_fd >= 0, stream fds -1. Stream mode (one
  /// pre-connected read/write fd pair, no listener): listen_fd -1.
  Loop(ConnectionServer* server, int listen_fd, int stream_read_fd = -1,
       int stream_write_fd = -1)
      : server_(server),
        listen_fd_(listen_fd),
        stream_read_fd_(stream_read_fd),
        stream_write_fd_(stream_write_fd) {}

  ~Loop() {
    // The pool joins first (it references the completion queue and the
    // wake fd, both of which must still be alive).
    pool_.reset();
    for (auto& [id, conn] : connections_) {
      ::close(conn->in_fd);
      if (conn->out_fd != conn->in_fd) ::close(conn->out_fd);
    }
    if (stream_read_fd_ >= 0) ::close(stream_read_fd_);
    if (stream_write_fd_ >= 0 && stream_write_fd_ != stream_read_fd_) {
      ::close(stream_write_fd_);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IOError(std::string("epoll_create1(): ") +
                             std::strerror(errno));
    }
    if (listen_fd_ >= 0) {
      WOT_RETURN_IF_ERROR(api::SetNonBlocking(listen_fd_));
      WOT_RETURN_IF_ERROR(Register(listen_fd_, kListenTag, EPOLLIN));
    }
    WOT_RETURN_IF_ERROR(Register(server_->wake_fd_, kWakeTag, EPOLLIN));

    int threads = server_->options_.num_threads;
    pool_ = std::make_unique<ThreadPool>(
        threads < 1 ? 1 : static_cast<size_t>(threads));

    if (stream_read_fd_ >= 0) {
      WOT_RETURN_IF_ERROR(InstallStreamConnection());
    }

    while (true) {
      if (connections_.empty() && (draining_ || listen_fd_ < 0)) {
        return Status::OK();
      }
      int timeout = -1;
      if (draining_) {
        int64_t remaining = drain_deadline_ms_ - MonotonicMillis();
        if (remaining <= 0) {
          ForceCloseAll();
          return Status::OK();
        }
        timeout = static_cast<int>(remaining);
      } else if (accept_paused_) {
        timeout = kAcceptRetryMillis;  // bounded back-off, then retry
      }
      if (AnyUnpollableRunnable()) {
        timeout = 0;  // synthetic readiness: don't sleep on epoll
      }
      epoll_event events[64];
      int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("epoll_wait(): ") +
                               std::strerror(errno));
      }
      server_->epoll_wakeups_->Increment();
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag) {
          DrainWakeFd();
        } else if (tag == kListenTag) {
          WOT_RETURN_IF_ERROR(AcceptAll());
        } else {
          HandleConnectionEvent(tag, events[i].events);
        }
      }
      RunUnpollable();
      DeliverCompletions();
      if (accept_paused_ && !draining_) {
        // Closed connections may have freed fds; resume accepting.
        if (Register(listen_fd_, kListenTag, EPOLLIN).ok()) {
          accept_paused_ = false;
          WOT_RETURN_IF_ERROR(AcceptAll());
        }
      }
      if (server_->stop_requested_.load(std::memory_order_acquire) &&
          !draining_) {
        BeginDrain();
      }
    }
  }

 private:
  Status Register(int fd, uint64_t tag, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(ADD): ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  // Brings one fd's epoll registration to exactly `want` (0 drops it).
  void UpdateRegistration(int fd, uint64_t tag, uint32_t want,
                          bool* registered, uint32_t* current) {
    if (want == 0) {
      if (*registered &&
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) == 0) {
        *registered = false;
      }
      return;
    }
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = tag;
    if (!*registered) {
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
        *registered = true;
        *current = want;
      }
    } else if (want != *current) {
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
        *current = want;
      }
    }
  }

  Status InstallStreamConnection() {
    WOT_RETURN_IF_ERROR(api::SetNonBlocking(stream_read_fd_));
    if (stream_write_fd_ != stream_read_fd_) {
      WOT_RETURN_IF_ERROR(api::SetNonBlocking(stream_write_fd_));
    }
    uint64_t id = next_connection_id_++;
    auto conn = std::make_unique<Connection>(
        id, stream_read_fd_, stream_write_fd_, server_->options_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->in_fd, &ev) == 0) {
      conn->in_registered = true;
      conn->in_events = EPOLLIN;
    } else if (errno == EPERM) {
      // A regular file: not pollable, but also never blocks — schedule
      // it synthetically instead.
      conn->pollable = false;
      ++unpollable_connections_;
    } else {
      return Status::IOError(std::string("epoll_ctl(ADD stream): ") +
                             std::strerror(errno));
    }
    // Ownership moved into the connection table.
    stream_read_fd_ = -1;
    stream_write_fd_ = -1;
    connections_.emplace(id, std::move(conn));
    server_->accepted_->Increment();
    server_->active_->Add(1);
    return Status::OK();
  }

  void DrainWakeFd() {
    uint64_t count = 0;
    // Nonblocking eventfd: EAGAIN just means another drain got it first.
    ssize_t n = ::read(server_->wake_fd_, &count, sizeof(count));
    (void)n;
  }

  Status AcceptAll() {
    while (true) {
      bool exhausted = false;
      Result<int> accepted =
          api::AcceptNonBlocking(listen_fd_, &exhausted);
      if (!accepted.ok()) {
        return accepted.status();
      }
      int fd = accepted.ValueOrDie();
      if (fd < 0) {
        if (exhausted && !accept_paused_) {
          // Out of fds: stop accepting for a beat rather than busy-spin
          // on a level-triggered listener we cannot accept from (or,
          // worse, kill the healthy connections by failing the loop).
          WOT_LOG(Warning) << "connection server out of descriptors; "
                              "pausing accept for "
                           << kAcceptRetryMillis << " ms";
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_,
                          nullptr) == 0) {
            accept_paused_ = true;
          }
        }
        return Status::OK();
      }
      if (!api::SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      uint64_t id = next_connection_id_++;
      auto conn =
          std::make_unique<Connection>(id, fd, fd, server_->options_);
      if (!Register(fd, id, EPOLLIN).ok()) {
        ::close(fd);
        continue;
      }
      conn->in_registered = true;
      conn->in_events = EPOLLIN;
      connections_.emplace(id, std::move(conn));
      server_->accepted_->Increment();
      server_->active_->Add(1);
    }
  }

  void HandleConnectionEvent(uint64_t tag, uint32_t events) {
    bool write_side = (tag & kWriteTagBit) != 0;
    auto it = connections_.find(tag & ~kWriteTagBit);
    if (it == connections_.end()) {
      return;  // closed earlier this wakeup
    }
    Connection* conn = it->second.get();
    if (!write_side &&
        (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 &&
        !conn->read_closed) {
      if (!ReadFromConnection(conn)) {
        Close(conn, nullptr);
        return;
      }
    }
    if ((events & EPOLLOUT) != 0 ||
        (write_side && (events & (EPOLLHUP | EPOLLERR)) != 0)) {
      if (!TryWrite(conn)) {
        Close(conn, nullptr);
        return;
      }
    }
    Settle(conn);
  }

  bool AnyUnpollableRunnable() const {
    if (unpollable_connections_ == 0) return false;
    for (const auto& [id, conn] : connections_) {
      if (!conn->pollable && UnpollableEvents(*conn) != 0) return true;
    }
    return false;
  }

  uint32_t UnpollableEvents(const Connection& conn) const {
    uint32_t events = 0;
    if (!conn.read_closed && !ReadPaused(conn)) events |= EPOLLIN;
    if (conn.out.size() - conn.out_pos > 0) events |= EPOLLOUT;
    return events;
  }

  // Synthetic scheduling for regular-file connections: run whatever an
  // epoll event would have triggered. Terminates because file reads and
  // writes always make progress (never EAGAIN) until EOF/flush.
  void RunUnpollable() {
    if (unpollable_connections_ == 0) return;
    std::vector<uint64_t> ids;
    for (const auto& [id, conn] : connections_) {
      if (!conn->pollable) ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      uint32_t events = UnpollableEvents(*it->second);
      if (events != 0) {
        HandleConnectionEvent(id, events);
      }
    }
  }

  // Reads until EAGAIN/EOF, dispatching every complete request. Returns
  // false on a hard transport error (caller closes the connection).
  bool ReadFromConnection(Connection* conn) {
    while (true) {
      char chunk[16384];
      ssize_t n = ::read(conn->in_fd, chunk, sizeof(chunk));
      if (n > 0) {
        IngestBytes(conn, std::string_view(chunk, static_cast<size_t>(n)));
        if (conn->close_after_flush) {
          return true;  // fatal framing error already answered
        }
        // Paused? Leave the rest of the socket buffer for later.
        if (ReadPaused(*conn)) {
          return true;
        }
        continue;
      }
      if (n == 0) {
        conn->read_closed = true;
        FinishInput(conn);
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      if (errno == EINTR) {
        continue;
      }
      return false;  // ECONNRESET and friends
    }
  }

  // Feeds raw bytes into the connection's current codec, dispatching
  // every complete request and handling protocol switches.
  void IngestBytes(Connection* conn, std::string_view bytes) {
    if (!conn->sniffed && !bytes.empty()) {
      conn->sniffed = true;
      if (conn->wire == api::WireProtocol::kNdjson &&
          static_cast<uint8_t>(bytes[0]) == api::kBinaryMagic) {
        // A binary-first client: 0xB2 can never start an NDJSON frame.
        conn->wire = api::WireProtocol::kBinary;
      }
    }
    if (conn->wire == api::WireProtocol::kNdjson) {
      bool framed_ok = conn->assembler.Append(bytes);
      DispatchBufferedLines(conn);
      if (conn->wire == api::WireProtocol::kBinary) {
        // Upgraded mid-buffer: everything after the handshake line is
        // already binary. Hand the raw tail to the frame assembler (the
        // line-length verdict no longer applies to those bytes).
        conn->frames.Append(conn->assembler.TakeTail());
        DispatchBufferedFrames(conn);
        return;
      }
      if (!framed_ok) {
        // Oversized line: one framed error (in FIFO position), then the
        // connection dies once everything before it flushed.
        api::Response error;
        error.status = api::ApiStatus::InvalidArgument(
            "request line exceeds " +
            std::to_string(server_->options_.max_line_bytes) + " bytes");
        FailFraming(conn, api::EncodeResponse(error) + "\n");
      }
      return;
    }
    conn->frames.Append(bytes);
    DispatchBufferedFrames(conn);
  }

  // EOF: flush whatever the codec still buffers.
  void FinishInput(Connection* conn) {
    if (conn->wire == api::WireProtocol::kNdjson) {
      // Tolerant framing: an unterminated final line still counts.
      std::string tail = conn->assembler.TakeTail();
      if (!tail.empty() && !HandleUpgrade(conn, tail)) {
        DispatchRequest(conn, std::move(tail), /*binary=*/false);
      }
    } else if (conn->frames.buffered() > 0 && !conn->frames.faulted()) {
      // A truncated trailing binary frame still gets a framed answer.
      api::Response error;
      error.status = api::ApiStatus::InvalidArgument(
          "truncated binary frame at end of stream");
      conn->ready.emplace(conn->next_seq++,
                          api::EncodeResponseBinary(error));
    }
  }

  // Answers a fatal framing error with `frame` and schedules the close.
  void FailFraming(Connection* conn, std::string frame) {
    conn->ready.emplace(conn->next_seq++, std::move(frame));
    conn->read_closed = true;
    conn->close_after_flush = true;
    server_->closed_oversized_->Increment();
  }

  void DispatchBufferedLines(Connection* conn) {
    // Stops as soon as an upgrade flips the wire — the remaining buffered
    // bytes are binary frames, not lines.
    while (conn->wire == api::WireProtocol::kNdjson) {
      std::optional<std::string> line = conn->assembler.NextLine();
      if (!line.has_value()) {
        break;
      }
      if (line->empty()) {
        continue;  // tolerant framing: blank lines are ignored
      }
      if (HandleUpgrade(conn, *line)) {
        continue;
      }
      DispatchRequest(conn, std::move(*line), /*binary=*/false);
    }
  }

  void DispatchBufferedFrames(Connection* conn) {
    while (std::optional<std::string> frame = conn->frames.NextFrame()) {
      DispatchRequest(conn, std::move(*frame), /*binary=*/true);
    }
    if (conn->frames.faulted() && !conn->close_after_flush) {
      // Bad magic or oversized payload: binary framing cannot resync, so
      // answer once (id 0 — the header is untrustworthy) and close.
      api::Response error;
      error.status =
          api::ApiStatus::InvalidArgument(conn->frames.fault_message());
      FailFraming(conn, api::EncodeResponseBinary(error));
    }
  }

  // Consumes `line` when it is the transport-level upgrade handshake.
  // Accepting it acknowledges with a bare OK (in FIFO position, still
  // NDJSON) and flips the connection's codec; every later byte is binary.
  bool HandleUpgrade(Connection* conn, const std::string& line) {
    if (line.find("\"upgrade\"") == std::string::npos) {
      return false;  // cheap reject before parsing
    }
    std::optional<api::UpgradeRequest> upgrade =
        api::ParseUpgradeLine(line);
    if (!upgrade.has_value()) {
      return false;
    }
    uint64_t seq = conn->next_seq++;
    ++conn->requests;
    if (upgrade->protocol == api::kBinaryProtocolVersion) {
      conn->ready.emplace(seq, api::EncodeUpgradeAccept(upgrade->id) + "\n");
      conn->wire = api::WireProtocol::kBinary;
    } else {
      // Unknown target protocol: refuse, stay on NDJSON.
      api::Response error;
      error.id = upgrade->id;
      error.status = api::ApiStatus::InvalidArgument(
          "unsupported protocol " + std::to_string(upgrade->protocol) +
          " (this server can upgrade to protocol " +
          std::to_string(api::kBinaryProtocolVersion) + ")");
      conn->ready.emplace(seq, api::EncodeResponse(error) + "\n");
    }
    return true;
  }

  void DispatchRequest(Connection* conn, std::string payload, bool binary) {
    uint64_t seq = conn->next_seq++;
    ++conn->in_flight;
    ++conn->requests;
    server_->dispatched_->Increment();
    api::ConnectionContext context;
    context.connections_active = server_->active_->Value();
    context.connections_accepted = server_->accepted_->Value();
    context.connection_requests_served = conn->requests;
    context.connection_id = static_cast<int64_t>(conn->id);
    ConnectionServer* server = server_;
    uint64_t id = conn->id;
    // Started here, stopped by the worker: the gap is the time the
    // request sat in the dispatch queue behind other work.
    telemetry::Timer queue_timer;
    pool_->Submit([server, id, seq, context, binary, queue_timer,
                   payload = std::move(payload)]() {
      queue_timer.RecordInto(server->queue_wait_ns_);
      Completion done;
      done.connection_id = id;
      done.seq = seq;
      if (binary) {
        done.frame = server->frontend_->DispatchFrame(payload, context);
      } else {
        done.frame = server->frontend_->DispatchLine(payload, context);
        done.frame += '\n';
      }
      {
        MutexLock lock(server->completions_mu_);
        server->completions_.push_back(std::move(done));
      }
      server->Wake();
    });
  }

  void DeliverCompletions() {
    std::vector<Completion> batch;
    {
      MutexLock lock(server_->completions_mu_);
      batch.swap(server_->completions_);
    }
    for (Completion& done : batch) {
      auto it = connections_.find(done.connection_id);
      if (it == connections_.end()) {
        continue;  // connection died before its response was ready
      }
      Connection* conn = it->second.get();
      --conn->in_flight;
      conn->ready.emplace(done.seq, std::move(done.frame));
    }
    // Flush every connection that may have gained writable frames. The
    // batch may hold several completions per connection; settling per
    // unique connection id after the loop would be marginally cheaper
    // but batches are small (bounded by in-flight dispatches).
    for (const Completion& done : batch) {
      auto it = connections_.find(done.connection_id);
      if (it != connections_.end()) {
        Settle(it->second.get());
      }
    }
  }

  bool ReadPaused(const Connection& conn) const {
    return conn.out.size() - conn.out_pos >
               server_->options_.read_pause_threshold ||
           conn.in_flight >=
               server_->options_.max_in_flight_per_connection;
  }

  // Folds this connection's unsent-output and read-pause state into the
  // server-wide gauge/counter. Counts pause *transitions* (entering the
  // paused state), not iterations spent paused.
  void UpdateBackpressureTelemetry(Connection* conn) {
    size_t unsent = conn->out.size() - conn->out_pos;
    if (unsent != conn->reported_unsent) {
      server_->write_buffer_bytes_->Add(static_cast<int64_t>(unsent) -
                                        static_cast<int64_t>(
                                            conn->reported_unsent));
      conn->reported_unsent = unsent;
    }
    bool paused_now = !conn->read_closed && ReadPaused(*conn);
    if (paused_now && !conn->counted_paused) {
      server_->backpressure_pauses_->Increment();
    }
    conn->counted_paused = paused_now;
  }

  // Moves consecutive completed frames into the write buffer (FIFO per
  // connection), writes what the socket accepts, enforces backpressure,
  // updates epoll interest, and closes the connection when finished.
  void Settle(Connection* conn) {
    while (true) {
      auto it = conn->ready.find(conn->flush_seq);
      if (it == conn->ready.end()) break;
      conn->out += it->second;
      conn->ready.erase(it);
      ++conn->flush_seq;
    }
    if (!TryWrite(conn)) {
      Close(conn, nullptr);
      return;
    }
    UpdateBackpressureTelemetry(conn);
    size_t unsent = conn->out.size() - conn->out_pos;
    if (unsent > server_->options_.max_pending_output) {
      // Slow client: it is not draining responses as fast as it
      // pipelines requests. Cut it loose rather than buffer unboundedly.
      Close(conn, server_->closed_slow_);
      return;
    }
    bool finished = (conn->read_closed || conn->close_after_flush) &&
                    conn->in_flight == 0 && conn->ready.empty() &&
                    unsent == 0;
    if (finished) {
      Close(conn, nullptr);
      return;
    }
    if (!conn->pollable) {
      return;  // scheduled synthetically, never registered
    }
    uint32_t want = 0;
    if (!conn->read_closed && !ReadPaused(*conn)) want |= EPOLLIN;
    if (unsent > 0) want |= EPOLLOUT;
    if (conn->in_fd == conn->out_fd) {
      UpdateRegistration(conn->in_fd, conn->id, want,
                         &conn->in_registered, &conn->in_events);
    } else {
      UpdateRegistration(conn->in_fd, conn->id, want & EPOLLIN,
                         &conn->in_registered, &conn->in_events);
      UpdateRegistration(conn->out_fd, conn->id | kWriteTagBit,
                         want & EPOLLOUT, &conn->out_registered,
                         &conn->out_events);
    }
  }

  // Writes buffered output until the fd would block. Returns false on a
  // hard error (peer gone).
  bool TryWrite(Connection* conn) {
    while (conn->out_pos < conn->out.size()) {
      ssize_t n = ::write(conn->out_fd, conn->out.data() + conn->out_pos,
                          conn->out.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // EPIPE/ECONNRESET: the client is gone
    }
    conn->out.clear();
    conn->out_pos = 0;
    return true;
  }

  void Close(Connection* conn, telemetry::Counter* reason_counter) {
    if (reason_counter != nullptr) {
      reason_counter->Increment();
    }
    if (conn->reported_unsent != 0) {
      // Whatever this connection still had buffered leaves with it.
      server_->write_buffer_bytes_->Add(
          -static_cast<int64_t>(conn->reported_unsent));
      conn->reported_unsent = 0;
    }
    if (conn->in_registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->in_fd, nullptr);
    }
    if (conn->out_registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->out_fd, nullptr);
    }
    if (!conn->pollable) {
      --unpollable_connections_;
    }
    // Discard whatever the client pipelined past what we answered:
    // closing a unix socket with unread buffered input resets the peer,
    // which would destroy the already-delivered responses sitting in its
    // receive buffer (drained shutdowns would look like ECONNRESET).
    char discard[4096];
    while (::read(conn->in_fd, discard, sizeof(discard)) > 0) {
    }
    ::close(conn->in_fd);
    if (conn->out_fd != conn->in_fd) {
      ::close(conn->out_fd);
    }
    server_->active_->Add(-1);
    connections_.erase(conn->id);  // invalidates conn
  }

  void BeginDrain() {
    draining_ = true;
    drain_deadline_ms_ =
        MonotonicMillis() + server_->options_.drain_timeout_ms;
    if (listen_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Answer everything already read; ignore further input. Collect ids
    // first — Settle() may erase connections while we iterate.
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (auto& [id, conn] : connections_) {
      conn->read_closed = true;
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        Settle(it->second.get());
      }
    }
  }

  void ForceCloseAll() {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (auto& [id, conn] : connections_) {
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        Close(it->second.get(), nullptr);
      }
    }
  }

  ConnectionServer* server_;
  int listen_fd_;
  int stream_read_fd_;   // pre-connected stream, -1 in listener mode;
  int stream_write_fd_;  // reset to -1 once installed as a connection
  int epoll_fd_ = -1;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = kFirstConnectionId;
  size_t unpollable_connections_ = 0;
  bool draining_ = false;
  int64_t drain_deadline_ms_ = 0;
  // Fd exhaustion: the listener is deregistered and re-tried on a timed
  // wakeup instead of spinning or failing the loop.
  bool accept_paused_ = false;
  static constexpr int kAcceptRetryMillis = 100;
};

ConnectionServer::ConnectionServer(api::Frontend* frontend,
                                   const ConnectionServerOptions& options)
    : frontend_(frontend),
      options_(options),
      metrics_(std::make_shared<telemetry::MetricRegistry>()),
      accepted_(metrics_->counter("server.connections_accepted")),
      active_(metrics_->gauge("server.connections_active")),
      closed_slow_(metrics_->counter("server.closed_slow")),
      closed_oversized_(metrics_->counter("server.closed_oversized")),
      dispatched_(metrics_->counter("server.requests_dispatched")),
      epoll_wakeups_(metrics_->counter("server.epoll_wakeups")),
      backpressure_pauses_(
          metrics_->counter("server.backpressure_pauses")),
      write_buffer_bytes_(metrics_->gauge("server.write_buffer_bytes")),
      queue_wait_ns_(metrics_->histogram("server.queue_wait_ns")) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

ConnectionServer::~ConnectionServer() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ConnectionServer::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // write(2) is async-signal-safe; a full eventfd counter (EAGAIN) means
  // a wakeup is already pending, which is all we need.
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;
}

Status ConnectionServer::Serve(int listen_fd) {
  if (wake_fd_ < 0) {
    ::close(listen_fd);
    return Status::IOError("eventfd() failed at construction");
  }
  Loop loop(this, listen_fd);
  Status status = loop.Run();
  // Workers joined in ~Loop; late completions are discarded with the
  // connections already gone.
  {
    MutexLock lock(completions_mu_);
    completions_.clear();
  }
  return status;
}

Status ConnectionServer::ServeConnection(int read_fd, int write_fd) {
  if (wake_fd_ < 0) {
    ::close(read_fd);
    if (write_fd != read_fd) ::close(write_fd);
    return Status::IOError("eventfd() failed at construction");
  }
  Loop loop(this, /*listen_fd=*/-1, read_fd, write_fd);
  Status status = loop.Run();
  {
    MutexLock lock(completions_mu_);
    completions_.clear();
  }
  return status;
}

void ConnectionServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

ConnectionServerStats ConnectionServer::stats() const {
  ConnectionServerStats stats;
  stats.connections_accepted = accepted_->Value();
  stats.connections_active = active_->Value();
  stats.connections_closed_slow = closed_slow_->Value();
  stats.connections_closed_oversized = closed_oversized_->Value();
  stats.requests_dispatched = dispatched_->Value();
  return stats;
}

}  // namespace server
}  // namespace wot
