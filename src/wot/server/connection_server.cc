#include "wot/server/connection_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "wot/api/codec.h"
#include "wot/api/unix_socket.h"
#include "wot/server/line_assembler.h"
#include "wot/util/logging.h"
#include "wot/util/thread_pool.h"

namespace wot {
namespace server {
namespace {

// epoll user-data tags for the two non-connection fds; connection ids
// start above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnectionId = 2;

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// Per-connection state, owned by the event-loop thread exclusively; the
// dispatch pool only ever sees (connection_id, seq, line) copies.
struct ConnectionServer::Connection {
  Connection(uint64_t id_in, int fd_in, size_t max_line_bytes)
      : id(id_in), fd(fd_in), assembler(max_line_bytes) {}

  uint64_t id;
  int fd;
  LineAssembler assembler;

  uint64_t next_seq = 0;   // assigned to requests in arrival order
  uint64_t flush_seq = 0;  // next seq to append to the write buffer
  std::map<uint64_t, std::string> ready;  // out-of-order completions
  size_t in_flight = 0;  // dispatched to the pool, not yet in `ready`

  std::string out;      // encoded frames awaiting write
  size_t out_pos = 0;   // bytes of `out` already written
  uint32_t events = 0;  // last epoll interest mask
  // Whether the fd is currently in the epoll set. A connection with no
  // interest (paused or half-closed, waiting on the pool) is
  // deregistered entirely: epoll reports EPOLLHUP regardless of the
  // mask, so leaving a hung-up fd registered would busy-spin the loop.
  bool registered = true;

  bool read_closed = false;       // EOF seen, or the server is draining
  bool close_after_flush = false; // fatal framing error: flush, then die
  int64_t requests = 0;           // lines read off this connection
};

// The per-Serve() event loop. Split from the server object so Serve()'s
// state (epoll fd, connection table, pool) has clean RAII teardown while
// the ConnectionServer itself stays reusable for stats after returning.
class ConnectionServer::Loop {
 public:
  Loop(ConnectionServer* server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {}

  ~Loop() {
    // The pool joins first (it references the completion queue and the
    // wake fd, both of which must still be alive).
    pool_.reset();
    for (auto& [id, conn] : connections_) {
      ::close(conn->fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Run() {
    WOT_RETURN_IF_ERROR(api::SetNonBlocking(listen_fd_));
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IOError(std::string("epoll_create1(): ") +
                             std::strerror(errno));
    }
    WOT_RETURN_IF_ERROR(Register(listen_fd_, kListenTag, EPOLLIN));
    WOT_RETURN_IF_ERROR(Register(server_->wake_fd_, kWakeTag, EPOLLIN));

    int threads = server_->options_.num_threads;
    pool_ = std::make_unique<ThreadPool>(
        threads < 1 ? 1 : static_cast<size_t>(threads));

    while (true) {
      if (draining_ && connections_.empty()) {
        return Status::OK();
      }
      int timeout = -1;
      if (draining_) {
        int64_t remaining = drain_deadline_ms_ - NowMillis();
        if (remaining <= 0) {
          ForceCloseAll();
          return Status::OK();
        }
        timeout = static_cast<int>(remaining);
      } else if (accept_paused_) {
        timeout = kAcceptRetryMillis;  // bounded back-off, then retry
      }
      epoll_event events[64];
      int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("epoll_wait(): ") +
                               std::strerror(errno));
      }
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        if (tag == kWakeTag) {
          DrainWakeFd();
        } else if (tag == kListenTag) {
          WOT_RETURN_IF_ERROR(AcceptAll());
        } else {
          HandleConnectionEvent(tag, events[i].events);
        }
      }
      DeliverCompletions();
      if (accept_paused_ && !draining_) {
        // Closed connections may have freed fds; resume accepting.
        if (Register(listen_fd_, kListenTag, EPOLLIN).ok()) {
          accept_paused_ = false;
          WOT_RETURN_IF_ERROR(AcceptAll());
        }
      }
      if (server_->stop_requested_.load(std::memory_order_acquire) &&
          !draining_) {
        BeginDrain();
      }
    }
  }

 private:
  Status Register(int fd, uint64_t tag, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Status::IOError(std::string("epoll_ctl(ADD): ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  void DrainWakeFd() {
    uint64_t count = 0;
    // Nonblocking eventfd: EAGAIN just means another drain got it first.
    ssize_t n = ::read(server_->wake_fd_, &count, sizeof(count));
    (void)n;
  }

  Status AcceptAll() {
    while (true) {
      bool exhausted = false;
      Result<int> accepted =
          api::AcceptNonBlocking(listen_fd_, &exhausted);
      if (!accepted.ok()) {
        return accepted.status();
      }
      int fd = accepted.ValueOrDie();
      if (fd < 0) {
        if (exhausted && !accept_paused_) {
          // Out of fds: stop accepting for a beat rather than busy-spin
          // on a level-triggered listener we cannot accept from (or,
          // worse, kill the healthy connections by failing the loop).
          WOT_LOG(Warning) << "connection server out of descriptors; "
                              "pausing accept for "
                           << kAcceptRetryMillis << " ms";
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_,
                          nullptr) == 0) {
            accept_paused_ = true;
          }
        }
        return Status::OK();
      }
      if (!api::SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      uint64_t id = next_connection_id_++;
      auto conn = std::make_unique<Connection>(
          id, fd, server_->options_.max_line_bytes);
      conn->events = EPOLLIN;
      if (!Register(fd, id, EPOLLIN).ok()) {
        ::close(fd);
        continue;
      }
      connections_.emplace(id, std::move(conn));
      server_->accepted_.fetch_add(1, std::memory_order_relaxed);
      server_->active_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void HandleConnectionEvent(uint64_t id, uint32_t events) {
    auto it = connections_.find(id);
    if (it == connections_.end()) {
      return;  // closed earlier this wakeup
    }
    Connection* conn = it->second.get();
    if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0 &&
        !conn->read_closed) {
      if (!ReadFromConnection(conn)) {
        Close(conn, nullptr);
        return;
      }
    }
    if ((events & EPOLLOUT) != 0) {
      if (!TryWrite(conn)) {
        Close(conn, nullptr);
        return;
      }
    }
    Settle(conn);
  }

  // Reads until EAGAIN/EOF, dispatching every complete line. Returns
  // false on a hard transport error (caller closes the connection).
  bool ReadFromConnection(Connection* conn) {
    while (true) {
      char chunk[16384];
      ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
      if (n > 0) {
        bool framed_ok = conn->assembler.Append(
            std::string_view(chunk, static_cast<size_t>(n)));
        DispatchBufferedLines(conn);
        if (!framed_ok) {
          // Oversized line: one framed error (in FIFO position), then
          // the connection dies once everything before it flushed.
          api::Response error;
          error.status = api::ApiStatus::InvalidArgument(
              "request line exceeds " +
              std::to_string(server_->options_.max_line_bytes) +
              " bytes");
          conn->ready.emplace(conn->next_seq++,
                              api::EncodeResponse(error) + "\n");
          conn->read_closed = true;
          conn->close_after_flush = true;
          server_->closed_oversized_.fetch_add(1,
                                               std::memory_order_relaxed);
          return true;
        }
        // Paused? Leave the rest of the socket buffer for later.
        if (ReadPaused(*conn)) {
          return true;
        }
        continue;
      }
      if (n == 0) {
        conn->read_closed = true;
        // Tolerant framing: an unterminated final line still counts.
        std::string tail = conn->assembler.TakeTail();
        if (!tail.empty()) {
          DispatchLine(conn, std::move(tail));
        }
        return true;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      }
      if (errno == EINTR) {
        continue;
      }
      return false;  // ECONNRESET and friends
    }
  }

  void DispatchBufferedLines(Connection* conn) {
    while (std::optional<std::string> line = conn->assembler.NextLine()) {
      if (line->empty()) {
        continue;  // tolerant framing: blank lines are ignored
      }
      DispatchLine(conn, std::move(*line));
    }
  }

  void DispatchLine(Connection* conn, std::string line) {
    uint64_t seq = conn->next_seq++;
    ++conn->in_flight;
    ++conn->requests;
    server_->dispatched_.fetch_add(1, std::memory_order_relaxed);
    api::ConnectionContext context;
    context.connections_active =
        server_->active_.load(std::memory_order_relaxed);
    context.connections_accepted =
        server_->accepted_.load(std::memory_order_relaxed);
    context.connection_requests_served = conn->requests;
    ConnectionServer* server = server_;
    uint64_t id = conn->id;
    pool_->Submit([server, id, seq, context,
                   line = std::move(line)]() {
      Completion done;
      done.connection_id = id;
      done.seq = seq;
      done.frame = server->frontend_->DispatchLine(line, context);
      done.frame += '\n';
      {
        std::lock_guard<std::mutex> lock(server->completions_mu_);
        server->completions_.push_back(std::move(done));
      }
      server->Wake();
    });
  }

  void DeliverCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(server_->completions_mu_);
      batch.swap(server_->completions_);
    }
    for (Completion& done : batch) {
      auto it = connections_.find(done.connection_id);
      if (it == connections_.end()) {
        continue;  // connection died before its response was ready
      }
      Connection* conn = it->second.get();
      --conn->in_flight;
      conn->ready.emplace(done.seq, std::move(done.frame));
    }
    // Flush every connection that may have gained writable frames. The
    // batch may hold several completions per connection; settling per
    // unique connection id after the loop would be marginally cheaper
    // but batches are small (bounded by in-flight dispatches).
    for (const Completion& done : batch) {
      auto it = connections_.find(done.connection_id);
      if (it != connections_.end()) {
        Settle(it->second.get());
      }
    }
  }

  bool ReadPaused(const Connection& conn) const {
    return conn.out.size() - conn.out_pos >
               server_->options_.read_pause_threshold ||
           conn.in_flight >=
               server_->options_.max_in_flight_per_connection;
  }

  // Moves consecutive completed frames into the write buffer (FIFO per
  // connection), writes what the socket accepts, enforces backpressure,
  // updates epoll interest, and closes the connection when finished.
  void Settle(Connection* conn) {
    while (true) {
      auto it = conn->ready.find(conn->flush_seq);
      if (it == conn->ready.end()) break;
      conn->out += it->second;
      conn->ready.erase(it);
      ++conn->flush_seq;
    }
    if (!TryWrite(conn)) {
      Close(conn, nullptr);
      return;
    }
    size_t unsent = conn->out.size() - conn->out_pos;
    if (unsent > server_->options_.max_pending_output) {
      // Slow client: it is not draining responses as fast as it
      // pipelines requests. Cut it loose rather than buffer unboundedly.
      Close(conn, &server_->closed_slow_);
      return;
    }
    bool finished = (conn->read_closed || conn->close_after_flush) &&
                    conn->in_flight == 0 && conn->ready.empty() &&
                    unsent == 0;
    if (finished) {
      Close(conn, nullptr);
      return;
    }
    uint32_t want = 0;
    if (!conn->read_closed && !ReadPaused(*conn)) want |= EPOLLIN;
    if (unsent > 0) want |= EPOLLOUT;
    if (want == 0) {
      if (conn->registered &&
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr) == 0) {
        conn->registered = false;
      }
    } else if (!conn->registered) {
      epoll_event ev{};
      ev.events = want;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev) == 0) {
        conn->registered = true;
        conn->events = want;
      }
    } else if (want != conn->events) {
      epoll_event ev{};
      ev.events = want;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
        conn->events = want;
      }
    }
  }

  // Writes buffered output until the socket would block. Returns false
  // on a hard error (peer gone).
  bool TryWrite(Connection* conn) {
    while (conn->out_pos < conn->out.size()) {
      ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                          conn->out.size() - conn->out_pos);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // EPIPE/ECONNRESET: the client is gone
    }
    conn->out.clear();
    conn->out_pos = 0;
    return true;
  }

  void Close(Connection* conn, std::atomic<int64_t>* reason_counter) {
    if (reason_counter != nullptr) {
      reason_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (conn->registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    }
    // Discard whatever the client pipelined past what we answered:
    // closing a unix socket with unread buffered input resets the peer,
    // which would destroy the already-delivered responses sitting in its
    // receive buffer (drained shutdowns would look like ECONNRESET).
    char discard[4096];
    while (::read(conn->fd, discard, sizeof(discard)) > 0) {
    }
    ::close(conn->fd);
    server_->active_.fetch_add(-1, std::memory_order_relaxed);
    connections_.erase(conn->id);  // invalidates conn
  }

  void BeginDrain() {
    draining_ = true;
    drain_deadline_ms_ = NowMillis() + server_->options_.drain_timeout_ms;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Answer everything already read; ignore further input. Collect ids
    // first — Settle() may erase connections while we iterate.
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (auto& [id, conn] : connections_) {
      conn->read_closed = true;
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        Settle(it->second.get());
      }
    }
  }

  void ForceCloseAll() {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (auto& [id, conn] : connections_) {
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        Close(it->second.get(), nullptr);
      }
    }
  }

  ConnectionServer* server_;
  int listen_fd_;
  int epoll_fd_ = -1;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = kFirstConnectionId;
  bool draining_ = false;
  int64_t drain_deadline_ms_ = 0;
  // Fd exhaustion: the listener is deregistered and re-tried on a timed
  // wakeup instead of spinning or failing the loop.
  bool accept_paused_ = false;
  static constexpr int kAcceptRetryMillis = 100;
};

ConnectionServer::ConnectionServer(api::Frontend* frontend,
                                   const ConnectionServerOptions& options)
    : frontend_(frontend), options_(options) {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
}

ConnectionServer::~ConnectionServer() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ConnectionServer::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // write(2) is async-signal-safe; a full eventfd counter (EAGAIN) means
  // a wakeup is already pending, which is all we need.
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;
}

Status ConnectionServer::Serve(int listen_fd) {
  if (wake_fd_ < 0) {
    ::close(listen_fd);
    return Status::IOError("eventfd() failed at construction");
  }
  Loop loop(this, listen_fd);
  Status status = loop.Run();
  // Workers joined in ~Loop; late completions are discarded with the
  // connections already gone.
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.clear();
  }
  return status;
}

void ConnectionServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  Wake();
}

ConnectionServerStats ConnectionServer::stats() const {
  ConnectionServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_active = active_.load(std::memory_order_relaxed);
  stats.connections_closed_slow =
      closed_slow_.load(std::memory_order_relaxed);
  stats.connections_closed_oversized =
      closed_oversized_.load(std::memory_order_relaxed);
  stats.requests_dispatched =
      dispatched_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace server
}  // namespace wot
