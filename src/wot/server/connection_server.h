// ConnectionServer: a concurrent connection front for the trust service.
//
// One epoll event loop multiplexes any number of simultaneously connected
// clients over a single shared api::Frontend (a ServiceFrontend or
// a ShardRouter — the server is implementation-agnostic), and a fixed
// dispatch pool (--threads) executes requests in parallel — queries run
// lock-free against the published TrustSnapshot (snapshot-resident name
// index included), so reader throughput scales with the pool while
// ingest/commit requests serialize inside TrustService's writer lock.
//
// Guarantees (see docs/wire_protocol.md, "Connection lifecycle"):
//   * Per-connection FIFO: responses are written in the order the
//     requests arrived on that connection, even though the pool may
//     finish them out of order (the loop holds completed frames until
//     every earlier frame of the same connection is ready).
//   * No cross-connection ordering: requests from different connections
//     interleave arbitrarily through the pool.
//   * Backpressure: each connection's pending output is bounded
//     (max_pending_output); a client that stops reading while responses
//     accumulate is disconnected rather than allowed to grow the buffer.
//     Reading from a connection pauses while its output backlog is high,
//     so one pipelining firehose cannot monopolize the dispatch pool.
//   * Framing bound: a single request line longer than max_line_bytes
//     (or a binary frame whose payload exceeds it) is answered with a
//     framed INVALID_ARGUMENT and the connection closed.
//   * Graceful shutdown: RequestStop() (async-signal-safe; wired to
//     SIGINT/SIGTERM by wot_served) stops accepting, answers every
//     request already read, flushes write buffers, then Serve() returns.
//     Connections still open after drain_timeout_ms are force-closed.
//
// Wire protocols: each connection starts in options.initial_protocol
// (NDJSON by default) and carries its own codec state. An NDJSON
// connection switches to the v2 binary framing either through the
// {"v":1,"method":"upgrade","protocol":2} handshake (acknowledged with a
// bare OK in FIFO position; every frame after the handshake line is
// binary) or by starting its very first byte with the binary frame magic
// — see docs/wire_protocol.md, "v2 binary framing".
//
// The server owns no service state: construct it over any frontend, call
// Serve(listen_fd) — or ServeConnection(read_fd, write_fd) for an
// already-connected byte stream such as stdin/stdout — on the serving
// thread (it blocks), RequestStop() from anywhere. One Serve*() call per
// server instance.
#ifndef WOT_SERVER_CONNECTION_SERVER_H_
#define WOT_SERVER_CONNECTION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wot/api/binary_codec.h"
#include "wot/api/frontend.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/macros.h"
#include "wot/util/result.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace server {

struct ConnectionServerOptions {
  /// Dispatch pool size (values < 1 are clamped to 1). Query-heavy
  /// workloads scale with this; ingest serializes in the service anyway.
  int num_threads = 4;
  /// Per-connection cap on buffered unsent response bytes; beyond it the
  /// client is deemed too slow and disconnected.
  size_t max_pending_output = 4 * 1024 * 1024;
  /// Per-request framing bound (one NDJSON line).
  size_t max_line_bytes = 1024 * 1024;
  /// Reading from a connection pauses while its unsent output exceeds
  /// this (resumes once the backlog drains). Defaults to half the
  /// disconnect cap.
  size_t read_pause_threshold = 2 * 1024 * 1024;
  /// In-flight dispatches per connection before reading pauses.
  size_t max_in_flight_per_connection = 1024;
  /// Grace period for the shutdown drain before force-closing.
  int drain_timeout_ms = 5000;
  /// The framing every connection starts in. With kNdjson, binary-first
  /// clients are still sniffed by their magic first byte; with kBinary,
  /// connections speak v2 frames from the first byte (no NDJSON, no
  /// handshake).
  api::WireProtocol initial_protocol = api::WireProtocol::kNdjson;
};

/// \brief Aggregate serving counters (readable from any thread).
struct ConnectionServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t connections_closed_slow = 0;       ///< backpressure disconnects
  int64_t connections_closed_oversized = 0;  ///< framing-bound disconnects
  int64_t requests_dispatched = 0;
};

class ConnectionServer {
 public:
  /// \p frontend must outlive the server and be shared-dispatch safe
  /// (every api::Frontend is).
  explicit ConnectionServer(api::Frontend* frontend,
                            const ConnectionServerOptions& options = {});
  ~ConnectionServer();
  WOT_DISALLOW_COPY_AND_MOVE(ConnectionServer);

  /// \brief Serves until RequestStop(). Takes ownership of \p listen_fd
  /// (a bound+listening socket, e.g. from api::ListenUnixSocket). Blocks
  /// the calling thread; returns OK after a clean drain, or the first
  /// fatal event-loop error.
  Status Serve(int listen_fd);

  /// \brief Serves one already-connected byte stream — e.g. stdin/stdout
  /// — through the same event loop, dispatch pool and drain semantics as
  /// Serve(). Takes ownership of both fds (they may be equal; regular
  /// files work — an unpollable fd is treated as always ready, which is
  /// sound because regular files never block). Blocks until the stream
  /// hits EOF and every response flushed, or RequestStop().
  Status ServeConnection(int read_fd, int write_fd);

  /// \brief Initiates graceful shutdown. Thread-safe and
  /// async-signal-safe (an atomic store plus an eventfd write), so it
  /// may be called directly from a SIGINT/SIGTERM handler.
  void RequestStop();

  ConnectionServerStats stats() const;

  /// \brief The registry this server records its transport metrics into
  /// (server.connections_*, server.requests_dispatched,
  /// server.epoll_wakeups, server.backpressure_pauses,
  /// server.queue_wait_ns, server.write_buffer_bytes — see
  /// docs/observability.md). stats() reads the same instruments, so the
  /// two views can never disagree. Register it on the serving frontend
  /// with AddMetricsSource to surface it in `metrics` responses.
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return metrics_;
  }

 private:
  struct Connection;
  struct Completion {
    uint64_t connection_id = 0;
    uint64_t seq = 0;
    std::string frame;  // encoded response (newline-terminated NDJSON,
                        // or one self-delimiting binary frame)
  };
  class Loop;  // owns the per-Serve epoll state

  void Wake();

  api::Frontend* frontend_;
  ConnectionServerOptions options_;

  std::atomic<bool> stop_requested_{false};
  int wake_fd_ = -1;  // eventfd: completions ready and/or stop requested

  // The pool-to-loop handoff: workers append under completions_mu_, the
  // event loop swaps the batch out under the same lock.
  Mutex completions_mu_;
  std::vector<Completion> completions_ WOT_GUARDED_BY(completions_mu_);

  // Transport instruments (resolved once at construction; the registry
  // outlives them). stats() and ConnectionContext snapshots read these
  // same counters, so `stats` responses and `metrics` scrapes agree by
  // construction.
  std::shared_ptr<telemetry::MetricRegistry> metrics_;
  telemetry::Counter* accepted_;
  telemetry::Gauge* active_;
  telemetry::Counter* closed_slow_;
  telemetry::Counter* closed_oversized_;
  telemetry::Counter* dispatched_;
  telemetry::Counter* epoll_wakeups_;
  telemetry::Counter* backpressure_pauses_;
  telemetry::Gauge* write_buffer_bytes_;
  telemetry::LatencyHistogram* queue_wait_ns_;

  friend class Loop;
};

}  // namespace server
}  // namespace wot

#endif  // WOT_SERVER_CONNECTION_SERVER_H_
