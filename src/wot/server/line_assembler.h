// LineAssembler: incremental '\n' framing over nonblocking reads.
//
// The ConnectionServer feeds whatever bytes epoll handed it and pops
// complete lines; bytes past the last newline stay buffered for the next
// read. Unlike api::FdLineReader (which owns the blocking read loop), the
// assembler is pure buffering, so it is unit-testable byte-by-byte and
// enforces the server's framing bound: a single line longer than
// max_line_bytes is a protocol violation reported through Append()
// returning false (the server answers with a framed error and drops the
// connection — unbounded lines would otherwise let one client grow the
// buffer without ever producing a request).
#ifndef WOT_SERVER_LINE_ASSEMBLER_H_
#define WOT_SERVER_LINE_ASSEMBLER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace wot {
namespace server {

class LineAssembler {
 public:
  explicit LineAssembler(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// \brief Buffers \p bytes. Returns false when the unterminated tail
  /// now exceeds max_line_bytes (sticky: the connection should be
  /// dropped). Lines completed by this append are still poppable via
  /// NextLine() — only the oversized tail is poisoned.
  bool Append(std::string_view bytes);

  /// \brief Pops the next complete line, terminator stripped. nullopt
  /// when no full line is buffered.
  std::optional<std::string> NextLine();

  /// \brief The unterminated tail (tolerant NDJSON framing treats it as
  /// a final line at EOF). Leaves the assembler empty.
  std::string TakeTail();

  /// Bytes buffered beyond the last popped line.
  size_t buffered() const { return buffer_.size() - start_; }
  bool overflowed() const { return overflowed_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  size_t start_ = 0;  // first unconsumed byte
  bool overflowed_ = false;
};

}  // namespace server
}  // namespace wot

#endif  // WOT_SERVER_LINE_ASSEMBLER_H_
