#include "wot/server/line_assembler.h"

namespace wot {
namespace server {

bool LineAssembler::Append(std::string_view bytes) {
  buffer_.append(bytes);
  if (overflowed_) {
    return false;
  }
  // Only the *unterminated* tail is bounded: if a newline arrives within
  // the budget, the line is legal no matter how the reads were chunked.
  size_t last_newline = buffer_.rfind('\n');
  size_t tail_start =
      (last_newline != std::string::npos && last_newline + 1 > start_)
          ? last_newline + 1
          : start_;
  if (buffer_.size() - tail_start > max_line_bytes_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

std::optional<std::string> LineAssembler::NextLine() {
  size_t newline = buffer_.find('\n', start_);
  if (newline == std::string::npos) {
    // Reclaim the consumed prefix once it dominates the buffer.
    if (start_ > 0 && start_ >= buffer_.size() / 2) {
      buffer_.erase(0, start_);
      start_ = 0;
    }
    return std::nullopt;
  }
  std::string line = buffer_.substr(start_, newline - start_);
  start_ = newline + 1;
  return line;
}

std::string LineAssembler::TakeTail() {
  std::string tail = buffer_.substr(start_);
  buffer_.clear();
  start_ = 0;
  return tail;
}

}  // namespace server
}  // namespace wot
