// ReplicaFrontend: the follower's serving surface — reads pass through,
// writes are rejected until promotion.
//
// Wraps the ServiceFrontend over a ReplicaService's mirrored
// TrustService. While role() is kReplica every mutating method
// (ingest_* and commit) answers a framed INVALID_ARGUMENT pointing the
// caller at the primary; queries, stats and metrics serve normally from
// the replica's snapshots. The instant Promote() flips the role the
// gate opens — no restart, no dropped connections — which is what makes
// `wot_cli replica promote` a failover and not a redeploy.
//
// The gate is a separate Frontend (not a ServiceFrontend mode) so the
// primary serving path stays byte-identical to previous releases and
// the property tests can diff the two directly.
#ifndef WOT_REPLICATION_REPLICA_FRONTEND_H_
#define WOT_REPLICATION_REPLICA_FRONTEND_H_

#include "wot/api/api.h"
#include "wot/api/frontend.h"
#include "wot/replication/replica_service.h"

namespace wot {
namespace replication {

/// \brief True for the payloads a follower must refuse (ingest_*,
/// commit).
bool IsMutationPayload(const api::RequestPayload& payload);

/// \brief Serves reads from a replica's service; gates writes on role.
class ReplicaFrontend : public api::Frontend {
 public:
  /// \p inner must front the \p replica's own service; both must
  /// outlive this frontend. The replica is attached as the replication
  /// handler. The mirrored service's registry and the replica's own are
  /// scrape sources here; the inner envelope's registry is deliberately
  /// NOT (this envelope already counts every request once).
  ReplicaFrontend(api::ServiceFrontend* inner, ReplicaService* replica)
      : inner_(inner), replica_(replica) {
    set_replication_handler(replica_);
    AddMetricsSource(inner_->service()->metrics_registry());
    AddMetricsSource(replica_->metrics_registry());
  }

  uint64_t TelemetryEpoch() const override {
    return replica_->applied_version();
  }

 protected:
  api::Response DispatchPayload(
      const api::Request& request,
      const api::ConnectionContext& connection) override;

 private:
  api::ServiceFrontend* inner_;
  ReplicaService* replica_;
};

}  // namespace replication
}  // namespace wot

#endif  // WOT_REPLICATION_REPLICA_FRONTEND_H_
