#include "wot/replication/replica_service.h"

#include <utility>

#include "wot/replication/replication_source.h"
#include "wot/storage/fs_util.h"
#include "wot/storage/wal.h"
#include "wot/telemetry/timed.h"
#include "wot/util/logging.h"

namespace wot {
namespace replication {

using api::ApiStatus;
using api::ErrorResponse;
using api::ReplArtifactKind;
using api::ReplFetchResult;
using api::ReplRole;
using api::Response;

ReplicaService::ReplicaService(std::string dir,
                               std::unique_ptr<api::ApiClient> upstream,
                               ReplicaOptions options)
    : dir_(std::move(dir)),
      options_(options),
      source_(std::make_unique<ReplicationSource>(
          dir_, /*num_shards=*/1,
          [this](int64_t) { return applied_version(); })),
      metrics_(std::make_shared<telemetry::MetricRegistry>()),
      lag_epochs_(metrics_->gauge("replication.lag_epochs")),
      catchup_ns_(metrics_->histogram("replication.catchup_ns")),
      applied_records_(metrics_->counter("replication.applied_records")),
      failovers_(metrics_->counter("replication.failovers")),
      upstream_(std::move(upstream)),
      role_(static_cast<int64_t>(ReplRole::kReplica)) {}

Result<std::unique_ptr<ReplicaService>> ReplicaService::Create(
    std::string dir, std::unique_ptr<api::ApiClient> upstream,
    ReplicaOptions options) {
  WOT_RETURN_IF_ERROR(storage::EnsureDir(dir));
  std::unique_ptr<ReplicaService> replica(
      new ReplicaService(std::move(dir), std::move(upstream), options));

  WOT_ASSIGN_OR_RETURN(storage::StorageFileSet files,
                       storage::ListStorageFiles(replica->dir_));
  if (files.segments.empty()) {
    return replica;  // fresh: the first Step() bootstraps
  }

  // A previous replica (or primary) lived here: recover it locally and
  // resume from the WAL-delta cursor — never a full re-ship. The seed
  // provider must be unreachable (a populated directory recovers).
  Result<storage::StorageManager::BootResult> booted =
      storage::StorageManager::Boot(
          replica->dir_,
          []() -> Result<Dataset> {
            return Status::Internal(
                "replica recovery must not seed a fresh dataset");
          },
          options.service, options.storage);
  if (!booted.ok()) {
    return Status::Corruption(
        "replica directory '" + replica->dir_ +
        "' is not recoverable (wipe it to re-bootstrap): " +
        booted.status().message());
  }
  storage::StorageManager::BootResult boot = std::move(booted).ValueOrDie();

  MutexLock lock(replica->mu_);
  replica->manager_ = std::move(boot.manager);
  replica->service_ = std::move(boot.service);
  replica->service_ptr_.store(replica->service_.get(),
                              std::memory_order_release);
  replica->manager_ptr_.store(replica->manager_.get(),
                              std::memory_order_release);
  // Cursor recovery: the replica re-logged every applied record through
  // its own StorageManager with byte-identical framing, so the upstream
  // position is simply (our newest wal epoch, its valid byte length).
  DurabilityStats stats = replica->manager_->durability_stats();
  uint64_t epoch = static_cast<uint64_t>(stats.segment_epoch);
  for (const storage::StorageFile& wal : files.wals) {
    epoch = std::max(epoch, wal.number);
  }
  replica->cursor_epoch_ = epoch;
  replica->cursor_offset_ = static_cast<uint64_t>(stats.wal_bytes);
  return replica;
}

ReplicaService::~ReplicaService() { StopPuller(); }

uint64_t ReplicaService::applied_version() const {
  TrustService* service = service_ptr_.load(std::memory_order_acquire);
  return service == nullptr ? 0 : service->Snapshot()->version();
}

Result<ReplFetchResult> ReplicaService::Fetch(uint64_t epoch,
                                              uint64_t offset) {
  api::Request request;
  api::ReplFetchRequest fetch;
  fetch.shard = options_.shard;
  fetch.applied_version = epoch;
  fetch.offset = offset;
  request.payload = fetch;
  WOT_ASSIGN_OR_RETURN(Response response, upstream_->Call(request));
  if (!response.status.ok()) {
    return Status::Internal("upstream repl_fetch failed: " +
                            response.status.message);
  }
  const ReplFetchResult* result =
      std::get_if<ReplFetchResult>(&response.payload);
  if (result == nullptr) {
    return Status::Internal(
        "upstream repl_fetch answered with the wrong payload type");
  }
  return *result;
}

void ReplicaService::UpdateLag(uint64_t source) {
  source_version_.store(source, std::memory_order_release);
  const uint64_t applied = applied_version();
  lag_epochs_->Set(
      source > applied ? static_cast<int64_t>(source - applied) : 0);
}

Result<bool> ReplicaService::Step() {
  MutexLock lock(mu_);
  telemetry::Timer timer;
  Result<bool> progressed = StepLocked();
  timer.RecordInto(catchup_ns_);
  return progressed;
}

Result<bool> ReplicaService::StepLocked() {
  if (cursor_epoch_ == 0) {
    WOT_ASSIGN_OR_RETURN(ReplFetchResult artifact,
                         Fetch(0, bootstrap_buffer_.size()));
    return BootstrapStep(artifact);
  }
  WOT_ASSIGN_OR_RETURN(ReplFetchResult artifact,
                       Fetch(cursor_epoch_, cursor_offset_));
  return ApplyDelta(artifact);
}

Result<bool> ReplicaService::BootstrapStep(const ReplFetchResult& artifact) {
  if (artifact.kind != static_cast<int64_t>(ReplArtifactKind::kSegment)) {
    return Status::Internal(
        "bootstrap expected a segment chunk, got artifact kind " +
        std::to_string(artifact.kind));
  }
  if (artifact.base_version != bootstrap_version_) {
    // The source rotated to a newer segment mid-download: start over.
    if (bootstrap_version_ != 0) {
      WOT_LOG(Info) << "replica bootstrap restarting: source moved from "
                       "segment "
                    << bootstrap_version_ << " to "
                    << artifact.base_version;
    }
    bootstrap_version_ = artifact.base_version;
    bootstrap_buffer_.clear();
    if (artifact.offset != 0) {
      return true;  // re-request this segment from offset 0
    }
  }
  if (artifact.offset != bootstrap_buffer_.size()) {
    return Status::Internal(
        "bootstrap chunk at offset " + std::to_string(artifact.offset) +
        " does not continue the " +
        std::to_string(bootstrap_buffer_.size()) +
        " bytes downloaded so far");
  }
  bootstrap_buffer_ += artifact.payload;
  UpdateLag(artifact.source_version);
  if (bootstrap_buffer_.size() < artifact.total_bytes) {
    return !artifact.payload.empty();
  }

  // Download complete: persist the segment and recover from it — the
  // exact crash-recovery path, so the restored service is bit-identical
  // to the primary's snapshot at this version.
  const std::string path =
      storage::SegmentPath(dir_, bootstrap_version_);
  WOT_RETURN_IF_ERROR(storage::AtomicWriteFile(path, bootstrap_buffer_));
  bootstrap_buffer_.clear();
  bootstrap_buffer_.shrink_to_fit();
  Result<storage::StorageManager::BootResult> booted =
      storage::StorageManager::Boot(
          dir_,
          []() -> Result<Dataset> {
            return Status::Internal(
                "replica bootstrap must recover from the shipped "
                "segment, not seed");
          },
          options_.service, options_.storage);
  if (!booted.ok()) {
    return Status::Corruption("shipped segment did not boot: " +
                              booted.status().message());
  }
  storage::StorageManager::BootResult boot =
      std::move(booted).ValueOrDie();
  manager_ = std::move(boot.manager);
  service_ = std::move(boot.service);
  service_ptr_.store(service_.get(), std::memory_order_release);
  manager_ptr_.store(manager_.get(), std::memory_order_release);
  cursor_epoch_ = bootstrap_version_;
  cursor_offset_ = 0;
  UpdateLag(artifact.source_version);
  WOT_LOG(Info) << "replica bootstrapped from segment version "
                << bootstrap_version_ << " (" << artifact.total_bytes
                << " bytes); entering wal catch-up";
  return true;
}

Result<bool> ReplicaService::ApplyDelta(const ReplFetchResult& artifact) {
  if (artifact.kind == static_cast<int64_t>(ReplArtifactKind::kNone)) {
    UpdateLag(artifact.source_version);
    return false;
  }
  if (artifact.kind == static_cast<int64_t>(ReplArtifactKind::kSegment)) {
    // The source no longer holds our wal epoch: we fell past its
    // retention window. Re-bootstrapping would tear the service out
    // from under live readers, so demand an operator restart instead.
    return Status::FailedPrecondition(
        "replica fell behind the source's retention window (wal epoch " +
        std::to_string(cursor_epoch_) +
        " retired); wipe the replica directory and restart to "
        "re-bootstrap");
  }
  if (artifact.kind != static_cast<int64_t>(ReplArtifactKind::kWalDelta)) {
    return Status::Internal("unknown replication artifact kind " +
                            std::to_string(artifact.kind));
  }

  if (artifact.base_version != cursor_epoch_) {
    // The source switched us to the next wal epoch in the chain.
    if (artifact.offset != 0) {
      return Status::Internal(
          "epoch switch to wal-" + std::to_string(artifact.base_version) +
          " did not start at offset 0");
    }
    cursor_epoch_ = artifact.base_version;
    cursor_offset_ = 0;
  } else if (artifact.offset != cursor_offset_) {
    return Status::Internal(
        "wal delta at offset " + std::to_string(artifact.offset) +
        " does not continue our cursor at " +
        std::to_string(cursor_offset_));
  }

  TrustService* service = service_.get();
  Result<storage::WalScanStats> scanned = storage::ScanWalBuffer(
      artifact.payload, [service](const storage::WalRecord& record) {
        return storage::ApplyWalRecord(*service, record);
      });
  if (!scanned.ok()) {
    return Status::Corruption("shipped wal delta failed to apply: " +
                              scanned.status().message());
  }
  const storage::WalScanStats& stats = scanned.ValueOrDie();
  if (stats.truncated_bytes != 0) {
    return Status::Corruption(
        "shipped wal delta carries a torn frame (" +
        std::to_string(stats.truncated_bytes) +
        " trailing bytes); the source must ship complete records");
  }
  cursor_offset_ += stats.valid_bytes;
  applied_records_->Increment(static_cast<int64_t>(stats.records));
  UpdateLag(artifact.source_version);
  return stats.valid_bytes > 0;
}

Status ReplicaService::CatchUp() {
  for (;;) {
    WOT_ASSIGN_OR_RETURN(bool progressed, Step());
    if (!progressed) return Status::OK();
  }
}

void ReplicaService::StartPuller() {
  if (puller_.joinable()) return;
  {
    MutexLock lock(puller_mu_);
    puller_stop_ = false;
  }
  puller_ = std::thread([this] { PullerLoop(); });
}

void ReplicaService::StopPuller() {
  {
    MutexLock lock(puller_mu_);
    puller_stop_ = true;
    puller_cv_.NotifyAll();
  }
  if (puller_.joinable()) {
    puller_.join();
    puller_ = std::thread();
  }
}

void ReplicaService::PullerLoop() {
  for (;;) {
    {
      MutexLock lock(puller_mu_);
      if (puller_stop_) return;
    }
    Result<bool> progressed = Step();
    if (!progressed.ok()) {
      WOT_LOG(Warning) << "replica pull failed (retrying): "
                       << progressed.status().message();
    }
    if (progressed.ok() && progressed.ValueOrDie()) continue;
    MutexLock lock(puller_mu_);
    if (puller_stop_) return;
    puller_cv_.WaitForMillis(puller_mu_, options_.poll_millis);
  }
}

Status ReplicaService::Promote() {
  if (role() == ReplRole::kPrimary) return Status::OK();
  StopPuller();
  MutexLock lock(mu_);
  if (service_ == nullptr) {
    return Status::FailedPrecondition(
        "replica has not bootstrapped yet; nothing to promote");
  }
  // Final catch-up, best effort: the primary is usually already dead,
  // so fetch errors end the drain rather than failing the promotion.
  for (;;) {
    Result<bool> progressed = StepLocked();
    if (!progressed.ok()) {
      WOT_LOG(Info) << "promotion: final catch-up ended: "
                    << progressed.status().message();
      break;
    }
    if (!progressed.ValueOrDie()) break;
  }
  role_.store(static_cast<int64_t>(ReplRole::kPrimary),
              std::memory_order_release);
  failovers_->Increment();
  failover_count_.fetch_add(1, std::memory_order_acq_rel);
  WOT_LOG(Info) << "replica promoted to primary at version "
                << applied_version();
  return Status::OK();
}

Response ReplicaService::HandleReplFetch(
    const api::ReplFetchRequest& request) {
  if (role() != ReplRole::kPrimary) {
    return ErrorResponse(ApiStatus::Unimplemented(
        "this server is a replica; repl_fetch is served by its primary"));
  }
  return source_->HandleReplFetch(request);
}

Response ReplicaService::HandleReplStatus(const api::ReplStatusRequest&) {
  api::ReplStatusResult result;
  result.role = static_cast<int64_t>(role());
  result.applied_version = applied_version();
  result.source_version =
      role() == ReplRole::kPrimary
          ? result.applied_version
          : source_version_.load(std::memory_order_acquire);
  result.failovers = failover_count_.load(std::memory_order_acquire);
  Response response;
  response.payload = std::move(result);
  return response;
}

Response ReplicaService::HandleReplPromote(const api::ReplPromoteRequest&) {
  Status promoted = Promote();
  if (!promoted.ok()) {
    return ErrorResponse(
        ApiStatus::InvalidArgument(promoted.message()));
  }
  return HandleReplStatus(api::ReplStatusRequest{});
}

}  // namespace replication
}  // namespace wot
