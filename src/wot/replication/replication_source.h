// ReplicationSource: the primary side of shard replication.
//
// A source answers `repl_fetch` over a primary's storage directory (the
// same files StorageManager writes), shipping epoch-tagged artifacts:
//
//   * bootstrap — a replica with applied_version == 0 receives the
//     newest CRC-valid snapshot segment in offset-addressed chunks
//     (<= kMaxChunkBytes each). `base_version` tags the segment; if the
//     primary rotates mid-stream the tag changes and the replica
//     restarts its download from offset 0.
//   * catch-up — a replica consuming the WAL chain sends the epoch of
//     the wal file it is reading plus the bytes of it already applied;
//     the source ships the next run of complete CRC-framed records (the
//     exact on-disk framing, chopped only at record boundaries). When
//     the file is exhausted and a newer wal epoch exists, the response
//     switches to it (`base_version` = new epoch, offset 0); when the
//     replica is fully caught up the response is kind = kNone.
//
// The wal-epoch cursor needs no server-side state per replica: because a
// follower re-logs every applied record through its own StorageManager
// and the framing is deterministic, a restarted replica recovers its
// cursor from its OWN newest wal file (epoch = file number, offset =
// valid byte length) — reconnects always resume from delta, never a
// full re-ship. A replica whose epoch has been retired by retention is
// answered with a bootstrap segment instead; the replica treats that
// downgrade as "wipe and re-bootstrap".
//
// Thread contract: HandleRepl* are thread-safe (the source is stateless
// between calls; every fetch re-reads the directory).
#ifndef WOT_REPLICATION_REPLICATION_SOURCE_H_
#define WOT_REPLICATION_REPLICATION_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "wot/api/api.h"
#include "wot/api/frontend.h"
#include "wot/telemetry/metric_registry.h"

namespace wot {
namespace replication {

/// \brief Serves a primary's replication artifacts out of its storage
/// directory. Attach to the serving Frontend with
/// set_replication_handler (wot_served does this on every durable boot).
class ReplicationSource : public api::ReplicationHandler {
 public:
  /// Largest payload of one repl_fetch response. Segment chunks are cut
  /// exactly here; WAL deltas are cut at the last record boundary at or
  /// before it (and always carry at least one complete record).
  static constexpr uint64_t kMaxChunkBytes = 512 * 1024;

  /// \brief Reports the primary's current published version per shard —
  /// replicas compute lag from it. Must be thread-safe; wot_served wires
  /// it to the live TrustService(s). Null means "report 0".
  using VersionProvider = std::function<uint64_t(int64_t shard)>;

  /// \p dir is the primary's data directory; with \p num_shards >= 2 a
  /// shard's files live under dir/shard-<s>/ (the BootDurable layout).
  ReplicationSource(std::string dir, size_t num_shards,
                    VersionProvider version_provider);

  // api::ReplicationHandler.
  api::Response HandleReplFetch(const api::ReplFetchRequest& request) override;
  api::Response HandleReplStatus(
      const api::ReplStatusRequest& request) override;
  api::Response HandleReplPromote(
      const api::ReplPromoteRequest& request) override;

  /// \brief replication.fetches / replication.ship_bytes live here;
  /// register as a scrape source on the serving frontend.
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return metrics_;
  }

 private:
  std::string ShardDir(int64_t shard) const;
  uint64_t SourceVersion(int64_t shard) const;

  /// A bootstrap response: one chunk of the newest valid segment.
  api::Response FetchSegment(int64_t shard, const std::string& dir,
                             uint64_t offset);
  /// A catch-up response: complete WAL records from (epoch, offset).
  api::Response FetchWalDelta(int64_t shard, const std::string& dir,
                              uint64_t epoch, uint64_t offset);

  const std::string dir_;
  const size_t num_shards_;
  const VersionProvider version_provider_;

  std::shared_ptr<telemetry::MetricRegistry> metrics_;
  telemetry::Counter* fetches_;
  telemetry::Counter* ship_bytes_;
};

}  // namespace replication
}  // namespace wot

#endif  // WOT_REPLICATION_REPLICATION_SOURCE_H_
