// Concrete api::ReplicaHandle implementations for the ShardRouter's
// replica sets.
//
// ClientReplicaHandle drives any ApiClient: Poll() issues repl_status
// and reads the follower's applied version; Forward() relays a read
// request verbatim. A transport failure tears the client down and
// reports unhealthy — the next Poll() reconnects through the factory,
// so a bounced replica process rejoins the read fan-out without router
// intervention. The router's fallback contract (replica failure never
// fails a read — the primary answers instead) lives in the router; this
// class only has to be honest about what failed.
#ifndef WOT_REPLICATION_REPLICA_HANDLE_IMPL_H_
#define WOT_REPLICATION_REPLICA_HANDLE_IMPL_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "wot/api/client.h"
#include "wot/api/replica_handle.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace replication {

/// \brief An ApiClient that (re)builds its transport through a factory:
/// the first Call connects, a transport failure tears the connection
/// down and surfaces the error, and the next Call reconnects. A
/// ReplicaService pulling from a primary that restarts (or is not up
/// yet) rides this instead of dying with its socket.
class ReconnectingClient : public api::ApiClient {
 public:
  using ClientFactory =
      std::function<Result<std::unique_ptr<api::ApiClient>>()>;

  explicit ReconnectingClient(ClientFactory factory)
      : factory_(std::move(factory)) {}

  /// \brief Reconnects to "unix:PATH" or "HOST:PORT" (v2 binary).
  static std::unique_ptr<ReconnectingClient> ForAddress(
      const std::string& address);

  Result<api::Response> Call(const api::Request& request) override
      WOT_EXCLUDES(mu_);

 private:
  const ClientFactory factory_;
  mutable Mutex mu_;
  std::unique_ptr<api::ApiClient> client_ WOT_GUARDED_BY(mu_);
};

/// \brief The factory behind ForAddress: "unix:PATH" dials a unix
/// socket, anything else TCP "HOST:PORT" — both v2 binary.
ReconnectingClient::ClientFactory SocketClientFactory(
    const std::string& address);

/// \brief A replica reachable through an ApiClient (socket or loopback).
class ClientReplicaHandle : public api::ReplicaHandle {
 public:
  /// Builds a fresh client; invoked on first use and after any
  /// transport failure. Must be safe to call repeatedly.
  using ClientFactory =
      std::function<Result<std::unique_ptr<api::ApiClient>>()>;

  ClientReplicaHandle(std::string address, ClientFactory factory)
      : address_(std::move(address)), factory_(std::move(factory)) {}

  /// \brief A handle that (re)connects to `wot_served --socket PATH`
  /// (address "unix:PATH") or `--listen HOST:PORT` (address
  /// "HOST:PORT"), speaking the v2 binary protocol.
  static std::shared_ptr<ClientReplicaHandle> ForAddress(
      const std::string& address);

  api::ReplicaProbe Poll() override WOT_EXCLUDES(mu_);
  std::optional<api::Response> Forward(const api::Request& request) override
      WOT_EXCLUDES(mu_);
  const std::string& address() const override { return address_; }

 private:
  /// Returns the live client, building one if needed (null on failure).
  api::ApiClient* Ensure() WOT_REQUIRES(mu_);

  const std::string address_;
  const ClientFactory factory_;

  /// One client, one in-flight call: ApiClient is synchronous and
  /// single-threaded, so every use serializes here.
  mutable Mutex mu_;
  std::unique_ptr<api::ApiClient> client_ WOT_GUARDED_BY(mu_);
};

}  // namespace replication
}  // namespace wot

#endif  // WOT_REPLICATION_REPLICA_HANDLE_IMPL_H_
