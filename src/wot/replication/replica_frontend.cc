#include "wot/replication/replica_frontend.h"

#include <variant>

namespace wot {
namespace replication {

bool IsMutationPayload(const api::RequestPayload& payload) {
  return std::holds_alternative<api::IngestUser>(payload) ||
         std::holds_alternative<api::IngestCategory>(payload) ||
         std::holds_alternative<api::IngestObject>(payload) ||
         std::holds_alternative<api::IngestReview>(payload) ||
         std::holds_alternative<api::IngestRating>(payload) ||
         std::holds_alternative<api::CommitRequest>(payload);
}

api::Response ReplicaFrontend::DispatchPayload(
    const api::Request& request,
    const api::ConnectionContext& connection) {
  if (replica_->role() != api::ReplRole::kPrimary &&
      IsMutationPayload(request.payload)) {
    return api::ErrorResponse(api::ApiStatus::InvalidArgument(
        "this server is a replica; writes go to the primary (promote "
        "it with `wot_cli replica promote` to fail over)"));
  }
  return inner_->Dispatch(request, connection);
}

}  // namespace replication
}  // namespace wot
