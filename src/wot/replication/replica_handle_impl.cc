#include "wot/replication/replica_handle_impl.h"

namespace wot {
namespace replication {

ReconnectingClient::ClientFactory SocketClientFactory(
    const std::string& address) {
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    return [path]() -> Result<std::unique_ptr<api::ApiClient>> {
      WOT_ASSIGN_OR_RETURN(
          std::unique_ptr<api::SocketClient> client,
          api::SocketClient::Connect(path, api::WireProtocol::kBinary));
      return std::unique_ptr<api::ApiClient>(std::move(client));
    };
  }
  return [address]() -> Result<std::unique_ptr<api::ApiClient>> {
    WOT_ASSIGN_OR_RETURN(
        std::unique_ptr<api::SocketClient> client,
        api::SocketClient::ConnectTcp(address,
                                      api::WireProtocol::kBinary));
    return std::unique_ptr<api::ApiClient>(std::move(client));
  };
}

std::unique_ptr<ReconnectingClient> ReconnectingClient::ForAddress(
    const std::string& address) {
  return std::make_unique<ReconnectingClient>(SocketClientFactory(address));
}

Result<api::Response> ReconnectingClient::Call(
    const api::Request& request) {
  MutexLock lock(mu_);
  if (client_ == nullptr) {
    WOT_ASSIGN_OR_RETURN(client_, factory_());
  }
  Result<api::Response> called = client_->Call(request);
  if (!called.ok()) {
    client_.reset();  // transport died; redial on the next call
  }
  return called;
}

std::shared_ptr<ClientReplicaHandle> ClientReplicaHandle::ForAddress(
    const std::string& address) {
  return std::make_shared<ClientReplicaHandle>(address,
                                               SocketClientFactory(address));
}

api::ApiClient* ClientReplicaHandle::Ensure() {
  if (client_ != nullptr) return client_.get();
  Result<std::unique_ptr<api::ApiClient>> built = factory_();
  if (!built.ok()) return nullptr;
  client_ = std::move(built).ValueOrDie();
  return client_.get();
}

api::ReplicaProbe ClientReplicaHandle::Poll() {
  MutexLock lock(mu_);
  api::ReplicaProbe probe;
  api::ApiClient* client = Ensure();
  if (client == nullptr) return probe;  // unreachable: healthy = false
  api::Request request;
  request.payload = api::ReplStatusRequest{};
  Result<api::Response> called = client->Call(request);
  if (!called.ok()) {
    client_.reset();  // transport died; rebuild on the next poll
    return probe;
  }
  const api::Response& response = called.ValueOrDie();
  const api::ReplStatusResult* status =
      std::get_if<api::ReplStatusResult>(&response.payload);
  if (!response.status.ok() || status == nullptr) {
    return probe;  // answering, but not as a replica — keep it out
  }
  probe.applied_version = status->applied_version;
  probe.healthy = true;
  return probe;
}

std::optional<api::Response> ClientReplicaHandle::Forward(
    const api::Request& request) {
  MutexLock lock(mu_);
  api::ApiClient* client = Ensure();
  if (client == nullptr) return std::nullopt;
  Result<api::Response> called = client->Call(request);
  if (!called.ok()) {
    client_.reset();
    return std::nullopt;
  }
  return std::move(called).ValueOrDie();
}

}  // namespace replication
}  // namespace wot
