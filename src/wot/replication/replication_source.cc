#include "wot/replication/replication_source.h"

#include <algorithm>
#include <utility>

#include "wot/storage/fs_util.h"
#include "wot/storage/segment.h"
#include "wot/storage/storage_manager.h"
#include "wot/storage/wal.h"

namespace wot {
namespace replication {

using api::ApiStatus;
using api::ErrorResponse;
using api::ReplArtifactKind;
using api::ReplFetchResult;
using api::Response;

ReplicationSource::ReplicationSource(std::string dir, size_t num_shards,
                                     VersionProvider version_provider)
    : dir_(std::move(dir)),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      version_provider_(std::move(version_provider)),
      metrics_(std::make_shared<telemetry::MetricRegistry>()),
      fetches_(metrics_->counter("replication.fetches")),
      ship_bytes_(metrics_->counter("replication.ship_bytes")) {}

std::string ReplicationSource::ShardDir(int64_t shard) const {
  if (num_shards_ <= 1) return dir_;
  return dir_ + "/shard-" + std::to_string(shard);
}

uint64_t ReplicationSource::SourceVersion(int64_t shard) const {
  return version_provider_ ? version_provider_(shard) : 0;
}

Response ReplicationSource::HandleReplFetch(
    const api::ReplFetchRequest& request) {
  if (request.shard < 0 ||
      static_cast<size_t>(request.shard) >= num_shards_) {
    return ErrorResponse(ApiStatus::InvalidArgument(
        "repl_fetch shard " + std::to_string(request.shard) +
        " out of range (this primary has " +
        std::to_string(num_shards_) + " shard(s))"));
  }
  fetches_->Increment();
  const std::string dir = ShardDir(request.shard);
  if (request.applied_version == 0) {
    return FetchSegment(request.shard, dir, request.offset);
  }
  return FetchWalDelta(request.shard, dir, request.applied_version,
                       request.offset);
}

Response ReplicationSource::HandleReplStatus(const api::ReplStatusRequest&) {
  api::ReplStatusResult result;
  result.role = static_cast<int64_t>(api::ReplRole::kPrimary);
  uint64_t version = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    version = std::max(version, SourceVersion(static_cast<int64_t>(s)));
  }
  result.applied_version = version;
  result.source_version = version;
  result.failovers = 0;
  Response response;
  response.payload = std::move(result);
  return response;
}

Response ReplicationSource::HandleReplPromote(const api::ReplPromoteRequest&) {
  return ErrorResponse(ApiStatus::InvalidArgument(
      "this server is already a primary; promotion applies to replicas"));
}

Response ReplicationSource::FetchSegment(int64_t shard,
                                         const std::string& dir,
                                         uint64_t offset) {
  Result<storage::StorageFileSet> files = storage::ListStorageFiles(dir);
  if (!files.ok()) {
    return ErrorResponse(
        ApiStatus::Internal("repl_fetch: " + files.status().message()));
  }
  const std::vector<storage::StorageFile>& segments =
      files.ValueOrDie().segments;
  // Newest CRC-valid segment wins; an unreadable newest (mid-rotation
  // crash debris) falls back to an older keeper, like recovery does.
  for (size_t i = segments.size(); i-- > 0;) {
    const storage::StorageFile& candidate = segments[i];
    Result<storage::SegmentInfo> info =
        storage::ReadSegmentInfo(candidate.path);
    if (!info.ok()) continue;
    Result<std::string> contents =
        storage::ReadFileToString(candidate.path);
    if (!contents.ok()) continue;
    const std::string& bytes = contents.ValueOrDie();
    if (offset > bytes.size()) {
      return ErrorResponse(ApiStatus::InvalidArgument(
          "repl_fetch: segment offset " + std::to_string(offset) +
          " beyond segment-" + std::to_string(candidate.number) +
          " (" + std::to_string(bytes.size()) + " bytes)"));
    }
    ReplFetchResult result;
    result.kind = static_cast<int64_t>(ReplArtifactKind::kSegment);
    result.base_version = candidate.number;
    result.target_version = candidate.number;
    result.source_version = SourceVersion(shard);
    result.offset = offset;
    result.total_bytes = bytes.size();
    result.payload =
        bytes.substr(offset, std::min<uint64_t>(kMaxChunkBytes,
                                                bytes.size() - offset));
    ship_bytes_->Increment(static_cast<int64_t>(result.payload.size()));
    Response response;
    response.payload = std::move(result);
    return response;
  }
  return ErrorResponse(ApiStatus::Internal(
      "repl_fetch: no loadable snapshot segment in '" + dir + "'"));
}

Response ReplicationSource::FetchWalDelta(int64_t shard,
                                          const std::string& dir,
                                          uint64_t epoch, uint64_t offset) {
  Result<storage::StorageFileSet> files = storage::ListStorageFiles(dir);
  if (!files.ok()) {
    return ErrorResponse(
        ApiStatus::Internal("repl_fetch: " + files.status().message()));
  }
  const storage::StorageFileSet& set = files.ValueOrDie();
  const storage::StorageFile* current = nullptr;
  const storage::StorageFile* next = nullptr;
  for (const storage::StorageFile& wal : set.wals) {
    if (wal.number == epoch) current = &wal;
    if (wal.number > epoch && (next == nullptr || wal.number < next->number)) {
      next = &wal;
    }
  }
  if (current == nullptr) {
    // The replica's epoch has been retired (it fell past retention) or
    // never existed here. A bootstrap response tells it to start over.
    return FetchSegment(shard, dir, 0);
  }

  Result<std::string> contents = storage::ReadFileToString(current->path);
  if (!contents.ok()) {
    return ErrorResponse(
        ApiStatus::Internal("repl_fetch: " + contents.status().message()));
  }
  std::string bytes = std::move(contents).ValueOrDie();
  // Only the CRC-valid prefix ships; a torn tail on the primary's newest
  // file is invisible to replicas (it will be repaired or completed).
  Result<storage::WalScanStats> scanned =
      storage::ScanWalBuffer(bytes, nullptr);
  if (!scanned.ok()) {
    return ErrorResponse(
        ApiStatus::Internal("repl_fetch: wal '" + current->path +
                            "': " + scanned.status().message()));
  }
  const uint64_t valid = scanned.ValueOrDie().valid_bytes;
  if (offset > valid) {
    return ErrorResponse(ApiStatus::InvalidArgument(
        "repl_fetch: offset " + std::to_string(offset) + " beyond wal-" +
        std::to_string(epoch) + "'s " + std::to_string(valid) +
        " valid bytes (replica ahead of source?)"));
  }

  if (offset == valid) {
    if (next != nullptr) {
      // File exhausted and the chain moved on: switch epochs.
      return FetchWalDelta(shard, dir, next->number, 0);
    }
    ReplFetchResult result;
    result.kind = static_cast<int64_t>(ReplArtifactKind::kNone);
    result.base_version = epoch;
    result.target_version = 0;
    result.source_version = SourceVersion(shard);
    result.offset = offset;
    result.total_bytes = valid;
    Response response;
    response.payload = std::move(result);
    return response;
  }

  // Chop the window at the last complete record boundary <= the chunk
  // cap — but never below one record, so progress is guaranteed.
  const uint64_t window_end =
      std::min<uint64_t>(valid, offset + kMaxChunkBytes);
  uint64_t last_commit = 0;
  Result<storage::WalScanStats> window = storage::ScanWalBuffer(
      std::string_view(bytes).substr(offset, window_end - offset),
      [&last_commit](const storage::WalRecord& record) {
        if (record.type == storage::WalRecordType::kCommit) {
          last_commit = record.version;
        }
        return Status::OK();
      });
  if (!window.ok()) {
    return ErrorResponse(
        ApiStatus::Internal("repl_fetch: wal '" + current->path +
                            "': " + window.status().message()));
  }
  uint64_t ship = window.ValueOrDie().valid_bytes;
  if (ship == 0) {
    // The next record alone overflows the cap; ship exactly that one
    // frame (its length header is trusted — the full scan above already
    // CRC-validated everything up to `valid`).
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(bytes.data()) + offset;
    const uint64_t body = static_cast<uint64_t>(p[0]) |
                          static_cast<uint64_t>(p[1]) << 8 |
                          static_cast<uint64_t>(p[2]) << 16 |
                          static_cast<uint64_t>(p[3]) << 24;
    ship = std::min<uint64_t>(8 + body, valid - offset);
    last_commit = 0;
    Result<storage::WalScanStats> one = storage::ScanWalBuffer(
        std::string_view(bytes).substr(offset, ship),
        [&last_commit](const storage::WalRecord& record) {
          if (record.type == storage::WalRecordType::kCommit) {
            last_commit = record.version;
          }
          return Status::OK();
        });
    (void)one;
  }

  ReplFetchResult result;
  result.kind = static_cast<int64_t>(ReplArtifactKind::kWalDelta);
  result.base_version = epoch;
  result.target_version = last_commit;
  result.source_version = SourceVersion(shard);
  result.offset = offset;
  result.total_bytes = valid;
  result.payload = bytes.substr(offset, ship);
  ship_bytes_->Increment(static_cast<int64_t>(result.payload.size()));
  Response response;
  response.payload = std::move(result);
  return response;
}

}  // namespace replication
}  // namespace wot
