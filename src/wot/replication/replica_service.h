// ReplicaService: the follower side of shard replication.
//
// A replica mirrors exactly ONE upstream shard (shard 0 of an unsharded
// primary by default; a sharded primary gets one replica process per
// shard). It pulls artifacts with `repl_fetch` over any ApiClient and
// applies them to a local durable TrustService:
//
//   * bootstrap — segment chunks accumulate until complete, the file is
//     written as segment-<V>.seg, and StorageManager::Boot restores a
//     service from it instantly (PR 8's recovery path, unchanged).
//   * catch-up — WAL delta frames are decoded with ScanWalBuffer and
//     replayed through ApplyWalRecord; commits advance the applied
//     version exactly as crash recovery would.
//
// Because the replica's own StorageManager re-logs every applied record,
// the replica's data directory is byte-compatible with the primary's WAL
// chain: restart recovery is local, the resume cursor is derived from
// the replica's own newest wal file, and a promoted replica is durable
// from its first accepted write with no extra machinery.
//
// Promotion (`Promote()`, or the repl_promote wire method): stop the
// puller, drain whatever the source still answers (best effort — the
// primary is usually dead), flip the role to primary, and count it on
// replication.failovers. The caller (wot_served's write gate) starts
// accepting writes the moment role() returns kPrimary; epochs stay
// strictly monotonic because the replica only ever applied prefix of
// the primary's history.
//
// Thread contract: Step()/Promote() serialize on an internal mutex; the
// Handle* methods and the accessors are safe from any serving thread.
#ifndef WOT_REPLICATION_REPLICA_SERVICE_H_
#define WOT_REPLICATION_REPLICA_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "wot/api/api.h"
#include "wot/api/client.h"
#include "wot/api/frontend.h"
#include "wot/service/trust_service.h"
#include "wot/storage/storage_manager.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/result.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace replication {

class ReplicationSource;

struct ReplicaOptions {
  /// Which upstream shard to mirror.
  int64_t shard = 0;
  /// Puller sleep between polls once caught up (and backoff after a
  /// fetch error).
  int64_t poll_millis = 50;
  TrustServiceOptions service;
  storage::StorageOptions storage;
};

/// \brief Pulls one upstream shard's artifacts and applies them locally.
class ReplicaService : public api::ReplicationHandler {
 public:
  /// \brief Opens \p dir (recovering any previous replica state in it)
  /// and prepares to pull from \p upstream. No fetch happens here; call
  /// Step()/CatchUp() or StartPuller(). An empty directory starts in
  /// bootstrap state; a populated one resumes from its own WAL cursor.
  static Result<std::unique_ptr<ReplicaService>> Create(
      std::string dir, std::unique_ptr<api::ApiClient> upstream,
      ReplicaOptions options = {});

  ~ReplicaService() override;
  ReplicaService(const ReplicaService&) = delete;
  ReplicaService& operator=(const ReplicaService&) = delete;

  /// \brief One pull-and-apply step: fetch one artifact, apply it.
  /// Returns true when progress was made (bytes applied), false when
  /// caught up. The unit the property tests drive deterministically.
  Result<bool> Step() WOT_EXCLUDES(mu_);

  /// \brief Steps until caught up (bootstrap included) or an error.
  Status CatchUp() WOT_EXCLUDES(mu_);

  /// \brief Background puller: loops Step(), dozing poll_millis when
  /// caught up or after an error. Idempotent.
  void StartPuller();
  void StopPuller();

  /// \brief Stops the puller, drains the source best-effort (fetch
  /// errors are expected — the primary is typically gone), and flips
  /// the role to kPrimary. Fails only if the replica never bootstrapped
  /// (there is no state to promote).
  Status Promote() WOT_EXCLUDES(mu_);

  api::ReplRole role() const {
    return static_cast<api::ReplRole>(
        role_.load(std::memory_order_acquire));
  }
  /// Last commit version fully applied (0 before bootstrap completes).
  uint64_t applied_version() const;
  /// The source's published version at last contact.
  uint64_t source_version() const {
    return source_version_.load(std::memory_order_acquire);
  }

  /// The mirrored service; null until bootstrap completes. Stable once
  /// set (re-bootstrap after falling past source retention requires a
  /// process restart precisely so this pointer never dies mid-serve).
  TrustService* service() const {
    return service_ptr_.load(std::memory_order_acquire);
  }
  storage::StorageManager* manager() const {
    return manager_ptr_.load(std::memory_order_acquire);
  }

  // api::ReplicationHandler — attach to the replica's serving frontend.
  api::Response HandleReplFetch(const api::ReplFetchRequest& request) override;
  api::Response HandleReplStatus(
      const api::ReplStatusRequest& request) override;
  api::Response HandleReplPromote(
      const api::ReplPromoteRequest& request) override;

  /// \brief replication.lag_epochs / catchup_ns / applied_records /
  /// failovers live here; register as a scrape source.
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return metrics_;
  }

 private:
  ReplicaService(std::string dir, std::unique_ptr<api::ApiClient> upstream,
                 ReplicaOptions options);

  Result<bool> StepLocked() WOT_REQUIRES(mu_);
  Result<bool> BootstrapStep(const api::ReplFetchResult& artifact)
      WOT_REQUIRES(mu_);
  Result<bool> ApplyDelta(const api::ReplFetchResult& artifact)
      WOT_REQUIRES(mu_);
  /// One repl_fetch round trip; transport and application errors both
  /// surface as a non-OK status.
  Result<api::ReplFetchResult> Fetch(uint64_t epoch, uint64_t offset)
      WOT_REQUIRES(mu_);
  void UpdateLag(uint64_t source) WOT_REQUIRES(mu_);
  void PullerLoop();

  const std::string dir_;
  const ReplicaOptions options_;
  /// Serves repl_fetch out of our own directory once promoted (a
  /// promoted replica is a full primary, chainable replicas included).
  std::unique_ptr<ReplicationSource> source_;

  std::shared_ptr<telemetry::MetricRegistry> metrics_;
  telemetry::Gauge* lag_epochs_;
  telemetry::LatencyHistogram* catchup_ns_;
  telemetry::Counter* applied_records_;
  telemetry::Counter* failovers_;

  mutable Mutex mu_;
  std::unique_ptr<api::ApiClient> upstream_ WOT_GUARDED_BY(mu_);
  /// Destruction order: manager after service (the service detaches by
  /// dying first), matching DurableService.
  std::unique_ptr<storage::StorageManager> manager_ WOT_GUARDED_BY(mu_);
  std::unique_ptr<TrustService> service_ WOT_GUARDED_BY(mu_);
  /// 0 = bootstrapping; else the upstream wal epoch being consumed.
  uint64_t cursor_epoch_ WOT_GUARDED_BY(mu_) = 0;
  /// Bytes of the upstream artifact already consumed (segment bytes
  /// while bootstrapping, wal-<epoch> bytes afterwards).
  uint64_t cursor_offset_ WOT_GUARDED_BY(mu_) = 0;
  /// The segment version being downloaded (0 = none yet).
  uint64_t bootstrap_version_ WOT_GUARDED_BY(mu_) = 0;
  std::string bootstrap_buffer_ WOT_GUARDED_BY(mu_);

  // Lock-free mirrors for serving threads (Handle*, accessors).
  std::atomic<int64_t> role_;
  std::atomic<uint64_t> source_version_{0};
  std::atomic<int64_t> failover_count_{0};
  std::atomic<TrustService*> service_ptr_{nullptr};
  std::atomic<storage::StorageManager*> manager_ptr_{nullptr};

  Mutex puller_mu_;
  CondVar puller_cv_;
  bool puller_stop_ WOT_GUARDED_BY(puller_mu_) = false;
  std::thread puller_;
};

}  // namespace replication
}  // namespace wot

#endif  // WOT_REPLICATION_REPLICA_SERVICE_H_
