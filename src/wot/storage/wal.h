// Append-only write-ahead log for TrustService mutations.
//
// On-disk framing (little-endian, like every wot::io format):
//
//   record  := u32 body_length | u32 crc32(body) | body
//   body    := u8 type | type-specific fields (ByteWriter encoding)
//
// Types mirror the MutationLog hooks: add_user/add_category store the
// entity name (dense ids are implied by append order), add_object /
// add_review / add_rating store resolved dense ids, and commit marks a
// Commit() boundary with the snapshot version it left serving. Replaying
// a WAL through a fresh TrustService therefore reproduces the staged
// state — including staged-but-uncommitted activity — byte for byte.
//
// Recovery is tolerant of torn writes: a record whose frame overruns the
// file, whose length field is insane, or whose CRC mismatches marks the
// end of the valid prefix; ScanWal reports (and optionally physically
// truncates) the garbage tail instead of failing. A record that passes
// its CRC but does not decode is different — that is corruption, not a
// torn append, and scans reject it with a clean error.
#ifndef WOT_STORAGE_WAL_H_
#define WOT_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "wot/util/result.h"

namespace wot {
namespace storage {

/// \brief When appends reach the disk platter.
enum class FsyncPolicy {
  kAlways,  ///< fsync after every record (max durability, slow ingest).
  kBatch,   ///< fsync on commit records and every ~64 records / 256 KiB.
  kOff,     ///< never fsync (page cache only; survives crashes, not power
            ///< loss). For tests and bulk loads.
};

Result<FsyncPolicy> FsyncPolicyFromName(std::string_view name);
const char* FsyncPolicyName(FsyncPolicy policy);

enum class WalRecordType : uint8_t {
  kAddUser = 1,
  kAddCategory = 2,
  kAddObject = 3,
  kAddReview = 4,
  kAddRating = 5,
  kCommit = 6,
};

/// \brief One decoded mutation record (union-style; valid fields depend
/// on type — see the field comments).
struct WalRecord {
  WalRecordType type = WalRecordType::kCommit;
  std::string name;      ///< kAddUser / kAddCategory / kAddObject.
  uint32_t a = 0;        ///< object: category; review: writer; rating: rater.
  uint32_t b = 0;        ///< review: object; rating: review.
  double value = 0.0;    ///< kAddRating.
  uint64_t version = 0;  ///< kCommit: serving snapshot version after it.
};

/// \brief The framed on-disk bytes of \p record (length + CRC + body).
std::string EncodeWalRecord(const WalRecord& record);

/// \brief Decodes one record *body* (the bytes the CRC covers).
Result<WalRecord> DecodeWalRecord(std::string_view body);

/// \brief Appends framed records to one WAL file (O_APPEND + fsync per
/// the policy). Not internally synchronized — the StorageManager
/// serializes access.
class WalWriter {
 public:
  /// Opens (creating if absent) \p path for appending. \p initial_records
  /// is the number of valid records already in the file (recovery knows
  /// it from its replay scan); byte counters start at the current size.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 FsyncPolicy policy,
                                                 uint64_t initial_records);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Appends one framed record, fsyncing per policy.
  Status Append(const WalRecord& record);

  /// \brief Forces an fsync of everything appended so far (a commit
  /// boundary). No-op under FsyncPolicy::kOff.
  Status Sync();

  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, FsyncPolicy policy,
            uint64_t initial_records, uint64_t initial_bytes)
      : path_(std::move(path)),
        fd_(fd),
        policy_(policy),
        records_(initial_records),
        bytes_(initial_bytes) {}

  std::string path_;
  int fd_;
  FsyncPolicy policy_;
  uint64_t records_;
  uint64_t bytes_;
  uint64_t unsynced_records_ = 0;
  uint64_t unsynced_bytes_ = 0;
};

/// \brief What one ScanWal pass over a file found.
struct WalScanStats {
  uint64_t records = 0;        ///< Valid records visited.
  uint64_t commit_records = 0; ///< Subset of type kCommit.
  uint64_t valid_bytes = 0;    ///< Length of the valid framed prefix.
  uint64_t truncated_bytes = 0;  ///< Garbage tail past the valid prefix.
};

/// \brief Scans \p path front to back, invoking \p visitor on every valid
/// record (null visitor = just count). A torn/corrupt tail ends the scan
/// cleanly; when \p repair is true the file is physically truncated to
/// the valid prefix (logged), so the next append continues from a clean
/// end. Returns an error only for I/O failures, undecodable CRC-valid
/// bodies, or a visitor error.
Result<WalScanStats> ScanWal(
    const std::string& path, bool repair,
    const std::function<Status(const WalRecord&)>& visitor);

/// \brief ScanWal over an in-memory buffer (a replication WAL delta is
/// shipped in exactly the on-disk framing). Same tolerance: a torn or
/// CRC-failing tail ends the scan and is reported via truncated_bytes —
/// callers that require complete frames (a replica applying a shipped
/// delta) treat truncated_bytes != 0 as an error themselves.
Result<WalScanStats> ScanWalBuffer(
    std::string_view bytes,
    const std::function<Status(const WalRecord&)>& visitor);

}  // namespace storage
}  // namespace wot

#endif  // WOT_STORAGE_WAL_H_
