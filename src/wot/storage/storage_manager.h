// StorageManager: one TrustService's durable store — an append-only WAL
// plus rotating snapshot segments inside a single data directory.
//
// Directory layout (one directory per service; the sharded server gives
// every shard its own under DIR/shard-N/ — see durable_boot.h):
//
//   segment-<V>.seg   snapshot segment for published version V
//   wal-<E>.log       mutations accepted after segment-<E> was current
//
// Write path: every accepted mutation appends one WAL record (fsynced
// per FsyncPolicy) before the API acknowledges it. Commit() appends a
// commit record and forces a sync; when the commit published a new
// snapshot version V, the manager rotates — it opens wal-<V>.log FIRST
// (so the record chain never has a gap even if the segment write then
// fails), writes segment-<V>.seg atomically, and retires files outside
// the retention window (keep_segments newest segments plus every WAL
// at or past the oldest kept segment's epoch).
//
// Recovery (Boot): map the newest CRC-valid segment, Restore a service
// from it instantly (no reputation recomputation), then replay every
// wal-<E>.log with E >= that segment's version in ascending epoch
// order. The newest WAL may end in a torn tail — it is truncated and
// logged, not fatal; appending continues on that file. A torn tail on
// any OLDER wal, a CRC-valid-but-undecodable record, or a replayed
// commit landing on the wrong version is real corruption and fails the
// boot with a clean error.
//
// Failure policy while serving: a failed mutation append latches the
// error and stops the log (a hole would corrupt replay; a short log
// just loses the tail) — ingest keeps being acknowledged in-memory and
// the NEXT Commit() returns the latched error so the operator learns
// durability is gone. A failed segment write merely logs: the WAL chain
// still holds everything, so durability is preserved at slower-boot
// cost.
#ifndef WOT_STORAGE_STORAGE_MANAGER_H_
#define WOT_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "wot/service/mutation_log.h"
#include "wot/service/trust_service.h"
#include "wot/storage/wal.h"
#include "wot/telemetry/metric_registry.h"
#include "wot/util/result.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace storage {

/// \brief Storage-layer knobs (service-level knobs travel separately).
struct StorageOptions {
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Newest segments kept on disk. Older segments — and the WALs that
  /// predate the oldest keeper — are deleted at rotation. Minimum 1.
  size_t keep_segments = 2;
  /// Serialize snapshot segments on a background thread instead of
  /// inside LogCommit (the WAL append + fsync and the wal-<V> rotation
  /// stay synchronous, so the record chain ordering is unchanged; only
  /// the segment write and retention move off the commit path). Pending
  /// writes coalesce — a newer published version replaces a queued
  /// older one; the WAL chain covers any skipped segment. Tests that
  /// assert on segment files right after a commit call WaitForIdle()
  /// or disable this.
  bool background_rotation = true;
};

/// \brief Durably backs one TrustService; attach via SetMutationLog.
class StorageManager : public MutationLog {
 public:
  /// \brief A booted service + its attached manager.
  struct BootResult {
    std::unique_ptr<TrustService> service;
    std::unique_ptr<StorageManager> manager;  ///< Already attached.
    uint64_t replayed_records = 0;  ///< WAL records replayed (0 = fresh).
    bool recovered = false;  ///< False when the directory was empty.
  };

  /// \brief Boots a durable service out of \p dir. An empty directory is
  /// a fresh boot: \p seed_provider is invoked for the initial dataset,
  /// segment-1 + wal-1 are written, and the service starts at version 1.
  /// A populated directory is a recovery: the seed provider is NOT
  /// called — the newest valid segment plus the WAL tail reproduce the
  /// pre-crash state exactly, including staged-but-uncommitted activity.
  static Result<BootResult> Boot(
      const std::string& dir,
      const std::function<Result<Dataset>()>& seed_provider,
      const TrustServiceOptions& service_options = {},
      const StorageOptions& storage_options = {});

  /// Drains any queued segment write, then joins the rotation thread.
  ~StorageManager() override;
  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // MutationLog implementation (called under the service writer lock;
  // mu_ makes durability_stats() safe from any thread).
  void LogAddUser(std::string_view name) override WOT_EXCLUDES(mu_);
  void LogAddCategory(std::string_view name) override WOT_EXCLUDES(mu_);
  void LogAddObject(uint32_t category, std::string_view name) override
      WOT_EXCLUDES(mu_);
  void LogAddReview(uint32_t writer, uint32_t object) override
      WOT_EXCLUDES(mu_);
  void LogAddRating(uint32_t rater, uint32_t review, double value) override
      WOT_EXCLUDES(mu_);
  Status LogCommit(uint64_t version, bool published,
                   const std::shared_ptr<const TrustSnapshot>& snapshot,
                   const Dataset& staged) override
      WOT_EXCLUDES(mu_, rotation_mu_);
  DurabilityStats durability_stats() const override WOT_EXCLUDES(mu_);

  /// \brief Blocks until no segment write is queued or in flight. A
  /// no-op under synchronous rotation. Call before inspecting segment
  /// files (tests) or before shipping "the newest segment" assumptions.
  void WaitForIdle() WOT_EXCLUDES(rotation_mu_);

  const std::string& dir() const { return dir_; }

  /// \brief The registry this manager records its durability timings
  /// into (storage.wal_*, storage.rotation_*; see
  /// docs/observability.md). Owned by the manager; the serving frontend
  /// registers it as a scrape source (durable_boot does the wiring).
  const std::shared_ptr<telemetry::MetricRegistry>& metrics_registry()
      const {
    return metrics_;
  }

 private:
  /// One queued background segment write (the newest published version
  /// wins; see StorageOptions::background_rotation).
  struct RotationJob {
    uint64_t version = 0;
    std::shared_ptr<const TrustSnapshot> snapshot;
    Dataset staged;
  };

  StorageManager(std::string dir, StorageOptions options,
                 std::unique_ptr<WalWriter> wal, uint64_t segment_epoch,
                 uint64_t segment_bytes, uint64_t replayed_records);

  /// Appends one mutation record, latching the first failure.
  void AppendMutation(const WalRecord& record) WOT_REQUIRES(mu_);

  /// Opens wal-<version> (the synchronous half of a rotation — the
  /// record chain must never gap) and either writes segment-<version>
  /// inline or hands it to the rotation thread. Failures degrade
  /// gracefully (see file comment).
  void RotateLocked(uint64_t version,
                    const std::shared_ptr<const TrustSnapshot>& snapshot,
                    const Dataset& staged)
      WOT_REQUIRES(mu_) WOT_EXCLUDES(rotation_mu_);

  /// Writes segment-<version> and runs retention — pure file work, no
  /// locks held. Returns the segment's byte size.
  Result<uint64_t> WriteSegmentAndRetire(uint64_t version,
                                         const TrustSnapshot& snapshot,
                                         const Dataset& staged);

  /// Publishes a finished segment write into the durability counters.
  void FinishRotation(uint64_t version, uint64_t bytes)
      WOT_EXCLUDES(mu_);

  /// The rotation thread: drains queued jobs until stopped.
  void RotationLoop() WOT_EXCLUDES(rotation_mu_, mu_);

  const std::string dir_;
  const StorageOptions options_;

  // Telemetry: handles are written once at construction; the registry
  // outlives them. Recording happens under mu_ (the log serializes).
  std::shared_ptr<telemetry::MetricRegistry> metrics_;
  telemetry::LatencyHistogram* wal_append_ns_;
  telemetry::LatencyHistogram* wal_fsync_ns_;
  telemetry::LatencyHistogram* rotation_ns_;
  telemetry::LatencyHistogram* commit_batch_records_;
  telemetry::Counter* rotations_;
  telemetry::Counter* rotation_bytes_;

  telemetry::LatencyHistogram* segment_write_ns_;

  mutable Mutex mu_;
  std::unique_ptr<WalWriter> wal_ WOT_GUARDED_BY(mu_);
  /// Mutation records appended since the last LogCommit (the commit
  /// batch size recorded into storage.commit_batch_records).
  int64_t records_since_commit_ WOT_GUARDED_BY(mu_) = 0;
  /// First append failure; once non-OK the log stops growing and the
  /// next LogCommit surfaces it.
  Status degraded_ WOT_GUARDED_BY(mu_) = Status::OK();
  uint64_t segment_epoch_ WOT_GUARDED_BY(mu_) = 0;
  uint64_t segment_bytes_ WOT_GUARDED_BY(mu_) = 0;
  const uint64_t replayed_records_;

  // Background rotation. Lock ordering: mu_ before rotation_mu_ (the
  // commit path enqueues under both); the worker never holds both —
  // it releases rotation_mu_ before touching the counters under mu_.
  Mutex rotation_mu_;
  CondVar rotation_cv_;
  /// Single-slot queue: a newer published version replaces a queued
  /// older one (the WAL chain covers the skipped segment).
  std::unique_ptr<RotationJob> pending_rotation_ WOT_GUARDED_BY(rotation_mu_);
  bool rotation_in_flight_ WOT_GUARDED_BY(rotation_mu_) = false;
  bool rotation_stop_ WOT_GUARDED_BY(rotation_mu_) = false;
  std::thread rotation_thread_;
};

/// \brief Applies one decoded WAL record to \p service — the shared
/// replay step used by crash recovery and by replicas applying shipped
/// WAL deltas. Mutation records must stage cleanly (they were accepted
/// once; a reject means the record stream does not match the service
/// state) and a kCommit record must land exactly on its recorded
/// version; violations return Corruption.
Status ApplyWalRecord(TrustService& service, const WalRecord& record);

/// \brief "<dir>/segment-<version>.seg".
std::string SegmentPath(const std::string& dir, uint64_t version);
/// \brief "<dir>/wal-<epoch>.log".
std::string WalPath(const std::string& dir, uint64_t epoch);

/// \brief One data-directory entry recognized by the storage layer.
struct StorageFile {
  std::string path;
  uint64_t number = 0;  ///< Segment version / WAL epoch.
};

/// \brief Storage files in \p dir, split by kind, each sorted ascending
/// by number. Unrecognized names are ignored.
struct StorageFileSet {
  std::vector<StorageFile> segments;
  std::vector<StorageFile> wals;
};
Result<StorageFileSet> ListStorageFiles(const std::string& dir);

}  // namespace storage
}  // namespace wot

#endif  // WOT_STORAGE_STORAGE_MANAGER_H_
