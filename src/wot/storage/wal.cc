#include "wot/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "wot/io/byte_reader.h"
#include "wot/io/byte_writer.h"
#include "wot/io/crc32.h"
#include "wot/storage/fs_util.h"
#include "wot/util/logging.h"

namespace wot {
namespace storage {
namespace {

// A mutation record is one name plus a handful of fixed fields; anything
// claiming to be larger than this is a torn/garbage length field.
constexpr uint32_t kMaxWalRecordBytes = 1u << 24;

// Batch-policy thresholds: fsync when this much is outstanding.
constexpr uint64_t kBatchSyncRecords = 64;
constexpr uint64_t kBatchSyncBytes = 256u << 10;

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

Result<FsyncPolicy> FsyncPolicyFromName(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "off") return FsyncPolicy::kOff;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(name) +
                                 "' (expected always | batch | off)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

std::string EncodeWalRecord(const WalRecord& record) {
  ByteWriter body;
  body.PutU8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kAddUser:
    case WalRecordType::kAddCategory:
      body.PutString(record.name);
      break;
    case WalRecordType::kAddObject:
      body.PutU32(record.a).PutString(record.name);
      break;
    case WalRecordType::kAddReview:
      body.PutU32(record.a).PutU32(record.b);
      break;
    case WalRecordType::kAddRating:
      body.PutU32(record.a).PutU32(record.b).PutDouble(record.value);
      break;
    case WalRecordType::kCommit:
      body.PutU64(record.version);
      break;
  }
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutU32(Crc32(body.buffer().data(), body.size()));
  frame.PutRaw(body.buffer());
  return frame.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view body) {
  ByteReader reader(body);
  WalRecord record;
  uint8_t type = reader.GetU8();
  if (type < static_cast<uint8_t>(WalRecordType::kAddUser) ||
      type > static_cast<uint8_t>(WalRecordType::kCommit)) {
    return Status::Corruption("unknown wal record type " +
                              std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  switch (record.type) {
    case WalRecordType::kAddUser:
    case WalRecordType::kAddCategory:
      record.name = reader.GetString();
      break;
    case WalRecordType::kAddObject:
      record.a = reader.GetU32();
      record.name = reader.GetString();
      break;
    case WalRecordType::kAddReview:
      record.a = reader.GetU32();
      record.b = reader.GetU32();
      break;
    case WalRecordType::kAddRating:
      record.a = reader.GetU32();
      record.b = reader.GetU32();
      record.value = reader.GetDouble();
      break;
    case WalRecordType::kCommit:
      record.version = reader.GetU64();
      break;
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("wal record body has trailing bytes");
  }
  return record;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, FsyncPolicy policy, uint64_t initial_records) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError("cannot open wal '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat wal '" + path +
                           "': " + std::strerror(err));
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, policy, initial_records,
                    static_cast<uint64_t>(st.st_size)));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (policy_ != FsyncPolicy::kOff && unsynced_records_ > 0) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

Status WalWriter::Append(const WalRecord& record) {
  std::string frame = EncodeWalRecord(record);
  WOT_RETURN_IF_ERROR(WriteAllFd(fd_, frame));
  ++records_;
  bytes_ += frame.size();
  ++unsynced_records_;
  unsynced_bytes_ += frame.size();
  const bool want_sync =
      policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kBatch &&
       (unsynced_records_ >= kBatchSyncRecords ||
        unsynced_bytes_ >= kBatchSyncBytes));
  if (want_sync) {
    return Sync();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  if (policy_ == FsyncPolicy::kOff || unsynced_records_ == 0) {
    unsynced_records_ = 0;
    unsynced_bytes_ = 0;
    return Status::OK();
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync failed on '" + path_ +
                           "': " + std::strerror(errno));
  }
  unsynced_records_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

Result<WalScanStats> ScanWalBuffer(
    std::string_view bytes,
    const std::function<Status(const WalRecord&)>& visitor) {
  WalScanStats stats;
  size_t pos = 0;
  const size_t size = bytes.size();
  while (pos + 8 <= size) {
    const uint32_t body_length = LoadU32(bytes.data() + pos);
    const uint32_t crc = LoadU32(bytes.data() + pos + 4);
    if (body_length > kMaxWalRecordBytes ||
        pos + 8 + body_length > size) {
      break;  // torn tail: frame runs past the buffer (or garbage length)
    }
    std::string_view body(bytes.data() + pos + 8, body_length);
    if (Crc32(body.data(), body.size()) != crc) {
      break;  // torn tail: the body never fully hit the disk
    }
    WOT_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(body));
    if (visitor) {
      WOT_RETURN_IF_ERROR(visitor(record));
    }
    ++stats.records;
    if (record.type == WalRecordType::kCommit) {
      ++stats.commit_records;
    }
    pos += 8 + body_length;
  }
  stats.valid_bytes = pos;
  stats.truncated_bytes = size - pos;
  return stats;
}

Result<WalScanStats> ScanWal(
    const std::string& path, bool repair,
    const std::function<Status(const WalRecord&)>& visitor) {
  WOT_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  WOT_ASSIGN_OR_RETURN(WalScanStats stats,
                       ScanWalBuffer(contents, visitor));
  const size_t pos = static_cast<size_t>(stats.valid_bytes);
  if (repair && stats.truncated_bytes > 0) {
    WOT_LOG(Warning) << "wal '" << path << "': truncating "
                     << stats.truncated_bytes
                     << " torn tail bytes after " << stats.records
                     << " valid records";
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Status::IOError("cannot truncate wal '" + path +
                             "': " + std::strerror(errno));
    }
  }
  return stats;
}

}  // namespace storage
}  // namespace wot
