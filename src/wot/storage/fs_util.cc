#include "wot/storage/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace wot {
namespace storage {

Status WriteAllFd(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string contents;
  char chunk[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IOError("cannot read '" + path +
                             "': " + std::strerror(err));
    }
    if (n == 0) break;
    contents.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open directory '" + dir +
                           "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot fsync directory '" + dir +
                           "': " + std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(),
                  O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + tmp +
                           "': " + std::strerror(errno));
  }
  Status status = WriteAllFd(fd, contents);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IOError("cannot fsync '" + tmp +
                             "': " + std::strerror(errno));
  }
  ::close(fd);
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' to '" + path +
                           "': " + std::strerror(err));
  }
  return SyncDir(DirnameOf(path));
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("cannot create directory '" + dir +
                         "': " + std::strerror(errno));
}

}  // namespace storage
}  // namespace wot
