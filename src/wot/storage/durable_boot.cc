#include "wot/storage/durable_boot.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "wot/io/byte_reader.h"
#include "wot/io/byte_writer.h"
#include "wot/io/crc32.h"
#include "wot/service/dataset_shard.h"
#include "wot/storage/fs_util.h"
#include "wot/util/logging.h"

namespace wot {
namespace storage {
namespace {

constexpr char kShardMetaMagic[8] = {'W', 'O', 'T', 'M',
                                     'E', 'T', 'A', '\n'};
constexpr char kEpochMetaMagic[8] = {'W', 'O', 'T', 'E',
                                     'P', 'O', 'C', '\n'};
constexpr uint32_t kMetaFormatVersion = 1;

std::string ShardMetaPath(const std::string& dir) { return dir + "/meta"; }
std::string RouterEpochPath(const std::string& dir) {
  return dir + "/router.meta";
}
std::string ShardDirOf(const std::string& dir, size_t shard) {
  return dir + "/shard-" + std::to_string(shard);
}

/// magic | u32 format | payload | u32 crc(everything before).
std::string EncodeMetaFile(const char (&magic)[8],
                           const std::function<void(ByteWriter&)>& payload) {
  ByteWriter w;
  w.PutRaw(std::string_view(magic, sizeof(magic)));
  w.PutU32(kMetaFormatVersion);
  payload(w);
  const uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.PutU32(crc);
  return w.Take();
}

/// Verifies the envelope and hands back a reader positioned after the
/// format field, covering only the payload.
Result<ByteReader> OpenMetaFile(const std::string& path,
                                const std::string& contents,
                                const char (&magic)[8]) {
  if (contents.size() < sizeof(magic) + 8) {
    return Status::Corruption("meta file '" + path + "' is truncated");
  }
  if (std::memcmp(contents.data(), magic, sizeof(magic)) != 0) {
    return Status::Corruption("meta file '" + path + "' has a bad magic");
  }
  const size_t crc_offset = contents.size() - 4;
  ByteReader crc_reader(
      std::string_view(contents.data() + crc_offset, 4));
  const uint32_t stored_crc = crc_reader.GetU32();
  if (Crc32(contents.data(), crc_offset) != stored_crc) {
    return Status::Corruption("meta file '" + path +
                              "' failed its checksum");
  }
  ByteReader reader(std::string_view(contents.data() + sizeof(magic),
                                     crc_offset - sizeof(magic)));
  const uint32_t format = reader.GetU32();
  if (reader.failed() || format != kMetaFormatVersion) {
    return Status::Corruption("meta file '" + path +
                              "' has unsupported format " +
                              std::to_string(format));
  }
  return reader;
}

bool FileExists(const std::string& path) {
  struct stat st = {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Result<uint32_t> ReadShardMeta(const std::string& dir) {
  const std::string path = ShardMetaPath(dir);
  if (!FileExists(path)) {
    return Status::NotFound("no meta file at '" + path + "'");
  }
  WOT_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  WOT_ASSIGN_OR_RETURN(ByteReader reader,
                       OpenMetaFile(path, contents, kShardMetaMagic));
  const uint32_t num_shards = reader.GetU32();
  if (reader.failed() || !reader.AtEnd() || num_shards == 0) {
    return Status::Corruption("meta file '" + path +
                              "' holds an invalid shard count");
  }
  return num_shards;
}

Result<uint64_t> ReadRouterEpoch(const std::string& dir) {
  const std::string path = RouterEpochPath(dir);
  if (!FileExists(path)) {
    return Status::NotFound("no router epoch file at '" + path + "'");
  }
  WOT_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  WOT_ASSIGN_OR_RETURN(ByteReader reader,
                       OpenMetaFile(path, contents, kEpochMetaMagic));
  const uint64_t epoch = reader.GetU64();
  if (reader.failed() || !reader.AtEnd() || epoch == 0) {
    return Status::Corruption("router epoch file '" + path +
                              "' holds an invalid epoch");
  }
  return epoch;
}

Result<DurableService> BootDurable(
    const std::string& dir,
    const std::function<Result<Dataset>()>& seed_provider,
    const DurableBootOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  WOT_RETURN_IF_ERROR(EnsureDir(dir));

  // Pin (or verify) the shard count before touching any shard state.
  Result<uint32_t> pinned = ReadShardMeta(dir);
  if (pinned.ok()) {
    if (pinned.ValueOrDie() != options.num_shards) {
      return Status::FailedPrecondition(
          "data directory '" + dir + "' was created with " +
          std::to_string(pinned.ValueOrDie()) +
          " shard(s) but the server asked for " +
          std::to_string(options.num_shards) +
          "; resharding needs a migration, not a flag change");
    }
  } else if (pinned.status().code() == StatusCode::kNotFound) {
    const uint32_t shards = static_cast<uint32_t>(options.num_shards);
    WOT_RETURN_IF_ERROR(AtomicWriteFile(
        ShardMetaPath(dir),
        EncodeMetaFile(kShardMetaMagic, [shards](ByteWriter& w) {
          w.PutU32(shards);
        })));
  } else {
    return pinned.status();
  }

  // Fresh shards seed lazily: slice once, only if someone needs it.
  std::optional<std::vector<Dataset>> slices;
  const size_t num_shards = options.num_shards;
  auto shard_seed = [&](size_t shard) {
    return [&, shard]() -> Result<Dataset> {
      if (!slices.has_value()) {
        WOT_ASSIGN_OR_RETURN(Dataset seed, seed_provider());
        WOT_ASSIGN_OR_RETURN(
            std::vector<Dataset> sliced,
            SliceDatasetByUser(seed, num_shards,
                               options.service.builder));
        slices = std::move(sliced);
      }
      return std::move((*slices)[shard]);
    };
  };

  DurableService result;
  if (num_shards == 1) {
    WOT_ASSIGN_OR_RETURN(
        StorageManager::BootResult boot,
        StorageManager::Boot(dir, shard_seed(0), options.service,
                             options.storage));
    result.managers.push_back(std::move(boot.manager));
    result.service = std::move(boot.service);
    result.frontend_impl =
        std::make_unique<api::ServiceFrontend>(result.service.get());
    result.frontend = result.frontend_impl.get();
    // Surface WAL/rotation timings in the serving frontend's scrapes.
    result.frontend->AddMetricsSource(
        result.managers.back()->metrics_registry());
    result.replayed_records = boot.replayed_records;
    result.recovered = boot.recovered;
    return result;
  }

  std::vector<std::unique_ptr<TrustService>> services;
  services.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    WOT_ASSIGN_OR_RETURN(
        StorageManager::BootResult boot,
        StorageManager::Boot(ShardDirOf(dir, s), shard_seed(s),
                             options.service, options.storage));
    result.managers.push_back(std::move(boot.manager));
    services.push_back(std::move(boot.service));
    result.replayed_records += boot.replayed_records;
    result.recovered = result.recovered || boot.recovered;
  }
  WOT_ASSIGN_OR_RETURN(result.router,
                       api::ShardRouter::CreateFromServices(
                           std::move(services)));
  // One scrape of the router covers every shard's durable store.
  for (const std::unique_ptr<StorageManager>& manager : result.managers) {
    result.router->AddMetricsSource(manager->metrics_registry());
  }

  // Router epoch: restore the persisted value, or persist epoch 1 on a
  // fresh directory. A missing file on a RECOVERED directory means the
  // pre-crash server never published a cross-shard commit — epoch 1.
  uint64_t epoch = 1;
  Result<uint64_t> persisted = ReadRouterEpoch(dir);
  if (persisted.ok()) {
    epoch = persisted.ValueOrDie();
  } else if (persisted.status().code() != StatusCode::kNotFound) {
    return persisted.status();
  }
  result.router->RestoreEpoch(epoch);
  const std::string epoch_path = RouterEpochPath(dir);
  result.router->SetEpochCallback([epoch_path](uint64_t new_epoch) {
    Status written = AtomicWriteFile(
        epoch_path,
        EncodeMetaFile(kEpochMetaMagic, [new_epoch](ByteWriter& w) {
          w.PutU64(new_epoch);
        }));
    if (!written.ok()) {
      WOT_LOG(Error) << "cannot persist router epoch " << new_epoch
                     << ": " << written.message();
    }
  });
  if (!persisted.ok()) {
    WOT_RETURN_IF_ERROR(AtomicWriteFile(
        epoch_path,
        EncodeMetaFile(kEpochMetaMagic, [epoch](ByteWriter& w) {
          w.PutU64(epoch);
        })));
  }
  result.frontend = result.router.get();
  return result;
}

}  // namespace storage
}  // namespace wot
