#include "wot/storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>

#include "wot/community/dataset_builder.h"
#include "wot/community/entities.h"
#include "wot/io/byte_reader.h"
#include "wot/io/byte_writer.h"
#include "wot/io/crc32.h"
#include "wot/storage/fs_util.h"

namespace wot {
namespace storage {
namespace {

constexpr char kMagic[8] = {'W', 'O', 'T', 'S', 'E', 'G', '1', '\n'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 16;  // magic + bulk_offset
constexpr size_t kFooterBytes = 4;   // trailing CRC32

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t LoadU64(const char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU32(uint32_t v, char* p) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

void StoreU64(uint64_t v, char* p) {
  StoreU32(static_cast<uint32_t>(v), p);
  StoreU32(static_cast<uint32_t>(v >> 32), p + 4);
}

// Raw f64 block helpers: straight memcpy on little-endian hosts, a
// per-element byte shuffle otherwise, so the file format stays LE.
void AppendDoublesLE(const double* src, size_t count, std::string* out) {
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(src),
                count * sizeof(double));
  } else {
    char bytes[8];
    for (size_t i = 0; i < count; ++i) {
      StoreU64(std::bit_cast<uint64_t>(src[i]), bytes);
      out->append(bytes, 8);
    }
  }
}

void CopyDoublesFromLE(const char* src, double* dst, size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, src, count * sizeof(double));
  } else {
    for (size_t i = 0; i < count; ++i) {
      dst[i] = std::bit_cast<double>(LoadU64(src + i * 8));
    }
  }
}

// Read-only mapping of a whole file (RAII).
class MappedFile {
 public:
  static Result<std::unique_ptr<MappedFile>> Map(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError("cannot open segment '" + path +
                             "': " + std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return Status::IOError("cannot stat segment '" + path +
                             "': " + std::strerror(err));
    }
    const size_t size = static_cast<size_t>(st.st_size);
    void* base = nullptr;
    if (size > 0) {
      base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        int err = errno;
        ::close(fd);
        return Status::IOError("cannot mmap segment '" + path +
                               "': " + std::strerror(err));
      }
    }
    ::close(fd);
    return std::unique_ptr<MappedFile>(new MappedFile(base, size));
  }

  ~MappedFile() {
    if (base_ != nullptr) ::munmap(base_, size_);
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const {
    return {static_cast<const char*>(base_), size_};
  }

 private:
  MappedFile(void* base, size_t size) : base_(base), size_(size) {}
  void* base_;
  size_t size_;
};

Status CorruptSegment(const std::string& path, const std::string& what) {
  return Status::Corruption("segment '" + path + "': " + what);
}

// Verifies magic and the bulk_offset bounds — the structural facts the
// decoder needs before it can even start. Deliberately does NOT check
// the CRC; see VerifyEnvelope / LoadSegment for the two call patterns.
Status VerifyMagicAndOffset(const std::string& path, std::string_view file,
                            uint64_t* bulk_offset) {
  if (file.size() < kHeaderBytes + kFooterBytes) {
    return CorruptSegment(path, "file too small");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptSegment(path, "bad magic");
  }
  const size_t crc_offset = file.size() - kFooterBytes;
  *bulk_offset = LoadU64(file.data() + 8);
  if (*bulk_offset < kHeaderBytes || *bulk_offset > crc_offset ||
      *bulk_offset % 8 != 0) {
    return CorruptSegment(path, "bulk offset out of bounds");
  }
  return Status::OK();
}

// Verifies magic, bulk_offset bounds, and the footer CRC. On success the
// whole file content is CRC-clean.
Status VerifyEnvelope(const std::string& path, std::string_view file,
                      uint64_t* bulk_offset) {
  WOT_RETURN_IF_ERROR(VerifyMagicAndOffset(path, file, bulk_offset));
  const size_t crc_offset = file.size() - kFooterBytes;
  if (Crc32(file.data(), crc_offset) != LoadU32(file.data() + crc_offset)) {
    return CorruptSegment(path, "CRC mismatch");
  }
  return Status::OK();
}

// Decodes the fixed leading fields of the structured section.
struct SegmentHeader {
  uint64_t snapshot_version = 0;
  uint64_t num_categories = 0;
  uint64_t num_users = 0;
  uint64_t num_objects = 0;
  uint64_t num_reviews = 0;
  uint64_t num_ratings = 0;
  uint64_t num_trust = 0;
};

Status DecodeHeader(const std::string& path, ByteReader* reader,
                    size_t file_bytes, SegmentHeader* header) {
  const uint32_t format = reader->GetU32();
  if (reader->failed() || format != kFormatVersion) {
    return CorruptSegment(path, "unsupported format version");
  }
  header->snapshot_version = reader->GetU64();
  header->num_categories = reader->GetU64();
  header->num_users = reader->GetU64();
  header->num_objects = reader->GetU64();
  header->num_reviews = reader->GetU64();
  header->num_ratings = reader->GetU64();
  header->num_trust = reader->GetU64();
  if (reader->failed() || header->snapshot_version == 0) {
    return CorruptSegment(path, "truncated or invalid header");
  }
  // No entity column can hold more entries than the file has bytes —
  // this bounds every decode loop and reserve() by the file size even
  // for a crafted (CRC-consistent) file.
  for (uint64_t count :
       {header->num_categories, header->num_users, header->num_objects,
        header->num_reviews, header->num_ratings, header->num_trust}) {
    if (count > file_bytes) {
      return CorruptSegment(path, "entity count exceeds file size");
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteSegment(const std::string& path, const TrustSnapshot& snapshot,
                    const Dataset& staged) {
  const size_t num_users = staged.num_users();
  const size_t num_categories = staged.num_categories();
  if (snapshot.num_users() != num_users ||
      snapshot.num_categories() != num_categories ||
      snapshot.num_reviews() != staged.num_reviews() ||
      snapshot.num_ratings() != staged.num_ratings()) {
    return Status::InvalidArgument(
        "segment write requires the snapshot to be derived from the "
        "staged dataset (commit-time state)");
  }
  const ReputationResult& reputation = snapshot.reputation();
  if (reputation.expertise.rows() != num_users ||
      reputation.expertise.cols() != num_categories ||
      reputation.review_quality.size() != staged.num_reviews() ||
      reputation.convergence.size() != num_categories) {
    return Status::InvalidArgument("snapshot reputation shape mismatch");
  }

  ByteWriter structured;
  structured.PutU32(kFormatVersion);
  structured.PutU64(snapshot.version());
  structured.PutU64(num_categories);
  structured.PutU64(num_users);
  structured.PutU64(staged.num_objects());
  structured.PutU64(staged.num_reviews());
  structured.PutU64(staged.num_ratings());
  structured.PutU64(staged.num_trust_statements());
  for (const Category& category : staged.categories()) {
    structured.PutString(category.name);
  }
  for (const User& user : staged.users()) {
    structured.PutString(user.name);
  }
  for (const Object& object : staged.objects()) {
    structured.PutU32(object.category.value()).PutString(object.name);
  }
  for (const Review& review : staged.reviews()) {
    structured.PutU32(review.writer.value()).PutU32(review.object.value());
  }
  for (const ReviewRating& rating : staged.ratings()) {
    structured.PutU32(rating.rater.value())
        .PutU32(rating.review.value())
        .PutDouble(rating.value);
  }
  for (const TrustStatement& statement : staged.trust_statements()) {
    structured.PutU32(statement.source.value())
        .PutU32(statement.target.value());
  }
  for (const ConvergenceInfo& info : reputation.convergence) {
    structured.PutU64(static_cast<uint64_t>(info.iterations))
        .PutDouble(info.final_delta)
        .PutU8(info.converged ? 1 : 0);
  }
  const std::vector<ExpertisePostingPtr>& postings =
      snapshot.deriver().postings();
  if (postings.empty()) {
    structured.PutU8(0);
  } else {
    if (postings.size() != num_categories) {
      return Status::InvalidArgument("snapshot postings shape mismatch");
    }
    structured.PutU8(1);
    for (const ExpertisePostingPtr& posting : postings) {
      structured.PutU64(posting->size());
      for (const ScoredUser& entry : *posting) {
        structured.PutU32(entry.user).PutDouble(entry.score);
      }
    }
  }

  std::string file(kMagic, sizeof(kMagic));
  file.resize(kHeaderBytes, '\0');
  file += structured.buffer();
  while (file.size() % 8 != 0) {
    file.push_back('\0');
  }
  StoreU64(file.size(), file.data() + 8);

  AppendDoublesLE(reputation.expertise.data().data(),
                  num_users * num_categories, &file);
  AppendDoublesLE(reputation.rater_reputation.data().data(),
                  num_users * num_categories, &file);
  AppendDoublesLE(snapshot.affiliation().data().data(),
                  num_users * num_categories, &file);
  AppendDoublesLE(reputation.review_quality.data(),
                  reputation.review_quality.size(), &file);

  char crc_bytes[4];
  StoreU32(Crc32(file.data(), file.size()), crc_bytes);
  file.append(crc_bytes, sizeof(crc_bytes));

  return AtomicWriteFile(path, file);
}

// Decodes everything past the envelope. Total on hostile input: every
// count and reference is bounds-checked against the file (and the
// corruption fuzz suite drives it with un-CRC-checked bytes), so it is
// safe to run this before — or concurrently with — the CRC pass.
Result<SegmentData> DecodeSegmentBody(const std::string& path,
                                      std::string_view file,
                                      uint64_t bulk_offset,
                                      size_t crc_offset) {
  ByteReader reader(file.substr(kHeaderBytes, bulk_offset - kHeaderBytes));
  SegmentHeader header;
  WOT_RETURN_IF_ERROR(DecodeHeader(path, &reader, file.size(), &header));

  // The bulk section's size is fully determined by the header counts;
  // anything else means the file is inconsistent.
  const uint64_t matrix_doubles = header.num_users * header.num_categories;
  const uint64_t bulk_bytes =
      (3 * matrix_doubles + header.num_reviews) * sizeof(double);
  if (bulk_offset + bulk_bytes != crc_offset) {
    return CorruptSegment(path, "bulk section size mismatch");
  }

  std::vector<Category> categories;
  categories.reserve(header.num_categories);
  for (uint64_t i = 0; i < header.num_categories && !reader.failed(); ++i) {
    categories.push_back(Category{CategoryId(), reader.GetString()});
  }
  std::vector<User> users;
  users.reserve(header.num_users);
  for (uint64_t i = 0; i < header.num_users && !reader.failed(); ++i) {
    users.push_back(User{UserId(), reader.GetString()});
  }
  std::vector<Object> objects;
  objects.reserve(header.num_objects);
  for (uint64_t i = 0; i < header.num_objects && !reader.failed(); ++i) {
    const uint32_t category = reader.GetU32();
    objects.push_back(
        Object{ObjectId(), CategoryId(category), reader.GetString()});
  }
  // The remaining entity columns are fixed-width record arrays; one
  // GetRaw bounds check per column replaces three sticky checks per
  // record, which is what keeps instant boot instant at 10^5..10^6
  // ratings (GetRaw returns nullptr on underflow and the loops are
  // skipped — the failed() check below reports it).
  std::vector<Review> reviews(header.num_reviews);
  if (const char* raw = reader.GetRaw(header.num_reviews * 8)) {
    for (uint64_t i = 0; i < header.num_reviews; ++i, raw += 8) {
      reviews[i] = Review{ReviewId(), UserId(LoadU32(raw)),
                          ObjectId(LoadU32(raw + 4)), CategoryId()};
    }
  }
  std::vector<ReviewRating> ratings(header.num_ratings);
  if (const char* raw = reader.GetRaw(header.num_ratings * 16)) {
    for (uint64_t i = 0; i < header.num_ratings; ++i, raw += 16) {
      ratings[i] =
          ReviewRating{UserId(LoadU32(raw)), ReviewId(LoadU32(raw + 4)),
                       std::bit_cast<double>(LoadU64(raw + 8))};
    }
  }
  std::vector<TrustStatement> trust(header.num_trust);
  if (const char* raw = reader.GetRaw(header.num_trust * 8)) {
    for (uint64_t i = 0; i < header.num_trust; ++i, raw += 8) {
      trust[i] =
          TrustStatement{UserId(LoadU32(raw)), UserId(LoadU32(raw + 4))};
    }
  }

  SegmentData data;
  data.snapshot_version = header.snapshot_version;
  data.reputation.convergence.reserve(header.num_categories);
  for (uint64_t i = 0; i < header.num_categories && !reader.failed(); ++i) {
    ConvergenceInfo info;
    info.iterations = static_cast<size_t>(reader.GetU64());
    info.final_delta = reader.GetDouble();
    info.converged = reader.GetU8() != 0;
    data.reputation.convergence.push_back(info);
  }
  const uint8_t has_postings = reader.GetU8();
  if (has_postings > 1) {
    return CorruptSegment(path, "invalid postings flag");
  }
  if (has_postings == 1) {
    data.postings.reserve(header.num_categories);
    for (uint64_t c = 0; c < header.num_categories && !reader.failed();
         ++c) {
      const uint64_t count = reader.GetU64();
      if (count > file.size()) {
        return CorruptSegment(path, "posting count exceeds file size");
      }
      auto posting = std::make_shared<ExpertisePosting>(count);
      if (const char* raw = reader.GetRaw(count * 12)) {
        for (uint64_t i = 0; i < count; ++i, raw += 12) {
          (*posting)[i] =
              ScoredUser{LoadU32(raw), std::bit_cast<double>(LoadU64(raw + 4))};
        }
      }
      data.postings.push_back(std::move(posting));
    }
  }
  if (reader.failed()) {
    return CorruptSegment(path, "truncated structured section");
  }
  // Only alignment padding may remain before the bulk section.
  if (reader.remaining() >= 8) {
    return CorruptSegment(path, "structured section has trailing bytes");
  }

  const char* bulk = file.data() + bulk_offset;
  data.reputation.expertise =
      DenseMatrix(header.num_users, header.num_categories, 0.0);
  data.reputation.rater_reputation =
      DenseMatrix(header.num_users, header.num_categories, 0.0);
  data.affiliation =
      DenseMatrix(header.num_users, header.num_categories, 0.0);
  const size_t row_bytes = header.num_categories * sizeof(double);
  for (uint64_t u = 0; u < header.num_users; ++u) {
    CopyDoublesFromLE(bulk + u * row_bytes,
                      data.reputation.expertise.Row(u).data(),
                      header.num_categories);
    CopyDoublesFromLE(bulk + (matrix_doubles + u * header.num_categories) *
                                 sizeof(double),
                      data.reputation.rater_reputation.Row(u).data(),
                      header.num_categories);
    CopyDoublesFromLE(bulk + (2 * matrix_doubles +
                              u * header.num_categories) *
                                 sizeof(double),
                      data.affiliation.Row(u).data(),
                      header.num_categories);
  }
  data.reputation.review_quality.resize(header.num_reviews, 0.0);
  CopyDoublesFromLE(bulk + 3 * matrix_doubles * sizeof(double),
                    data.reputation.review_quality.data(),
                    header.num_reviews);

  Result<Dataset> dataset = DatasetBuilder::FromValidatedColumns(
      std::move(categories), std::move(users), std::move(objects),
      std::move(reviews), std::move(ratings), std::move(trust));
  if (!dataset.ok()) {
    return CorruptSegment(path, dataset.status().message());
  }
  data.dataset = std::move(dataset).ValueOrDie();
  return data;
}

Result<SegmentData> LoadSegment(const std::string& path) {
  WOT_ASSIGN_OR_RETURN(std::unique_ptr<MappedFile> mapped,
                       MappedFile::Map(path));
  std::string_view file = mapped->view();
  uint64_t bulk_offset = 0;
  WOT_RETURN_IF_ERROR(VerifyMagicAndOffset(path, file, &bulk_offset));
  const size_t crc_offset = file.size() - kFooterBytes;

  // The CRC pass and the decode pass each walk the whole multi-megabyte
  // mapping; running them concurrently nearly halves instant-boot
  // latency. Soundness: DecodeSegmentBody is total on unverified bytes
  // (see above), and its result is surfaced only after the CRC verdict —
  // a mismatch wins over whatever the decoder produced or reported.
  uint32_t actual_crc = 0;
  std::thread crc_pass([file, crc_offset, &actual_crc] {
    actual_crc = Crc32(file.data(), crc_offset);
  });
  Result<SegmentData> decoded =
      DecodeSegmentBody(path, file, bulk_offset, crc_offset);
  crc_pass.join();
  if (actual_crc != LoadU32(file.data() + crc_offset)) {
    return CorruptSegment(path, "CRC mismatch");
  }
  return decoded;
}

Result<SegmentInfo> ReadSegmentInfo(const std::string& path) {
  WOT_ASSIGN_OR_RETURN(std::unique_ptr<MappedFile> mapped,
                       MappedFile::Map(path));
  std::string_view file = mapped->view();
  uint64_t bulk_offset = 0;
  WOT_RETURN_IF_ERROR(VerifyEnvelope(path, file, &bulk_offset));
  ByteReader reader(file.substr(kHeaderBytes, bulk_offset - kHeaderBytes));
  SegmentHeader header;
  WOT_RETURN_IF_ERROR(DecodeHeader(path, &reader, file.size(), &header));
  SegmentInfo info;
  info.snapshot_version = header.snapshot_version;
  info.file_bytes = file.size();
  info.num_categories = header.num_categories;
  info.num_users = header.num_users;
  info.num_objects = header.num_objects;
  info.num_reviews = header.num_reviews;
  info.num_ratings = header.num_ratings;
  return info;
}

}  // namespace storage
}  // namespace wot
