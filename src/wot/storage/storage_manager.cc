#include "wot/storage/storage_manager.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "wot/storage/fs_util.h"
#include "wot/storage/segment.h"
#include "wot/telemetry/timed.h"
#include "wot/util/logging.h"

namespace wot {
namespace storage {
namespace {

/// Parses "<prefix><number><suffix>" (all-digit number); nullopt-style
/// via the bool return because the number may legitimately be huge.
bool ParseNumberedName(const std::string& name, std::string_view prefix,
                       std::string_view suffix, uint64_t* number) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
      0) {
    return false;
  }
  const std::string digits = name.substr(
      prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(digits.c_str(), &end, 10);
  if (errno != 0 || end != digits.c_str() + digits.size()) return false;
  *number = static_cast<uint64_t>(value);
  return true;
}

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace

Status ApplyWalRecord(TrustService& service, const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kAddUser:
      service.AddUser(record.name);
      return Status::OK();
    case WalRecordType::kAddCategory:
      service.AddCategory(record.name);
      return Status::OK();
    case WalRecordType::kAddObject: {
      Result<ObjectId> added =
          service.AddObject(CategoryId(record.a), record.name);
      if (!added.ok()) {
        return Status::Corruption("wal replay: add_object rejected: " +
                                  added.status().message());
      }
      return Status::OK();
    }
    case WalRecordType::kAddReview: {
      Result<ReviewId> added =
          service.AddReview(UserId(record.a), ObjectId(record.b));
      if (!added.ok()) {
        return Status::Corruption("wal replay: add_review rejected: " +
                                  added.status().message());
      }
      return Status::OK();
    }
    case WalRecordType::kAddRating: {
      Status added = service.AddRating(UserId(record.a),
                                       ReviewId(record.b), record.value);
      if (!added.ok()) {
        return Status::Corruption("wal replay: add_rating rejected: " +
                                  added.message());
      }
      return Status::OK();
    }
    case WalRecordType::kCommit: {
      Result<TrustService::CommitStats> stats = service.Commit();
      if (!stats.ok()) {
        return Status::Corruption("wal replay: commit failed: " +
                                  stats.status().message());
      }
      if (stats.ValueOrDie().version != record.version) {
        return Status::Corruption(
            "wal replay: commit produced version " +
            std::to_string(stats.ValueOrDie().version) +
            " but the log recorded version " +
            std::to_string(record.version));
      }
      return Status::OK();
    }
  }
  return Status::Corruption("wal replay: unhandled record type");
}

std::string SegmentPath(const std::string& dir, uint64_t version) {
  return dir + "/segment-" + std::to_string(version) + ".seg";
}

std::string WalPath(const std::string& dir, uint64_t epoch) {
  return dir + "/wal-" + std::to_string(epoch) + ".log";
}

Result<StorageFileSet> ListStorageFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot open data directory '" + dir +
                           "': " + std::strerror(errno));
  }
  StorageFileSet files;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t number = 0;
    if (ParseNumberedName(name, "segment-", ".seg", &number)) {
      files.segments.push_back({dir + "/" + name, number});
    } else if (ParseNumberedName(name, "wal-", ".log", &number)) {
      files.wals.push_back({dir + "/" + name, number});
    }
  }
  ::closedir(d);
  auto by_number = [](const StorageFile& a, const StorageFile& b) {
    return a.number < b.number;
  };
  std::sort(files.segments.begin(), files.segments.end(), by_number);
  std::sort(files.wals.begin(), files.wals.end(), by_number);
  return files;
}

StorageManager::StorageManager(std::string dir, StorageOptions options,
                               std::unique_ptr<WalWriter> wal,
                               uint64_t segment_epoch,
                               uint64_t segment_bytes,
                               uint64_t replayed_records)
    : dir_(std::move(dir)),
      options_(options),
      metrics_(std::make_shared<telemetry::MetricRegistry>()),
      wal_append_ns_(metrics_->histogram("storage.wal_append_ns")),
      wal_fsync_ns_(metrics_->histogram("storage.wal_fsync_ns")),
      rotation_ns_(metrics_->histogram("storage.rotation_ns")),
      commit_batch_records_(
          metrics_->histogram("storage.commit_batch_records")),
      rotations_(metrics_->counter("storage.rotations")),
      rotation_bytes_(metrics_->counter("storage.rotation_bytes")),
      segment_write_ns_(metrics_->histogram("storage.segment_write_ns")),
      wal_(std::move(wal)),
      segment_epoch_(segment_epoch),
      segment_bytes_(segment_bytes),
      replayed_records_(replayed_records) {
  if (options_.background_rotation) {
    rotation_thread_ = std::thread([this] { RotationLoop(); });
  }
}

StorageManager::~StorageManager() {
  if (rotation_thread_.joinable()) {
    {
      MutexLock lock(rotation_mu_);
      rotation_stop_ = true;
      rotation_cv_.NotifyAll();
    }
    rotation_thread_.join();
  }
}

void StorageManager::AppendMutation(const WalRecord& record) {
  if (!degraded_.ok()) return;
  telemetry::Timer timer;
  Status status = wal_->Append(record);
  timer.RecordInto(wal_append_ns_);
  if (status.ok()) {
    ++records_since_commit_;
  }
  if (!status.ok()) {
    WOT_LOG(Error) << "wal append failed; durability degraded until "
                      "restart: "
                   << status.message();
    degraded_ = status;
  }
}

void StorageManager::LogAddUser(std::string_view name) {
  WalRecord record;
  record.type = WalRecordType::kAddUser;
  record.name = std::string(name);
  MutexLock lock(mu_);
  AppendMutation(record);
}

void StorageManager::LogAddCategory(std::string_view name) {
  WalRecord record;
  record.type = WalRecordType::kAddCategory;
  record.name = std::string(name);
  MutexLock lock(mu_);
  AppendMutation(record);
}

void StorageManager::LogAddObject(uint32_t category,
                                  std::string_view name) {
  WalRecord record;
  record.type = WalRecordType::kAddObject;
  record.a = category;
  record.name = std::string(name);
  MutexLock lock(mu_);
  AppendMutation(record);
}

void StorageManager::LogAddReview(uint32_t writer, uint32_t object) {
  WalRecord record;
  record.type = WalRecordType::kAddReview;
  record.a = writer;
  record.b = object;
  MutexLock lock(mu_);
  AppendMutation(record);
}

void StorageManager::LogAddRating(uint32_t rater, uint32_t review,
                                  double value) {
  WalRecord record;
  record.type = WalRecordType::kAddRating;
  record.a = rater;
  record.b = review;
  record.value = value;
  MutexLock lock(mu_);
  AppendMutation(record);
}

Status StorageManager::LogCommit(
    uint64_t version, bool published,
    const std::shared_ptr<const TrustSnapshot>& snapshot,
    const Dataset& staged) {
  MutexLock lock(mu_);
  if (!degraded_.ok()) return degraded_;
  commit_batch_records_->Record(records_since_commit_);
  records_since_commit_ = 0;
  WalRecord record;
  record.type = WalRecordType::kCommit;
  record.version = version;
  telemetry::Timer append_timer;
  Status status = wal_->Append(record);
  append_timer.RecordInto(wal_append_ns_);
  if (status.ok()) {
    telemetry::Timer sync_timer;
    status = wal_->Sync();
    sync_timer.RecordInto(wal_fsync_ns_);
  }
  if (!status.ok()) {
    WOT_LOG(Error) << "wal commit sync failed; durability degraded "
                      "until restart: "
                   << status.message();
    degraded_ = status;
    return status;
  }
  if (published && version > segment_epoch_) {
    WOT_TIMED(rotation_ns_);
    RotateLocked(version, snapshot, staged);
  }
  return Status::OK();
}

void StorageManager::RotateLocked(
    uint64_t version, const std::shared_ptr<const TrustSnapshot>& snapshot,
    const Dataset& staged) {
  // New WAL first: if the segment write fails afterwards, recovery
  // replays wal-<old> (which ends in this commit) and then wal-<version>
  // — no record is ever orphaned behind a newer segment.
  Result<std::unique_ptr<WalWriter>> next_wal =
      WalWriter::Open(WalPath(dir_, version), options_.fsync,
                      /*initial_records=*/0);
  if (!next_wal.ok()) {
    WOT_LOG(Error) << "cannot rotate wal for version " << version
                   << " (continuing on " << wal_->path()
                   << "): " << next_wal.status().message();
    return;
  }
  wal_ = std::move(next_wal).ValueOrDie();

  if (rotation_thread_.joinable()) {
    // Hand the segment write to the rotation thread. The snapshot is
    // shared (cheap); the staged dataset must be copied — it is only
    // valid for the duration of the LogCommit call.
    auto job = std::make_unique<RotationJob>();
    job->version = version;
    job->snapshot = snapshot;
    job->staged = staged;
    MutexLock lock(rotation_mu_);
    pending_rotation_ = std::move(job);  // coalesce: newest version wins
    rotation_cv_.NotifyAll();
    return;
  }

  telemetry::Timer timer;
  Result<uint64_t> bytes = WriteSegmentAndRetire(version, *snapshot, staged);
  timer.RecordInto(segment_write_ns_);
  if (!bytes.ok()) {
    WOT_LOG(Error) << "segment write failed for version " << version
                   << " (wal chain still covers it): "
                   << bytes.status().message();
    return;
  }
  segment_epoch_ = version;
  segment_bytes_ = bytes.ValueOrDie();
  rotations_->Increment();
  rotation_bytes_->Increment(static_cast<int64_t>(segment_bytes_));
}

Result<uint64_t> StorageManager::WriteSegmentAndRetire(
    uint64_t version, const TrustSnapshot& snapshot, const Dataset& staged) {
  const std::string segment_path = SegmentPath(dir_, version);
  WOT_RETURN_IF_ERROR(WriteSegment(segment_path, snapshot, staged));
  WOT_ASSIGN_OR_RETURN(uint64_t bytes, FileSizeOf(segment_path));

  // Retention: keep the newest keep_segments segments, drop older ones
  // and every WAL below the oldest keeper (their records are folded into
  // a kept segment). Deletion failures only cost disk, not correctness.
  Result<StorageFileSet> files = ListStorageFiles(dir_);
  if (!files.ok()) {
    WOT_LOG(Warning) << "retention scan failed: "
                     << files.status().message();
    return bytes;
  }
  const size_t keep = std::max<size_t>(options_.keep_segments, 1);
  const StorageFileSet& set = files.ValueOrDie();
  if (set.segments.size() <= keep) return bytes;
  const uint64_t oldest_kept =
      set.segments[set.segments.size() - keep].number;
  for (const StorageFile& segment : set.segments) {
    if (segment.number < oldest_kept &&
        std::remove(segment.path.c_str()) != 0) {
      WOT_LOG(Warning) << "cannot retire " << segment.path << ": "
                       << std::strerror(errno);
    }
  }
  for (const StorageFile& wal : set.wals) {
    if (wal.number < oldest_kept &&
        std::remove(wal.path.c_str()) != 0) {
      WOT_LOG(Warning) << "cannot retire " << wal.path << ": "
                       << std::strerror(errno);
    }
  }
  return bytes;
}

void StorageManager::FinishRotation(uint64_t version, uint64_t bytes) {
  MutexLock lock(mu_);
  if (version > segment_epoch_) {
    segment_epoch_ = version;
    segment_bytes_ = bytes;
  }
  rotations_->Increment();
  rotation_bytes_->Increment(static_cast<int64_t>(bytes));
}

void StorageManager::RotationLoop() {
  for (;;) {
    std::unique_ptr<RotationJob> job;
    {
      MutexLock lock(rotation_mu_);
      while (pending_rotation_ == nullptr && !rotation_stop_) {
        rotation_cv_.Wait(rotation_mu_);
      }
      if (pending_rotation_ == nullptr) break;  // stopping, queue drained
      job = std::move(pending_rotation_);
      rotation_in_flight_ = true;
    }
    telemetry::Timer timer;
    Result<uint64_t> bytes =
        WriteSegmentAndRetire(job->version, *job->snapshot, job->staged);
    timer.RecordInto(segment_write_ns_);
    if (bytes.ok()) {
      FinishRotation(job->version, bytes.ValueOrDie());
    } else {
      WOT_LOG(Error) << "background segment write failed for version "
                     << job->version << " (wal chain still covers it): "
                     << bytes.status().message();
    }
    MutexLock lock(rotation_mu_);
    rotation_in_flight_ = false;
    rotation_cv_.NotifyAll();
  }
}

void StorageManager::WaitForIdle() {
  MutexLock lock(rotation_mu_);
  while (pending_rotation_ != nullptr || rotation_in_flight_) {
    rotation_cv_.Wait(rotation_mu_);
  }
}

DurabilityStats StorageManager::durability_stats() const {
  MutexLock lock(mu_);
  DurabilityStats stats;
  stats.wal_records = static_cast<int64_t>(wal_->records());
  stats.wal_bytes = static_cast<int64_t>(wal_->bytes());
  stats.segment_epoch = static_cast<int64_t>(segment_epoch_);
  stats.segment_bytes = static_cast<int64_t>(segment_bytes_);
  stats.recovered_replayed_records =
      static_cast<int64_t>(replayed_records_);
  return stats;
}

Result<StorageManager::BootResult> StorageManager::Boot(
    const std::string& dir,
    const std::function<Result<Dataset>()>& seed_provider,
    const TrustServiceOptions& service_options,
    const StorageOptions& storage_options) {
  WOT_RETURN_IF_ERROR(EnsureDir(dir));
  WOT_ASSIGN_OR_RETURN(StorageFileSet files, ListStorageFiles(dir));

  if (files.segments.empty()) {
    if (!files.wals.empty()) {
      return Status::Corruption(
          "data directory '" + dir +
          "' has wal files but no snapshot segment; refusing to guess "
          "at history");
    }
    // Fresh boot: seed, publish version 1, persist it.
    WOT_ASSIGN_OR_RETURN(Dataset seed, seed_provider());
    WOT_ASSIGN_OR_RETURN(std::unique_ptr<TrustService> service,
                         TrustService::Create(seed, service_options));
    std::shared_ptr<const TrustSnapshot> snapshot = service->Snapshot();
    const std::string segment_path =
        SegmentPath(dir, snapshot->version());
    WOT_RETURN_IF_ERROR(
        WriteSegment(segment_path, *snapshot, service->staged_dataset()));
    WOT_ASSIGN_OR_RETURN(uint64_t segment_bytes,
                         FileSizeOf(segment_path));
    WOT_ASSIGN_OR_RETURN(
        std::unique_ptr<WalWriter> wal,
        WalWriter::Open(WalPath(dir, snapshot->version()),
                        storage_options.fsync, /*initial_records=*/0));
    BootResult result;
    result.manager.reset(new StorageManager(
        dir, storage_options, std::move(wal), snapshot->version(),
        segment_bytes, /*replayed_records=*/0));
    result.service = std::move(service);
    result.service->SetMutationLog(result.manager.get());
    result.recovered = false;
    return result;
  }

  // Recovery: newest valid segment wins; older ones are fallbacks for
  // a torn-at-power-loss filesystem (rename is atomic, so in practice
  // the newest is valid or absent — but CRCs make this robust anyway).
  uint64_t segment_version = 0;
  uint64_t segment_bytes = 0;
  std::unique_ptr<TrustService> service;
  for (size_t i = files.segments.size(); i-- > 0 && service == nullptr;) {
    const StorageFile& candidate = files.segments[i];
    Result<SegmentData> data = LoadSegment(candidate.path);
    if (!data.ok()) {
      WOT_LOG(Warning) << "skipping invalid segment " << candidate.path
                       << ": " << data.status().message();
      continue;
    }
    SegmentData segment = std::move(data).ValueOrDie();
    Result<std::unique_ptr<TrustService>> restored = TrustService::Restore(
        std::move(segment.dataset), std::move(segment.reputation),
        std::move(segment.affiliation), std::move(segment.postings),
        segment.snapshot_version, service_options);
    if (!restored.ok()) {
      WOT_LOG(Warning) << "segment " << candidate.path
                       << " did not restore: "
                       << restored.status().message();
      continue;
    }
    service = std::move(restored).ValueOrDie();
    segment_version = segment.snapshot_version;
    WOT_ASSIGN_OR_RETURN(segment_bytes, FileSizeOf(candidate.path));
  }
  if (service == nullptr) {
    return Status::Corruption("data directory '" + dir +
                              "' has no loadable snapshot segment");
  }

  // Replay WALs at or past the segment's epoch, oldest first. Only the
  // newest file may carry a torn tail (it is repaired in place); a tear
  // in an older file would orphan every later record, so it is fatal.
  uint64_t replayed = 0;
  uint64_t open_epoch = segment_version;
  uint64_t open_records = 0;
  bool opened = false;
  for (size_t i = 0; i < files.wals.size(); ++i) {
    const StorageFile& wal = files.wals[i];
    if (wal.number < segment_version) continue;
    const bool newest = i + 1 == files.wals.size();
    TrustService* raw = service.get();
    Result<WalScanStats> scanned = ScanWal(
        wal.path, /*repair=*/newest,
        [raw](const WalRecord& record) {
          return ApplyWalRecord(*raw, record);
        });
    if (!scanned.ok()) {
      return Status::Corruption("wal '" + wal.path + "' is corrupt: " +
                                scanned.status().message());
    }
    const WalScanStats& stats = scanned.ValueOrDie();
    if (!newest && stats.truncated_bytes > 0) {
      return Status::Corruption(
          "wal '" + wal.path + "' has a torn tail (" +
          std::to_string(stats.truncated_bytes) +
          " bytes) but newer wal files exist; the record chain is "
          "broken");
    }
    replayed += stats.records;
    open_epoch = wal.number;
    open_records = stats.records;
    opened = true;
  }
  if (replayed > 0) {
    WOT_LOG(Info) << "recovered " << dir << ": segment version "
                  << segment_version << " + " << replayed
                  << " replayed wal records (serving version "
                  << service->Snapshot()->version() << ")";
  }

  // Keep appending where the chain left off (create wal-<segment> when
  // the crash landed between segment write and wal rotation).
  WOT_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> wal,
      WalWriter::Open(WalPath(dir, open_epoch), storage_options.fsync,
                      opened ? open_records : 0));
  BootResult result;
  result.manager.reset(new StorageManager(
      dir, storage_options, std::move(wal), segment_version,
      segment_bytes, replayed));
  result.service = std::move(service);
  result.service->SetMutationLog(result.manager.get());
  result.replayed_records = replayed;
  result.recovered = true;
  return result;
}

}  // namespace storage
}  // namespace wot
