// Small POSIX file helpers shared by the storage layer (WAL, segments,
// meta files). All errors surface as Status — no exceptions, no aborts.
#ifndef WOT_STORAGE_FS_UTIL_H_
#define WOT_STORAGE_FS_UTIL_H_

#include <string>
#include <string_view>

#include "wot/util/result.h"

namespace wot {
namespace storage {

/// \brief write(2) until \p bytes is fully written (EINTR-safe).
Status WriteAllFd(int fd, std::string_view bytes);

/// \brief Reads the whole file into memory.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief fsyncs the directory itself so a just-renamed entry is durable.
Status SyncDir(const std::string& dir);

/// \brief The directory component of \p path ("." when none).
std::string DirnameOf(const std::string& path);

/// \brief Durable temp-then-rename replacement of \p path: writes
/// \p contents to "<path>.tmp", fsyncs, renames over \p path, fsyncs the
/// parent directory. The destination is either the complete new contents
/// or untouched — never a torn mix.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// \brief mkdir -p (existing directories are fine).
Status EnsureDir(const std::string& dir);

}  // namespace storage
}  // namespace wot

#endif  // WOT_STORAGE_FS_UTIL_H_
