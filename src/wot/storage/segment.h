// Snapshot segment files: one published TrustSnapshot — plus the full
// staged dataset it was derived from — serialized into a single
// versioned, little-endian, mmap-able file.
//
// Layout (all integers little-endian):
//
//   [0,  8)   magic "WOTSEG1\n"
//   [8, 16)   u64 bulk_offset (absolute, 8-byte aligned)
//   [16, ..)  structured section (wot::ByteWriter encoding):
//               u32 format_version (= 1)
//               u64 snapshot_version
//               u64 num_categories / users / objects / reviews /
//                   ratings / trust_statements
//               category names, user names,
//               objects  (u32 category, name),
//               reviews  (u32 writer, u32 object; the category is
//                         denormalized from the object at load),
//               ratings  (u32 rater, u32 review, f64 value),
//               trust    (u32 source, u32 target),
//               convergence (u64 iterations, f64 final_delta,
//                            u8 converged) per category,
//               postings: u8 present; per category u64 count +
//                         (u32 user, f64 score) entries
//   [bulk_offset, ..)  zero-padded to 8 bytes, then raw f64 blocks:
//               expertise (U x C), rater_reputation (U x C),
//               affiliation (U x C), review_quality (R)
//   [size-4, size)  u32 CRC32 of every preceding byte
//
// The double blocks are 8-byte aligned in the file so a loader can read
// them straight out of a read-only mapping (one bulk copy per matrix on
// little-endian hosts; DenseMatrix owns its memory, so a true in-place
// matrix view stays future work). Segments are written temp-then-rename
// (see AtomicWriteFile): a segment file is either complete or absent,
// and the trailing CRC rejects any bit rot in between.
#ifndef WOT_STORAGE_SEGMENT_H_
#define WOT_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/core/trust_derivation.h"
#include "wot/linalg/dense_matrix.h"
#include "wot/reputation/engine.h"
#include "wot/service/trust_snapshot.h"
#include "wot/util/result.h"

namespace wot {
namespace storage {

/// \brief Everything a segment persists — the inputs TrustService::Restore
/// needs to come back as if it never restarted.
struct SegmentData {
  Dataset dataset;  ///< Full staged dataset at segment-write time.
  ReputationResult reputation;
  DenseMatrix affiliation;
  std::vector<ExpertisePostingPtr> postings;  ///< Empty when not persisted.
  uint64_t snapshot_version = 0;
};

/// \brief Header-level facts about a segment file (wot_cli storage
/// inspect). Produced only after the full-file CRC verified.
struct SegmentInfo {
  uint64_t snapshot_version = 0;
  uint64_t file_bytes = 0;
  uint64_t num_categories = 0;
  uint64_t num_users = 0;
  uint64_t num_objects = 0;
  uint64_t num_reviews = 0;
  uint64_t num_ratings = 0;
};

/// \brief Serializes \p snapshot + \p staged to \p path atomically
/// (temp-then-rename + directory fsync). \p staged must be the dataset
/// the snapshot was derived from (equal user/category/review/rating
/// counts; extra reviewless objects are fine and are persisted too).
Status WriteSegment(const std::string& path, const TrustSnapshot& snapshot,
                    const Dataset& staged);

/// \brief Maps \p path read-only, verifies the CRC, and decodes. Corrupt
/// or truncated files produce a clean error, never a fault.
Result<SegmentData> LoadSegment(const std::string& path);

/// \brief CRC + header verification without materializing the contents.
Result<SegmentInfo> ReadSegmentInfo(const std::string& path);

}  // namespace storage
}  // namespace wot

#endif  // WOT_STORAGE_SEGMENT_H_
