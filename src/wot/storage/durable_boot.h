// BootDurable: the one call wot_served makes for --data-dir.
//
// Wraps StorageManager::Boot for the whole serving topology:
//
//   * num_shards == 1: the data directory IS the service's storage
//     directory (segments + WALs at top level, plus a `meta` file
//     pinning the shard count).
//   * num_shards >= 2: DIR/meta pins the shard count, each shard keeps
//     its own WAL + segments under DIR/shard-<s>/, and DIR/router.meta
//     persists the router-level commit epoch (rewritten atomically
//     after every epoch bump via ShardRouter::SetEpochCallback).
//
// A directory created with one shard count refuses to boot with
// another — resharding is a data migration, not a flag change. Fresh
// shard directories are seeded lazily: the seed provider runs (and the
// dataset is sliced) only if at least one shard actually needs it, so
// recovery never pays seed-synthesis cost.
#ifndef WOT_STORAGE_DURABLE_BOOT_H_
#define WOT_STORAGE_DURABLE_BOOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wot/api/frontend.h"
#include "wot/api/shard_router.h"
#include "wot/storage/storage_manager.h"
#include "wot/util/result.h"

namespace wot {
namespace storage {

struct DurableBootOptions {
  TrustServiceOptions service;
  StorageOptions storage;
  size_t num_shards = 1;
};

/// \brief A booted durable serving stack. Exactly one of `frontend_impl`
/// (one shard) or `router` (several) is set; `frontend` points at
/// whichever one answers requests. The managers must outlive the
/// services — keep the whole struct together and let member order
/// handle destruction.
struct DurableService {
  /// Storage managers, one per shard, declared FIRST so they are
  /// destroyed LAST (services detach by dying before their log).
  std::vector<std::unique_ptr<StorageManager>> managers;
  std::unique_ptr<TrustService> service;  ///< One shard only.
  std::unique_ptr<api::ServiceFrontend> frontend_impl;
  std::unique_ptr<api::ShardRouter> router;  ///< Two or more shards.
  api::Frontend* frontend = nullptr;
  uint64_t replayed_records = 0;  ///< Summed across shards.
  bool recovered = false;  ///< True when any shard replayed history.
};

/// \brief Boots (or recovers) a durable serving stack out of \p dir.
/// \p seed_provider is only invoked when some shard directory is fresh.
Result<DurableService> BootDurable(
    const std::string& dir,
    const std::function<Result<Dataset>()>& seed_provider,
    const DurableBootOptions& options = {});

/// \brief Shard count pinned in DIR/meta. NotFound when the file does
/// not exist; Corruption when it fails its CRC or magic.
Result<uint32_t> ReadShardMeta(const std::string& dir);

/// \brief Router commit epoch persisted in DIR/router.meta (sharded
/// directories only). NotFound / Corruption as with ReadShardMeta.
Result<uint64_t> ReadRouterEpoch(const std::string& dir);

}  // namespace storage
}  // namespace wot

#endif  // WOT_STORAGE_DURABLE_BOOT_H_
