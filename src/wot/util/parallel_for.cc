#include "wot/util/parallel_for.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace wot {

void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 size_t num_threads) {
  if (count == 0) {
    return;
  }
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1 || count < 2) {
    for (size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  // Contiguous chunks: iteration i handled by thread i*num_threads/count.
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  const size_t chunk = (count + num_threads - 1) / num_threads;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(begin + chunk, count);
    if (begin >= end) {
      break;
    }
    threads.emplace_back([begin, end, &body] {
      for (size_t i = begin; i < end; ++i) {
        body(i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

}  // namespace wot
