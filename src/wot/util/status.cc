#include "wot/util/status.h"

namespace wot {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) {
    return *this;
  }
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wot
