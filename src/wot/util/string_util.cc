#include "wot/util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace wot {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return value;
}

Result<bool> ParseBool(std::string_view text) {
  std::string lower = ToLower(Trim(text));
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return Status::InvalidArgument("not a boolean: '" + std::string(text) +
                                 "'");
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (value < 0) {
    out.push_back('-');
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace wot
