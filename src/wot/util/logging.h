// Minimal leveled logging for library diagnostics and experiment harnesses.
//
//   WOT_LOG(INFO) << "loaded " << n << " reviews";
//
// Messages at or above the global threshold go to stderr with a level tag.
// The default threshold is WARNING so that library internals stay quiet in
// tests; experiment binaries typically lower it to INFO.
#ifndef WOT_UTIL_LOGGING_H_
#define WOT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

#include "wot/util/macros.h"

namespace wot {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

const char* LogLevelName(LogLevel level);

/// \brief Sets the minimum level that is actually emitted. Thread-safe.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

/// \brief Accumulates one log line and emits it on destruction.
/// kFatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  WOT_DISALLOW_COPY_AND_MOVE(LogMessage);

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace wot

#define WOT_LOG(severity)                                         \
  ::wot::internal::LogMessage(::wot::LogLevel::k##severity,       \
                              __FILE__, __LINE__)

#endif  // WOT_UTIL_LOGGING_H_
