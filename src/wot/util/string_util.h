// Small string helpers used by IO, flags and table formatting.
#ifndef WOT_UTIL_STRING_UTIL_H_
#define WOT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "wot/util/result.h"

namespace wot {

/// \brief Splits on a single-character delimiter. Adjacent delimiters yield
/// empty fields; an empty input yields one empty field.
std::vector<std::string> Split(std::string_view text, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// \brief Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// \brief Lowercases ASCII characters.
std::string ToLower(std::string_view text);

/// \brief Strict parse of a whole string_view; rejects trailing garbage,
/// empty input, and out-of-range values.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);
Result<bool> ParseBool(std::string_view text);

/// \brief Formats a double with \p precision digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// \brief "1,234,567" style thousands separators, for table output.
std::string FormatWithCommas(int64_t value);

}  // namespace wot

#endif  // WOT_UTIL_STRING_UTIL_H_
