// Invariant checking. WOT_CHECK is always on (programming-error guards on
// cheap paths); WOT_DCHECK compiles away in NDEBUG builds (hot loops).
#ifndef WOT_UTIL_CHECK_H_
#define WOT_UTIL_CHECK_H_

#include "wot/util/logging.h"
#include "wot/util/macros.h"

#define WOT_CHECK(condition)                                      \
  if (WOT_PREDICT_FALSE(!(condition)))                            \
  WOT_LOG(Fatal) << "Check failed: " #condition " "

#define WOT_CHECK_OP(lhs, op, rhs) WOT_CHECK((lhs)op(rhs))
#define WOT_CHECK_EQ(lhs, rhs) WOT_CHECK_OP(lhs, ==, rhs)
#define WOT_CHECK_NE(lhs, rhs) WOT_CHECK_OP(lhs, !=, rhs)
#define WOT_CHECK_LT(lhs, rhs) WOT_CHECK_OP(lhs, <, rhs)
#define WOT_CHECK_LE(lhs, rhs) WOT_CHECK_OP(lhs, <=, rhs)
#define WOT_CHECK_GT(lhs, rhs) WOT_CHECK_OP(lhs, >, rhs)
#define WOT_CHECK_GE(lhs, rhs) WOT_CHECK_OP(lhs, >=, rhs)

/// \brief Aborts (via WOT_LOG(Fatal)) if a Status-returning expression fails.
/// For use in tests, examples and benches where errors are unrecoverable.
#define WOT_CHECK_OK(expr)                                        \
  do {                                                            \
    ::wot::Status _wot_check_status = (expr);                     \
    WOT_CHECK(_wot_check_status.ok())                             \
        << _wot_check_status.ToString();                          \
  } while (false)

#ifdef NDEBUG
#define WOT_DCHECK(condition) \
  while (false) WOT_CHECK(condition)
#else
#define WOT_DCHECK(condition) WOT_CHECK(condition)
#endif

#define WOT_DCHECK_EQ(lhs, rhs) WOT_DCHECK((lhs) == (rhs))
#define WOT_DCHECK_LT(lhs, rhs) WOT_DCHECK((lhs) < (rhs))
#define WOT_DCHECK_LE(lhs, rhs) WOT_DCHECK((lhs) <= (rhs))

#endif  // WOT_UTIL_CHECK_H_
