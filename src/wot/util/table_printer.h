// Aligned ASCII table output. Every experiment binary prints its results in
// the same row/column layout as the corresponding table in the paper, so the
// harness uses this everywhere for consistency.
#ifndef WOT_UTIL_TABLE_PRINTER_H_
#define WOT_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace wot {

/// \brief Column alignment within a rendered table.
enum class Align {
  kLeft,
  kRight,
};

/// \brief Collects rows of string cells and renders them with padded,
/// separator-delimited columns:
///
///   Genre (Category)  | Rater | Total | Q1(Top)
///   ------------------+-------+-------+--------
///   Action/Adventure  | 11940 |    22 | 22
class TablePrinter {
 public:
  /// \param headers column titles; fixes the column count.
  explicit TablePrinter(std::vector<std::string> headers);

  /// \brief Sets alignment per column (default: first column left, the rest
  /// right). Size must equal the header count.
  void SetAlignments(std::vector<Align> alignments);

  /// \brief Appends a data row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// \brief Appends a horizontal rule before the next added row.
  void AddSeparator();

  /// \brief Renders the table.
  std::string ToString() const;

  /// \brief Renders to a stream.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

 private:
  struct Row {
    bool is_separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace wot

#endif  // WOT_UTIL_TABLE_PRINTER_H_
