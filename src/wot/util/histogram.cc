#include "wot/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "wot/util/check.h"
#include "wot/util/string_util.h"

namespace wot {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo), hi_(hi), counts_(num_buckets, 0) {
  WOT_CHECK_LT(lo, hi);
  WOT_CHECK_GT(num_buckets, 0u);
}

void Histogram::Add(double value) {
  double t = (value - lo_) / (hi_ - lo_);
  auto bucket = static_cast<int64_t>(t * static_cast<double>(counts_.size()));
  bucket = std::clamp<int64_t>(bucket, 0,
                               static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

int64_t Histogram::bucket_count(size_t bucket) const {
  WOT_CHECK_LT(bucket, counts_.size());
  return counts_[bucket];
}

double Histogram::CumulativeFraction(size_t bucket) const {
  WOT_CHECK_LT(bucket, counts_.size());
  if (total_ == 0) {
    return 0.0;
  }
  int64_t acc = 0;
  for (size_t i = 0; i <= bucket; ++i) {
    acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  const int64_t peak = total_ == 0
                           ? 1
                           : *std::max_element(counts_.begin(), counts_.end());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    double b0 = lo_ + width * static_cast<double>(i);
    double b1 = b0 + width;
    int bar = peak == 0 ? 0
                        : static_cast<int>(40.0 * static_cast<double>(
                                                      counts_[i]) /
                                           static_cast<double>(peak));
    os << "[" << FormatDouble(b0, 3) << "," << FormatDouble(b1, 3) << ") "
       << std::string(static_cast<size_t>(bar), '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace wot
