// Clang Thread Safety Analysis for the concurrent serving stack.
//
// Every lock in src/wot/ is a wot::Mutex and every acquisition a
// wot::MutexLock (or an explicit Lock()/Unlock() pair), so that a clang
// build with -Wthread-safety -Wthread-safety-beta proves, at compile
// time, that
//
//   * every member declared WOT_GUARDED_BY(mu) is only touched while mu
//     is held,
//   * every function declared WOT_REQUIRES(mu) is only called with mu
//     held (private *Locked helpers), and
//   * every function declared WOT_EXCLUDES(mu) is never re-entered with
//     mu held (self-deadlock).
//
// Off clang (GCC builds) the attribute macros expand to nothing and the
// wrapper types compile down to the std::mutex primitives they wrap —
// zero cost, no behavior change. The project lint (tools/wot_lint.py)
// enforces that no naked std::mutex appears outside this header, so
// the analysis can never silently lose coverage to an unannotated lock.
//
// docs/static_analysis.md documents the conventions and how to run the
// analysis locally (cmake --preset tidy).
#ifndef WOT_UTIL_THREAD_ANNOTATIONS_H_
#define WOT_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "wot/util/macros.h"

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only: GCC neither understands nor needs them.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define WOT_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define WOT_THREAD_ANNOTATION_IMPL(x)  // no-op off clang
#endif

/// Declares a type to be a capability (a lock the analysis tracks).
#define WOT_CAPABILITY(name) WOT_THREAD_ANNOTATION_IMPL(capability(name))

/// Declares an RAII type that acquires a capability for its lifetime.
#define WOT_SCOPED_CAPABILITY WOT_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// The annotated member may only be accessed while `mu` is held.
#define WOT_GUARDED_BY(mu) WOT_THREAD_ANNOTATION_IMPL(guarded_by(mu))

/// The annotated pointer/reference member may be read freely, but the
/// data it points to may only be accessed while `mu` is held.
#define WOT_PT_GUARDED_BY(mu) WOT_THREAD_ANNOTATION_IMPL(pt_guarded_by(mu))

/// Callers must hold every listed capability (exclusively).
#define WOT_REQUIRES(...) \
  WOT_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// Callers must NOT hold any listed capability (the function acquires
/// them itself; catches self-deadlock at compile time).
#define WOT_EXCLUDES(...) \
  WOT_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and returns holding them.
#define WOT_ACQUIRE(...) \
  WOT_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities.
#define WOT_RELEASE(...) \
  WOT_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// The function returns a reference to a capability (lets annotations on
/// accessors name the lock they hand out).
#define WOT_RETURN_CAPABILITY(mu) \
  WOT_THREAD_ANNOTATION_IMPL(lock_returned(mu))

/// Escape hatch: disables the analysis for one function. Policy: NOT
/// permitted inside src/wot/{service,server,api,util} (wot_lint and the
/// acceptance bar keep the serving stack suppression-free); exists for
/// test scaffolding only.
#define WOT_NO_THREAD_SAFETY_ANALYSIS \
  WOT_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

namespace wot {

// ---------------------------------------------------------------------------
// Annotated primitives. Zero-cost shims: every method is a direct
// forward to the std::mutex / std::condition_variable underneath.
// ---------------------------------------------------------------------------

/// \brief A std::mutex the thread-safety analysis can see.
class WOT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  WOT_DISALLOW_COPY_AND_MOVE(Mutex);

  void Lock() WOT_ACQUIRE() { mu_.lock(); }
  void Unlock() WOT_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock (std::lock_guard shape) over a wot::Mutex.
///
///   MutexLock lock(mu_);   // proves mu_ held until end of scope
class WOT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WOT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WOT_RELEASE() { mu_.Unlock(); }
  WOT_DISALLOW_COPY_AND_MOVE(MutexLock);

 private:
  Mutex& mu_;
};

/// \brief Condition variable bound to wot::Mutex.
///
/// Wait() has no predicate overload on purpose: the waiting loop lives in
/// the caller, under the caller's MutexLock, where the analysis can see
/// the guarded reads —
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // ready_ WOT_GUARDED_BY(mu_)
///
/// (A predicate lambda would hide those reads from the analysis: clang
/// analyzes a lambda body as a separate function holding nothing.)
class CondVar {
 public:
  CondVar() = default;
  WOT_DISALLOW_COPY_AND_MOVE(CondVar);

  /// \brief Atomically releases \p mu, blocks, and reacquires \p mu
  /// before returning (std::condition_variable semantics; spurious
  /// wakeups possible — always wait in a loop).
  void Wait(Mutex& mu) WOT_REQUIRES(mu) {
    // Adopt the already-held mutex for the wait, then release the
    // association so the unique_lock destructor does not unlock what the
    // caller's MutexLock still owns.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// \brief Wait(), but returns (spuriously or on notify) after at most
  /// \p millis milliseconds. Returns true when notified before the
  /// deadline (std::cv_status::no_timeout) — callers still re-check
  /// their guarded predicate in a loop either way.
  bool WaitForMillis(Mutex& mu, int64_t millis) WOT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::milliseconds(millis));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wot

#endif  // WOT_UTIL_THREAD_ANNOTATIONS_H_
