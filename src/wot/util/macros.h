// Common preprocessor utilities shared across the library.
#ifndef WOT_UTIL_MACROS_H_
#define WOT_UTIL_MACROS_H_

/// \brief Marks a class as non-copyable (move is still allowed unless also
/// deleted). Place in the public section.
#define WOT_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;    \
  TypeName& operator=(const TypeName&) = delete

#define WOT_DISALLOW_COPY_AND_MOVE(TypeName) \
  WOT_DISALLOW_COPY(TypeName);               \
  TypeName(TypeName&&) = delete;             \
  TypeName& operator=(TypeName&&) = delete

#define WOT_CONCAT_IMPL(x, y) x##y
#define WOT_CONCAT(x, y) WOT_CONCAT_IMPL(x, y)

/// \brief A unique identifier within a translation unit, for macro-generated
/// temporaries.
#define WOT_UNIQUE_NAME(prefix) WOT_CONCAT(prefix, __COUNTER__)

#if defined(__GNUC__) || defined(__clang__)
#define WOT_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define WOT_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define WOT_NORETURN __attribute__((noreturn))
#else
#define WOT_PREDICT_TRUE(x) (x)
#define WOT_PREDICT_FALSE(x) (x)
#define WOT_NORETURN
#endif

#endif  // WOT_UTIL_MACROS_H_
