// A fixed-size worker pool. Used by ParallelFor to run per-category
// reputation computations concurrently.
#ifndef WOT_UTIL_THREAD_POOL_H_
#define WOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "wot/util/macros.h"

namespace wot {

/// \brief A simple FIFO thread pool.
///
/// Tasks are arbitrary callables; exceptions must not escape a task (the
/// library itself never throws). Destruction drains already-queued tasks.
class ThreadPool {
 public:
  /// \param num_threads workers to spawn; 0 means hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();
  WOT_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// \brief Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wot

#endif  // WOT_UTIL_THREAD_POOL_H_
