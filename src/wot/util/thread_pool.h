// A fixed-size worker pool; the connection server's request dispatch
// stage. Locking is annotated for Clang Thread Safety Analysis (see
// docs/static_analysis.md).
#ifndef WOT_UTIL_THREAD_POOL_H_
#define WOT_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "wot/util/macros.h"
#include "wot/util/thread_annotations.h"

namespace wot {

/// \brief A simple FIFO thread pool.
///
/// Tasks are arbitrary callables; exceptions must not escape a task (the
/// library itself never throws). Stop() — and destruction, which calls
/// it — drains already-queued tasks before the workers exit.
class ThreadPool {
 public:
  /// \param num_threads workers to spawn; 0 means hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();
  WOT_DISALLOW_COPY_AND_MOVE(ThreadPool);

  /// \brief Enqueues a task. Never blocks. Returns true when the task
  /// was accepted; false after Stop() (the task is NOT run — a stopped
  /// pool has no workers left to run it, and silently queueing it would
  /// wedge a later Wait() forever).
  bool Submit(std::function<void()> task) WOT_EXCLUDES(mu_);

  /// \brief Blocks until every accepted task has finished executing.
  void Wait() WOT_EXCLUDES(mu_);

  /// \brief Drains the queue, joins the workers, and rejects every later
  /// Submit(). Idempotent; called by the destructor. Must not be called
  /// from inside a task (a worker cannot join itself).
  void Stop() WOT_EXCLUDES(stop_mu_, mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() WOT_EXCLUDES(mu_);

  // Serializes Stop() callers: the first joins the workers while any
  // later caller blocks on stop_mu_ until the drain is complete, so
  // "Stop returned" always means "every accepted task ran". Ordering:
  // stop_mu_ before mu_; workers never touch stop_mu_.
  Mutex stop_mu_;
  bool stopped_ WOT_GUARDED_BY(stop_mu_) = false;

  Mutex mu_;
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ WOT_GUARDED_BY(mu_);
  size_t in_flight_ WOT_GUARDED_BY(mu_) = 0;  // queued + executing
  bool shutting_down_ WOT_GUARDED_BY(mu_) = false;
  // Written only by the constructor, joined by Stop(); otherwise const.
  std::vector<std::thread> workers_;
};

}  // namespace wot

#endif  // WOT_UTIL_THREAD_POOL_H_
