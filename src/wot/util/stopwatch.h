// Wall-clock timing for experiment harnesses — and the one place the
// serving stack is allowed to read a clock (wot/telemetry builds its
// Timer/WOT_TIMED on Stopwatch; tools/wot_lint.py forbids raw
// std::chrono timing in the instrumented layers).
#ifndef WOT_UTIL_STOPWATCH_H_
#define WOT_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace wot {

/// \brief Measures elapsed wall time since construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Milliseconds on the monotonic clock, for deadline arithmetic
/// (no epoch meaning; only differences are meaningful).
inline int64_t MonotonicMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace wot

#endif  // WOT_UTIL_STOPWATCH_H_
