// Deterministic random number generation and the distributions the synthetic
// community generator needs (uniform, normal, beta, Zipf, categorical).
//
// We implement xoshiro256++ rather than rely on std::mt19937 so that streams
// are identical across standard libraries and platforms — experiment outputs
// must be reproducible from a seed alone.
#ifndef WOT_UTIL_RNG_H_
#define WOT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wot {

/// \brief xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Not cryptographically secure; excellent statistical quality and speed for
/// simulation. Copyable: copying forks the stream state.
class Rng {
 public:
  /// Seeds the four 64-bit words of state via SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next64();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// \brief Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// \brief Standard normal via Box-Muller (cached spare value).
  double NextGaussian();

  /// \brief Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// \brief Beta(alpha, beta) via Joehnk/gamma method.
  /// Preconditions: alpha > 0, beta > 0.
  double NextBeta(double alpha, double beta);

  /// \brief Gamma(shape, 1) via Marsaglia-Tsang. Precondition: shape > 0.
  double NextGamma(double shape);

  /// \brief Fisher-Yates shuffle of \p items.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// \brief Forks an independent stream (seeded from this stream's output);
  /// used to give each parallel worker its own generator.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// \brief Zipf(s) sampler over {0, 1, ..., n-1} where rank r has probability
/// proportional to 1/(r+1)^s. Uses a precomputed CDF with binary search;
/// construction is O(n), sampling O(log n).
class ZipfSampler {
 public:
  /// \param n number of ranks (> 0)
  /// \param exponent Zipf exponent s (>= 0; 0 degenerates to uniform)
  ZipfSampler(size_t n, double exponent);

  /// \brief Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

  /// \brief P(rank == r).
  double Probability(size_t r) const;

 private:
  std::vector<double> cdf_;
};

/// \brief Samples an index from an arbitrary non-negative weight vector.
/// Construction O(n); sampling O(log n) via CDF binary search.
class CategoricalSampler {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit CategoricalSampler(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wot

#endif  // WOT_UTIL_RNG_H_
