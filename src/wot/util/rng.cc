#include "wot/util/rng.h"

#include <algorithm>
#include <cmath>

#include "wot/util/check.h"

namespace wot {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  WOT_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  WOT_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; u must be > 0 for the log.
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  double v = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u));
  double theta = 2.0 * M_PI * v;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextGamma(double shape) {
  WOT_CHECK_GT(shape, 0.0);
  // Marsaglia & Tsang. For shape < 1, boost to shape+1 and scale.
  if (shape < 1.0) {
    double u = 0.0;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double alpha, double beta) {
  WOT_CHECK_GT(alpha, 0.0);
  WOT_CHECK_GT(beta, 0.0);
  double x = NextGamma(alpha);
  double y = NextGamma(beta);
  double sum = x + y;
  if (sum <= 0.0) {
    return 0.5;  // Degenerate underflow; the symmetric midpoint is unbiased.
  }
  return x / sum;
}

Rng Rng::Fork() { return Rng(Next64()); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  WOT_CHECK_GT(n, 0u);
  WOT_CHECK_GE(exponent, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = acc;
  }
  for (auto& v : cdf_) {
    v /= acc;
  }
  cdf_.back() = 1.0;  // Guard against accumulated floating-point error.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t r) const {
  WOT_CHECK_LT(r, cdf_.size());
  if (r == 0) return cdf_[0];
  return cdf_[r] - cdf_[r - 1];
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  WOT_CHECK_GT(weights.size(), 0u);
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    WOT_CHECK_GE(weights[i], 0.0);
    acc += weights[i];
    cdf_[i] = acc;
  }
  WOT_CHECK_GT(acc, 0.0);
  for (auto& v : cdf_) {
    v /= acc;
  }
  cdf_.back() = 1.0;
}

size_t CategoricalSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace wot
