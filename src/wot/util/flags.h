// A small command-line flag parser for experiment binaries and examples.
//
//   FlagParser flags("table4", "Reproduces Table 4");
//   int64_t users = 4000;
//   flags.AddInt64("users", &users, "number of synthetic users");
//   WOT_CHECK_OK(flags.Parse(argc, argv));
//
// Accepted syntax: --name=value, --name value, and --flag for booleans.
// --help prints usage and exits(0).
#ifndef WOT_UTIL_FLAGS_H_
#define WOT_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wot/util/status.h"

namespace wot {

/// \brief Registry + parser for a binary's command-line flags.
class FlagParser {
 public:
  FlagParser(std::string program_name, std::string description);

  /// Registration: \p target holds the default and receives the parsed
  /// value. Pointers must outlive Parse().
  void AddInt64(const std::string& name, int64_t* target,
                const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddBool(const std::string& name, bool* target,
               const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// \brief Parses argv. Unknown flags are errors. On "--help", prints usage
  /// to stdout and exits the process with code 0.
  Status Parse(int argc, char** argv);

  /// \brief Usage text (also printed by --help).
  std::string Usage() const;

  /// \brief Positional (non-flag) arguments encountered, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(Flag* flag, const std::string& value);
  Flag* Find(const std::string& name);

  std::string program_name_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wot

#endif  // WOT_UTIL_FLAGS_H_
