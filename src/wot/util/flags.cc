#include "wot/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "wot/util/result.h"
#include "wot/util/string_util.h"

namespace wot {

FlagParser::FlagParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)),
      description_(std::move(description)) {}

void FlagParser::AddInt64(const std::string& name, int64_t* target,
                          const std::string& help) {
  flags_.push_back(
      {name, Type::kInt64, target, help, std::to_string(*target)});
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  flags_.push_back(
      {name, Type::kDouble, target, help, FormatDouble(*target, 4)});
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  flags_.push_back(
      {name, Type::kBool, target, help, *target ? "true" : "false"});
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Type::kString, target, help, "\"" + *target + "\""});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

Status FlagParser::SetValue(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kInt64: {
      Result<int64_t> r = ParseInt64(value);
      if (!r.ok()) {
        return r.status().WithContext("--" + flag->name);
      }
      *static_cast<int64_t*>(flag->target) = r.ValueOrDie();
      return Status::OK();
    }
    case Type::kDouble: {
      Result<double> r = ParseDouble(value);
      if (!r.ok()) {
        return r.status().WithContext("--" + flag->name);
      }
      *static_cast<double*>(flag->target) = r.ValueOrDie();
      return Status::OK();
    }
    case Type::kBool: {
      Result<bool> r = ParseBool(value);
      if (!r.ok()) {
        return r.status().WithContext("--" + flag->name);
      }
      *static_cast<bool*>(flag->target) = r.ValueOrDie();
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag->target) = value;
      return Status::OK();
  }
  return Status::Internal("unhandled flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // --help's contract is "usage on stdout, exit 0" (shell-pipeable);
      // the sole sanctioned stdout write in src/wot/.
      // wot-lint: allow(stdout)
      std::printf("%s", Usage().c_str());
      std::exit(0);
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Usage());
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        // Bare --flag means true.
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name +
                                       " requires a value");
      }
      value = argv[++i];
    }
    WOT_RETURN_IF_ERROR(SetValue(flag, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage() const {
  std::ostringstream os;
  os << program_name_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& flag : flags_) {
    os << "  --" << flag.name << "  " << flag.help
       << " (default: " << flag.default_repr << ")\n";
  }
  os << "  --help  print this message and exit\n";
  return os.str();
}

}  // namespace wot
