// Status: the library-wide error-reporting type.
//
// The wot library does not throw exceptions. Fallible operations return a
// Status (or a Result<T>, see result.h). This mirrors the error model of
// Apache Arrow and RocksDB.
#ifndef WOT_UTIL_STATUS_H_
#define WOT_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "wot/util/macros.h"

namespace wot {

/// \brief Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotImplemented = 8,
  kInternal = 9,
};

/// \brief Returns a stable human-readable name for a StatusCode
/// (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief An operation outcome: OK, or an error code plus message.
///
/// Statuses are cheap to pass by value: the OK state carries no allocation,
/// and error state is a single heap pointer. A Status must be inspected via
/// ok() / code(); ignoring one silently is a bug in library code.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(code, std::move(message))) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// \brief The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with \p context prepended to the message,
  /// preserving the code. OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

  // Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace wot

/// \brief Propagates a non-OK Status to the caller.
#define WOT_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::wot::Status _wot_status = (expr);             \
    if (WOT_PREDICT_FALSE(!_wot_status.ok())) {     \
      return _wot_status;                           \
    }                                               \
  } while (false)

#endif  // WOT_UTIL_STATUS_H_
