// Data-parallel loop helper over an index range.
#ifndef WOT_UTIL_PARALLEL_FOR_H_
#define WOT_UTIL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace wot {

/// \brief Runs body(i) for every i in [0, count), distributing contiguous
/// chunks over \p num_threads workers (0 = hardware concurrency). Blocks
/// until all iterations complete. Falls back to a serial loop when count is
/// small or num_threads == 1. \p body must be safe to call concurrently for
/// distinct i.
void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 size_t num_threads = 0);

}  // namespace wot

#endif  // WOT_UTIL_PARALLEL_FOR_H_
