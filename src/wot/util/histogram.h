// Streaming summary statistics and a fixed-bucket histogram, used for
// dataset statistics and distribution diagnostics in the generator tests.
#ifndef WOT_UTIL_HISTOGRAM_H_
#define WOT_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wot {

/// \brief Accumulates count/mean/variance/min/max in one pass (Welford).
class RunningStats {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// \brief Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// \brief Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Equal-width histogram over [lo, hi]; values outside are clamped
/// into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double value);

  int64_t bucket_count(size_t bucket) const;
  size_t num_buckets() const { return counts_.size(); }
  int64_t total() const { return total_; }

  /// \brief Fraction of mass at or below the upper edge of \p bucket.
  double CumulativeFraction(size_t bucket) const;

  /// \brief A compact textual rendering ("[0.0,0.1): ###### 123").
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace wot

#endif  // WOT_UTIL_HISTOGRAM_H_
