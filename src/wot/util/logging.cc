#include "wot/util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "wot/util/thread_annotations.h"

namespace wot {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};
// Serializes emission so concurrent WOT_LOG lines never interleave.
// Function-local static: safe during static init/teardown of clients.
Mutex& EmitMutex() {
  static Mutex mu;
  return mu;
}
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_threshold.load(std::memory_order_relaxed)) {
  if (enabled_) {
    // Keep only the basename to avoid absolute build paths in logs.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LogLevelName(level_) << " " << base << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(EmitMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace wot
