// Result<T>: value-or-Status, the return type of fallible producers.
#ifndef WOT_UTIL_RESULT_H_
#define WOT_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "wot/util/status.h"

namespace wot {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value could not be produced.
///
/// Typical use:
/// \code
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset ds = std::move(r).ValueOrDie();
/// \endcode
/// or, inside a function that itself returns Status/Result:
/// \code
///   WOT_ASSIGN_OR_RETURN(Dataset ds, LoadDataset(path));
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, enables `return status;`).
  /// Passing an OK status is a programming error and is converted to an
  /// Internal error to keep the invariant "Result holds value XOR error".
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::holds_alternative<Status>(rep_) &&
        std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// \brief The error, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// \brief Returns the value; aborts the process if this holds an error.
  /// Use only after checking ok(), or in tests/examples where an error is
  /// unrecoverable anyway.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(rep_));
  }

  /// \brief Returns the value or \p fallback if this holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  /// \brief Moves the value out. Precondition: ok().
  T&& MoveValueUnsafe() { return std::move(std::get<T>(rep_)); }

 private:
  void DieIfError() const {
    if (WOT_PREDICT_FALSE(!ok())) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(rep_).ToString() << std::endl;
      std::abort();
    }
  }
  std::variant<T, Status> rep_;
};

}  // namespace wot

/// \brief Evaluates a Result expression; on error returns its Status, on
/// success binds the value to \p lhs (which may include a type declaration).
#define WOT_ASSIGN_OR_RETURN(lhs, rexpr) \
  WOT_ASSIGN_OR_RETURN_IMPL(WOT_UNIQUE_NAME(_wot_result_), lhs, rexpr)

#define WOT_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (WOT_PREDICT_FALSE(!result_name.ok())) {              \
    return result_name.status();                           \
  }                                                        \
  lhs = result_name.MoveValueUnsafe()

#endif  // WOT_UTIL_RESULT_H_
