#include "wot/util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wot {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Stop() {
  MutexLock stop_lock(stop_mu_);
  if (stopped_) {
    return;  // an earlier Stop() already drained and joined
  }
  stopped_ = true;
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (auto& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      // The workers are exiting (or gone): accepting the task would
      // either drop it silently or strand in_flight_ above zero and
      // wedge every later Wait().
      return false;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) {
    all_done_.Wait(mu_);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) {
        task_available_.Wait(mu_);
      }
      if (queue_.empty()) {
        // shutting_down_ and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.NotifyAll();
      }
    }
  }
}

}  // namespace wot
