#include "wot/util/thread_pool.h"

#include <algorithm>

namespace wot {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace wot
