#include "wot/util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "wot/util/check.h"

namespace wot {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WOT_CHECK_GT(headers_.size(), 0u);
  alignments_.assign(headers_.size(), Align::kRight);
  alignments_[0] = Align::kLeft;
}

void TablePrinter::SetAlignments(std::vector<Align> alignments) {
  WOT_CHECK_EQ(alignments.size(), headers_.size());
  alignments_ = std::move(alignments);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  WOT_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back({/*is_separator=*/false, std::move(cells)});
}

void TablePrinter::AddSeparator() {
  rows_.push_back({/*is_separator=*/true, {}});
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.is_separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [&](const std::string& text, size_t width, Align align) {
    std::string out;
    size_t fill = width > text.size() ? width - text.size() : 0;
    if (align == Align::kRight) {
      out.append(fill, ' ');
      out += text;
    } else {
      out += text;
      out.append(fill, ' ');
    }
    return out;
  };

  auto rule = [&]() {
    std::string out;
    for (size_t c = 0; c < widths.size(); ++c) {
      if (c > 0) out += "-+-";
      out.append(widths[c], '-');
    }
    return out;
  };

  std::ostringstream os;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << " | ";
    os << pad(headers_[c], widths[c], alignments_[c]);
  }
  os << "\n" << rule() << "\n";
  for (const auto& row : rows_) {
    if (row.is_separator) {
      os << rule() << "\n";
      continue;
    }
    for (size_t c = 0; c < row.cells.size(); ++c) {
      if (c > 0) os << " | ";
      os << pad(row.cells[c], widths[c], alignments_[c]);
    }
    os << "\n";
  }
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace wot
