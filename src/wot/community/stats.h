// Descriptive statistics over a dataset, for experiment logs and the
// generator's distribution tests.
#ifndef WOT_COMMUNITY_STATS_H_
#define WOT_COMMUNITY_STATS_H_

#include <string>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/util/histogram.h"

namespace wot {

/// \brief Per-category activity volumes.
struct CategoryStats {
  CategoryId category;
  std::string name;
  size_t num_reviews = 0;
  size_t num_ratings = 0;
  size_t num_writers = 0;  // distinct users with >=1 review here
  size_t num_raters = 0;   // distinct users with >=1 rating here
};

/// \brief Whole-dataset descriptive statistics.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_categories = 0;
  size_t num_objects = 0;
  size_t num_reviews = 0;
  size_t num_ratings = 0;
  size_t num_trust_statements = 0;

  /// Users with at least one review or rating (the paper counts only these:
  /// "44,197 users who write at least 1 review ... or rate at least 1").
  size_t num_active_users = 0;

  RunningStats reviews_per_writer;
  RunningStats ratings_per_rater;
  RunningStats ratings_per_review;
  RunningStats trust_out_degree;

  std::vector<CategoryStats> per_category;

  /// \brief Multi-line human-readable report.
  std::string ToString() const;
};

/// \brief Computes DatasetStats in one pass over the indices.
DatasetStats ComputeDatasetStats(const Dataset& dataset,
                                 const DatasetIndices& indices);

}  // namespace wot

#endif  // WOT_COMMUNITY_STATS_H_
