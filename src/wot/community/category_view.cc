#include "wot/community/category_view.h"

#include <unordered_map>

#include "wot/util/check.h"

namespace wot {

CategoryView::CategoryView(const Dataset& dataset,
                           const DatasetIndices& indices,
                           CategoryId category)
    : category_(category) {
  WOT_CHECK(category.valid());

  auto reviews = indices.ReviewsInCategory(category);
  review_ids_.assign(reviews.begin(), reviews.end());

  // Local review remap.
  std::unordered_map<uint32_t, uint32_t> review_local;
  review_local.reserve(review_ids_.size());
  for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
    review_local.emplace(review_ids_[lr].value(),
                         static_cast<uint32_t>(lr));
  }

  // Writers, in first-seen order over category reviews.
  std::unordered_map<uint32_t, uint32_t> writer_local;
  review_writer_.resize(review_ids_.size());
  for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
    UserId writer = dataset.review(review_ids_[lr]).writer;
    auto [it, inserted] = writer_local.emplace(
        writer.value(), static_cast<uint32_t>(writer_ids_.size()));
    if (inserted) {
      writer_ids_.push_back(writer);
    }
    review_writer_[lr] = it->second;
  }

  // Collect in-category ratings (review side) and discover raters.
  std::unordered_map<uint32_t, uint32_t> rater_local;
  size_t total_ratings = 0;
  for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
    total_ratings += indices.RatingsOfReview(review_ids_[lr]).size();
  }
  review_rating_offsets_.assign(review_ids_.size() + 1, 0);
  review_ratings_.reserve(total_ratings);
  for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
    for (const auto& ref : indices.RatingsOfReview(review_ids_[lr])) {
      auto [it, inserted] = rater_local.emplace(
          ref.rater.value(), static_cast<uint32_t>(rater_ids_.size()));
      if (inserted) {
        rater_ids_.push_back(ref.rater);
      }
      review_ratings_.push_back({it->second, ref.value});
    }
    review_rating_offsets_[lr + 1] = review_ratings_.size();
  }

  // Rater-side grouping (counting sort over the review-side array).
  rater_rating_offsets_.assign(rater_ids_.size() + 1, 0);
  for (const auto& rr : review_ratings_) {
    ++rater_rating_offsets_[rr.local_rater + 1];
  }
  for (size_t i = 1; i < rater_rating_offsets_.size(); ++i) {
    rater_rating_offsets_[i] += rater_rating_offsets_[i - 1];
  }
  rater_ratings_.resize(review_ratings_.size());
  {
    std::vector<size_t> cursor(rater_rating_offsets_.begin(),
                               rater_rating_offsets_.end() - 1);
    for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
      for (size_t k = review_rating_offsets_[lr];
           k < review_rating_offsets_[lr + 1]; ++k) {
        const auto& rr = review_ratings_[k];
        rater_ratings_[cursor[rr.local_rater]++] = {
            static_cast<uint32_t>(lr), rr.value};
      }
    }
  }

  // Writer-side review grouping.
  writer_review_offsets_.assign(writer_ids_.size() + 1, 0);
  for (uint32_t lw : review_writer_) {
    ++writer_review_offsets_[lw + 1];
  }
  for (size_t i = 1; i < writer_review_offsets_.size(); ++i) {
    writer_review_offsets_[i] += writer_review_offsets_[i - 1];
  }
  writer_reviews_.resize(review_ids_.size());
  {
    std::vector<size_t> cursor(writer_review_offsets_.begin(),
                               writer_review_offsets_.end() - 1);
    for (size_t lr = 0; lr < review_ids_.size(); ++lr) {
      writer_reviews_[cursor[review_writer_[lr]]++] =
          static_cast<uint32_t>(lr);
    }
  }
}

std::span<const CategoryView::ReviewSideRating> CategoryView::RatingsOfReview(
    size_t local_review) const {
  WOT_DCHECK(local_review < num_reviews());
  size_t begin = review_rating_offsets_[local_review];
  size_t end = review_rating_offsets_[local_review + 1];
  return {review_ratings_.data() + begin, end - begin};
}

std::span<const CategoryView::RaterSideRating> CategoryView::RatingsByRater(
    size_t local_rater) const {
  WOT_DCHECK(local_rater < num_raters());
  size_t begin = rater_rating_offsets_[local_rater];
  size_t end = rater_rating_offsets_[local_rater + 1];
  return {rater_ratings_.data() + begin, end - begin};
}

std::span<const uint32_t> CategoryView::ReviewsOfWriter(
    size_t local_writer) const {
  WOT_DCHECK(local_writer < num_writers());
  size_t begin = writer_review_offsets_[local_writer];
  size_t end = writer_review_offsets_[local_writer + 1];
  return {writer_reviews_.data() + begin, end - begin};
}

}  // namespace wot
