// CategoryView: a self-contained, locally-indexed projection of one
// category's reviews, writers, raters and ratings. The Riggs fixed point
// (eq. 1 + 2) runs entirely inside one view, so per-category computations
// are independent and parallelize trivially.
#ifndef WOT_COMMUNITY_CATEGORY_VIEW_H_
#define WOT_COMMUNITY_CATEGORY_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"

namespace wot {

/// \brief Column-sliced view of one category.
///
/// Global ids are remapped to dense local indices:
///   local review   lr in [0, num_reviews())
///   local writer   lw in [0, num_writers())
///   local rater    lx in [0, num_raters())
/// Ratings appear twice, grouped by review (for eq. 1) and grouped by rater
/// (for eq. 2).
class CategoryView {
 public:
  /// \brief Materializes the view for \p category.
  CategoryView(const Dataset& dataset, const DatasetIndices& indices,
               CategoryId category);

  CategoryId category() const { return category_; }
  size_t num_reviews() const { return review_ids_.size(); }
  size_t num_writers() const { return writer_ids_.size(); }
  size_t num_raters() const { return rater_ids_.size(); }
  size_t num_ratings() const { return review_ratings_.size(); }

  ReviewId review_id(size_t local_review) const {
    return review_ids_[local_review];
  }
  UserId writer_id(size_t local_writer) const {
    return writer_ids_[local_writer];
  }
  UserId rater_id(size_t local_rater) const { return rater_ids_[local_rater]; }

  /// \brief Local writer of a local review.
  uint32_t WriterOfReview(size_t local_review) const {
    return review_writer_[local_review];
  }

  /// A rating seen from the review side: local rater index + value.
  struct ReviewSideRating {
    uint32_t local_rater;
    double value;
  };
  /// A rating seen from the rater side: local review index + value.
  struct RaterSideRating {
    uint32_t local_review;
    double value;
  };

  /// \brief Ratings received by a local review.
  std::span<const ReviewSideRating> RatingsOfReview(
      size_t local_review) const;

  /// \brief Ratings given by a local rater within this category.
  std::span<const RaterSideRating> RatingsByRater(size_t local_rater) const;

  /// \brief Local reviews written by a local writer.
  std::span<const uint32_t> ReviewsOfWriter(size_t local_writer) const;

 private:
  CategoryId category_;

  std::vector<ReviewId> review_ids_;   // local review -> global
  std::vector<UserId> writer_ids_;     // local writer -> global
  std::vector<UserId> rater_ids_;      // local rater -> global
  std::vector<uint32_t> review_writer_;  // local review -> local writer

  // Ratings grouped by review.
  std::vector<size_t> review_rating_offsets_;
  std::vector<ReviewSideRating> review_ratings_;

  // Ratings grouped by rater.
  std::vector<size_t> rater_rating_offsets_;
  std::vector<RaterSideRating> rater_ratings_;

  // Reviews grouped by writer.
  std::vector<size_t> writer_review_offsets_;
  std::vector<uint32_t> writer_reviews_;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_CATEGORY_VIEW_H_
