#include "wot/community/entities.h"

#include <algorithm>
#include <cmath>

namespace wot {
namespace rating_scale {

double Quantize(double value) {
  // Stages are 0.2 * k for k in 1..5; round to the nearest and clamp.
  double k = std::round(value / 0.2);
  k = std::clamp(k, 1.0, 5.0);
  return 0.2 * k;
}

bool IsValidStage(double value) {
  for (int k = 1; k <= kNumStages; ++k) {
    if (std::fabs(value - 0.2 * k) < 1e-9) {
      return true;
    }
  }
  return false;
}

}  // namespace rating_scale
}  // namespace wot
