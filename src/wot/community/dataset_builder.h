// Validating builder for Dataset.
#ifndef WOT_COMMUNITY_DATASET_BUILDER_H_
#define WOT_COMMUNITY_DATASET_BUILDER_H_

#include <string>
#include <unordered_set>

#include "wot/community/dataset.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Construction-time policy knobs.
struct DatasetBuilderOptions {
  /// Reject a second review by the same writer on the same object (Epinions
  /// allows one review per user per object; the paper's affiliation formula
  /// relies on this).
  bool enforce_one_review_per_object = true;
  /// Reject users rating their own reviews.
  bool reject_self_ratings = true;
  /// Reject duplicate (rater, review) rating pairs.
  bool reject_duplicate_ratings = true;
  /// Reject ratings that are not one of the five scale stages.
  bool enforce_rating_scale = true;
  /// Reject duplicate or self trust statements.
  bool reject_degenerate_trust = true;
};

/// \brief Accumulates entities, checks referential integrity and policy
/// rules, and produces an immutable Dataset.
///
/// All Add* methods return the id assigned to the new entity (or an error).
/// The builder is single-threaded.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetBuilderOptions options = {});

  UserId AddUser(std::string name);
  CategoryId AddCategory(std::string name);

  /// \brief Adds an object belonging to \p category.
  Result<ObjectId> AddObject(CategoryId category, std::string name);

  /// \brief Adds a review of \p object written by \p writer. The review's
  /// category is inherited from the object.
  Result<ReviewId> AddReview(UserId writer, ObjectId object);

  /// \brief Adds a rating of \p review by \p rater with value \p value.
  Status AddRating(UserId rater, ReviewId review, double value);

  /// \brief Records "source trusts target" (ground truth only).
  Status AddTrust(UserId source, UserId target);

  /// \brief Finalizes. The builder is consumed (left empty).
  Result<Dataset> Build();

  /// \brief Assembles a Dataset directly from columns, skipping the
  /// policy checks and dedup-key bookkeeping of the incremental Add*
  /// path. For trusted loaders only — e.g. the storage layer's
  /// CRC-verified snapshot segments, whose contents went through a
  /// validating builder when written. Entity ids are reassigned densely
  /// from column order and review categories are denormalized from their
  /// object; cross-column references are bounds-checked (an error, never
  /// a fault, on corrupt input) but nothing else is.
  static Result<Dataset> FromValidatedColumns(
      std::vector<Category> categories, std::vector<User> users,
      std::vector<Object> objects, std::vector<Review> reviews,
      std::vector<ReviewRating> ratings,
      std::vector<TrustStatement> trust_statements);

  /// \brief Installs an already-validated dataset as this (empty)
  /// builder's staged state, without replaying it through the Add* path.
  /// This is the instant-restore complement of FromValidatedColumns:
  /// ids must already be dense in column order (FromValidatedColumns
  /// guarantees that). Sequential-scan policy rules (rating scale,
  /// self-trust) are still enforced here; per-row random-access rules
  /// (self-ratings) and dedup uniqueness are trusted from the validated
  /// source, and the dedup key sets are NOT rebuilt eagerly but lazily,
  /// on the first Add* call that needs them, so adoption costs O(scan)
  /// instead of O(hash-insert) per row. Future ingests validate against
  /// exactly the keys an incremental build would have produced.
  Status AdoptValidated(Dataset dataset);

  /// \brief Read-only view of the dataset under construction. The reference
  /// stays valid until Build(); contents grow as entities are added. Used
  /// by generators that interleave reads (e.g. "who wrote this review?")
  /// with appends.
  const Dataset& StagedView() const { return dataset_; }

  size_t num_users() const { return dataset_.users_.size(); }
  size_t num_reviews() const { return dataset_.reviews_.size(); }

 private:
  Status CheckUser(UserId id, const char* role) const;
  /// Bulk-builds the dedup key sets from the adopted columns. No-op on
  /// the incremental path (keys are maintained per Add* call there).
  void EnsureDedupKeys();

  DatasetBuilderOptions options_;
  Dataset dataset_;
  // Dedup keys: (writer, object), (rater, review), (src, dst) as u64.
  // After AdoptValidated() these are stale until the first Add* call
  // that consults them (EnsureDedupKeys rebuilds in one pass).
  bool dedup_keys_synced_ = true;
  std::unordered_set<uint64_t> review_keys_;
  std::unordered_set<uint64_t> rating_keys_;
  std::unordered_set<uint64_t> trust_keys_;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_DATASET_BUILDER_H_
