// String interner: maps names to dense uint32 handles and back. Used by the
// CSV loader to translate external string keys (user names, category names)
// into dense ids.
#ifndef WOT_COMMUNITY_INTERNER_H_
#define WOT_COMMUNITY_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wot {

/// \brief Bidirectional string <-> dense-index mapping.
class StringInterner {
 public:
  /// \brief Returns the handle for \p name, inserting it if new. Handles
  /// are assigned densely in first-seen order.
  uint32_t Intern(std::string_view name);

  /// \brief Returns the handle if \p name was interned.
  std::optional<uint32_t> Find(std::string_view name) const;

  /// \brief The name for a handle. Precondition: handle < size().
  const std::string& NameOf(uint32_t handle) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

  /// \brief All interned names in handle order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_INTERNER_H_
