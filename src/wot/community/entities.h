// Plain-data records stored by the community dataset. Field names follow
// the paper's Fig. 2: a review *writer* writes a review r_j on an object o_j
// in category C_j; a review *rater* gives rating rho_ij to review r_j.
#ifndef WOT_COMMUNITY_ENTITIES_H_
#define WOT_COMMUNITY_ENTITIES_H_

#include <string>

#include "wot/community/ids.h"

namespace wot {

/// \brief The five-stage Epinions review-helpfulness scale, mapped to
/// [0.2, 1.0] exactly as the paper's experiments do ("not helpful: 0.2,
/// most helpful: 1").
namespace rating_scale {
inline constexpr double kNotHelpful = 0.2;
inline constexpr double kSomewhatHelpful = 0.4;
inline constexpr double kHelpful = 0.6;
inline constexpr double kVeryHelpful = 0.8;
inline constexpr double kMostHelpful = 1.0;
inline constexpr int kNumStages = 5;

/// \brief Snaps an arbitrary value in [0, 1] to the nearest of the five
/// stages (values below 0.2 snap up to kNotHelpful).
double Quantize(double value);

/// \brief True iff \p value is (within 1e-9 of) one of the five stages.
bool IsValidStage(double value);
}  // namespace rating_scale

/// \brief A registered community member.
struct User {
  UserId id;
  std::string name;
};

/// \brief A topic context, e.g. one of the 12 Video & DVD sub-categories.
struct Category {
  CategoryId id;
  std::string name;
};

/// \brief A reviewable item. Every object belongs to exactly one category.
struct Object {
  ObjectId id;
  CategoryId category;
  std::string name;
};

/// \brief A review written by \p writer about \p object. The category is
/// denormalized from the object for cheap per-category scans.
struct Review {
  ReviewId id;
  UserId writer;
  ObjectId object;
  CategoryId category;
};

/// \brief A numerical rating rho_ij given by \p rater to \p review.
/// Values lie on the five-stage scale in [0.2, 1.0].
struct ReviewRating {
  UserId rater;
  ReviewId review;
  double value;
};

/// \brief An explicit trust statement "source trusts target" from the
/// community's web of trust. Used only as ground truth for validation;
/// the derivation framework never reads these.
struct TrustStatement {
  UserId source;
  UserId target;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_ENTITIES_H_
