// Secondary indices over a Dataset. Built once after load/generation, then
// shared read-only by the reputation engine, affiliation computation,
// baseline and evaluation code.
#ifndef WOT_COMMUNITY_INDICES_H_
#define WOT_COMMUNITY_INDICES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "wot/community/dataset.h"

namespace wot {

/// \brief CSR-style grouping of ratings by review and by rater, reviews by
/// writer and by category, plus per-(user, category) activity counts.
class DatasetIndices {
 public:
  /// \brief Builds all indices in O(|reviews| + |ratings|).
  explicit DatasetIndices(const Dataset& dataset);

  /// A rating as seen from a review: who rated it and with what value.
  struct RatingRef {
    UserId rater;
    double value;
  };

  /// A rating as seen from a rater: which review, what value.
  struct RatedReviewRef {
    ReviewId review;
    double value;
  };

  /// \brief Ratings received by \p review.
  std::span<const RatingRef> RatingsOfReview(ReviewId review) const;

  /// \brief Ratings given by \p rater (across all categories).
  std::span<const RatedReviewRef> RatingsByUser(UserId rater) const;

  /// \brief Reviews written by \p writer (across all categories).
  std::span<const ReviewId> ReviewsByUser(UserId writer) const;

  /// \brief Reviews belonging to \p category.
  std::span<const ReviewId> ReviewsInCategory(CategoryId category) const;

  /// \brief Number of reviews user \p u wrote in \p category
  /// (a^w_ij in eq. 4).
  uint32_t WriteCount(UserId u, CategoryId category) const;

  /// \brief Number of ratings user \p u gave in \p category
  /// (a^r_ij in eq. 4).
  uint32_t RateCount(UserId u, CategoryId category) const;

  size_t num_users() const { return num_users_; }
  size_t num_categories() const { return num_categories_; }

 private:
  size_t num_users_;
  size_t num_categories_;

  // Ratings grouped by review.
  std::vector<size_t> review_rating_offsets_;
  std::vector<RatingRef> review_ratings_;

  // Ratings grouped by rater.
  std::vector<size_t> user_rating_offsets_;
  std::vector<RatedReviewRef> user_ratings_;

  // Reviews grouped by writer.
  std::vector<size_t> user_review_offsets_;
  std::vector<ReviewId> user_reviews_;

  // Reviews grouped by category.
  std::vector<size_t> category_review_offsets_;
  std::vector<ReviewId> category_reviews_;

  // Dense (user × category) activity counters; categories are few, so this
  // is affordable and O(1) to query.
  std::vector<uint32_t> write_counts_;
  std::vector<uint32_t> rate_counts_;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_INDICES_H_
