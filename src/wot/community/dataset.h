// The in-memory community dataset: users, categories, objects, reviews,
// review ratings and (optionally) explicit trust statements.
//
// Storage is columnar and append-only: entity k lives at index k of its
// column, so StrongIds double as offsets. Construction goes through
// DatasetBuilder, which validates referential integrity; a built Dataset is
// immutable and safe to share across threads.
#ifndef WOT_COMMUNITY_DATASET_H_
#define WOT_COMMUNITY_DATASET_H_

#include <string>
#include <vector>

#include "wot/community/entities.h"
#include "wot/community/ids.h"
#include "wot/util/check.h"
#include "wot/util/result.h"

namespace wot {

/// \brief An immutable snapshot of one online community.
class Dataset {
 public:
  Dataset() = default;

  size_t num_users() const { return users_.size(); }
  size_t num_categories() const { return categories_.size(); }
  size_t num_objects() const { return objects_.size(); }
  size_t num_reviews() const { return reviews_.size(); }
  size_t num_ratings() const { return ratings_.size(); }
  size_t num_trust_statements() const { return trust_.size(); }

  const User& user(UserId id) const {
    WOT_DCHECK(id.index() < users_.size());
    return users_[id.index()];
  }
  const Category& category(CategoryId id) const {
    WOT_DCHECK(id.index() < categories_.size());
    return categories_[id.index()];
  }
  const Object& object(ObjectId id) const {
    WOT_DCHECK(id.index() < objects_.size());
    return objects_[id.index()];
  }
  const Review& review(ReviewId id) const {
    WOT_DCHECK(id.index() < reviews_.size());
    return reviews_[id.index()];
  }

  const std::vector<User>& users() const { return users_; }
  const std::vector<Category>& categories() const { return categories_; }
  const std::vector<Object>& objects() const { return objects_; }
  const std::vector<Review>& reviews() const { return reviews_; }
  const std::vector<ReviewRating>& ratings() const { return ratings_; }
  const std::vector<TrustStatement>& trust_statements() const {
    return trust_;
  }

  /// \brief Finds a category by name (linear scan; categories are few).
  Result<CategoryId> FindCategory(const std::string& name) const;

  /// \brief One-line summary ("44197 users, 12 categories, ...").
  std::string Summary() const;

 private:
  friend class DatasetBuilder;

  std::vector<User> users_;
  std::vector<Category> categories_;
  std::vector<Object> objects_;
  std::vector<Review> reviews_;
  std::vector<ReviewRating> ratings_;
  std::vector<TrustStatement> trust_;
};

}  // namespace wot

#endif  // WOT_COMMUNITY_DATASET_H_
