#include "wot/community/stats.h"

#include <sstream>
#include <unordered_set>

#include "wot/util/string_util.h"

namespace wot {

DatasetStats ComputeDatasetStats(const Dataset& dataset,
                                 const DatasetIndices& indices) {
  DatasetStats stats;
  stats.num_users = dataset.num_users();
  stats.num_categories = dataset.num_categories();
  stats.num_objects = dataset.num_objects();
  stats.num_reviews = dataset.num_reviews();
  stats.num_ratings = dataset.num_ratings();
  stats.num_trust_statements = dataset.num_trust_statements();

  for (const auto& user : dataset.users()) {
    size_t writes = indices.ReviewsByUser(user.id).size();
    size_t rates = indices.RatingsByUser(user.id).size();
    if (writes > 0) {
      stats.reviews_per_writer.Add(static_cast<double>(writes));
    }
    if (rates > 0) {
      stats.ratings_per_rater.Add(static_cast<double>(rates));
    }
    if (writes > 0 || rates > 0) {
      ++stats.num_active_users;
    }
  }
  for (const auto& review : dataset.reviews()) {
    stats.ratings_per_review.Add(
        static_cast<double>(indices.RatingsOfReview(review.id).size()));
  }

  std::vector<size_t> out_degree(dataset.num_users(), 0);
  for (const auto& trust : dataset.trust_statements()) {
    ++out_degree[trust.source.index()];
  }
  for (size_t u = 0; u < out_degree.size(); ++u) {
    if (out_degree[u] > 0) {
      stats.trust_out_degree.Add(static_cast<double>(out_degree[u]));
    }
  }

  stats.per_category.reserve(dataset.num_categories());
  for (const auto& category : dataset.categories()) {
    CategoryStats cs;
    cs.category = category.id;
    cs.name = category.name;
    std::unordered_set<uint32_t> writers;
    std::unordered_set<uint32_t> raters;
    for (ReviewId rid : indices.ReviewsInCategory(category.id)) {
      ++cs.num_reviews;
      writers.insert(dataset.review(rid).writer.value());
      for (const auto& ref : indices.RatingsOfReview(rid)) {
        ++cs.num_ratings;
        raters.insert(ref.rater.value());
      }
    }
    cs.num_writers = writers.size();
    cs.num_raters = raters.size();
    stats.per_category.push_back(std::move(cs));
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  std::ostringstream os;
  os << "users=" << FormatWithCommas(static_cast<int64_t>(num_users))
     << " (active=" << FormatWithCommas(static_cast<int64_t>(num_active_users))
     << "), categories=" << num_categories << ", objects="
     << FormatWithCommas(static_cast<int64_t>(num_objects)) << ", reviews="
     << FormatWithCommas(static_cast<int64_t>(num_reviews)) << ", ratings="
     << FormatWithCommas(static_cast<int64_t>(num_ratings))
     << ", trust=" << FormatWithCommas(
            static_cast<int64_t>(num_trust_statements))
     << "\n";
  os << "reviews/writer: mean=" << FormatDouble(reviews_per_writer.mean(), 2)
     << " max=" << FormatDouble(reviews_per_writer.max(), 0) << "\n";
  os << "ratings/rater: mean=" << FormatDouble(ratings_per_rater.mean(), 2)
     << " max=" << FormatDouble(ratings_per_rater.max(), 0) << "\n";
  os << "ratings/review: mean=" << FormatDouble(ratings_per_review.mean(), 2)
     << " max=" << FormatDouble(ratings_per_review.max(), 0) << "\n";
  for (const auto& cs : per_category) {
    os << "  [" << cs.name << "] reviews=" << cs.num_reviews
       << " ratings=" << cs.num_ratings << " writers=" << cs.num_writers
       << " raters=" << cs.num_raters << "\n";
  }
  return os.str();
}

}  // namespace wot
