#include "wot/community/indices.h"

#include "wot/util/check.h"

namespace wot {

namespace {

/// Counting-sort grouping: given item count and a key extractor, fills
/// offsets (size num_groups+1) and a permutation of item indices grouped by
/// key. Stable within a group (insertion order preserved).
template <typename KeyFn>
void GroupBy(size_t num_items, size_t num_groups, KeyFn key,
             std::vector<size_t>* offsets,
             std::vector<size_t>* permutation) {
  offsets->assign(num_groups + 1, 0);
  for (size_t i = 0; i < num_items; ++i) {
    ++(*offsets)[key(i) + 1];
  }
  for (size_t g = 1; g <= num_groups; ++g) {
    (*offsets)[g] += (*offsets)[g - 1];
  }
  permutation->resize(num_items);
  std::vector<size_t> cursor(offsets->begin(), offsets->end() - 1);
  for (size_t i = 0; i < num_items; ++i) {
    (*permutation)[cursor[key(i)]++] = i;
  }
}

}  // namespace

DatasetIndices::DatasetIndices(const Dataset& dataset)
    : num_users_(dataset.num_users()),
      num_categories_(dataset.num_categories()) {
  const auto& reviews = dataset.reviews();
  const auto& ratings = dataset.ratings();

  std::vector<size_t> perm;

  // Ratings by review.
  GroupBy(
      ratings.size(), reviews.size(),
      [&](size_t i) { return ratings[i].review.index(); },
      &review_rating_offsets_, &perm);
  review_ratings_.resize(ratings.size());
  for (size_t pos = 0; pos < perm.size(); ++pos) {
    const auto& rating = ratings[perm[pos]];
    review_ratings_[pos] = {rating.rater, rating.value};
  }

  // Ratings by rater.
  GroupBy(
      ratings.size(), num_users_,
      [&](size_t i) { return ratings[i].rater.index(); },
      &user_rating_offsets_, &perm);
  user_ratings_.resize(ratings.size());
  for (size_t pos = 0; pos < perm.size(); ++pos) {
    const auto& rating = ratings[perm[pos]];
    user_ratings_[pos] = {rating.review, rating.value};
  }

  // Reviews by writer.
  GroupBy(
      reviews.size(), num_users_,
      [&](size_t i) { return reviews[i].writer.index(); },
      &user_review_offsets_, &perm);
  user_reviews_.resize(reviews.size());
  for (size_t pos = 0; pos < perm.size(); ++pos) {
    user_reviews_[pos] = reviews[perm[pos]].id;
  }

  // Reviews by category.
  GroupBy(
      reviews.size(), num_categories_,
      [&](size_t i) { return reviews[i].category.index(); },
      &category_review_offsets_, &perm);
  category_reviews_.resize(reviews.size());
  for (size_t pos = 0; pos < perm.size(); ++pos) {
    category_reviews_[pos] = reviews[perm[pos]].id;
  }

  // Activity counters.
  write_counts_.assign(num_users_ * num_categories_, 0);
  rate_counts_.assign(num_users_ * num_categories_, 0);
  for (const auto& review : reviews) {
    ++write_counts_[review.writer.index() * num_categories_ +
                    review.category.index()];
  }
  for (const auto& rating : ratings) {
    const auto& review = dataset.review(rating.review);
    ++rate_counts_[rating.rater.index() * num_categories_ +
                   review.category.index()];
  }
}

std::span<const DatasetIndices::RatingRef> DatasetIndices::RatingsOfReview(
    ReviewId review) const {
  WOT_DCHECK(review.index() + 1 < review_rating_offsets_.size() + 1);
  size_t begin = review_rating_offsets_[review.index()];
  size_t end = review_rating_offsets_[review.index() + 1];
  return {review_ratings_.data() + begin, end - begin};
}

std::span<const DatasetIndices::RatedReviewRef> DatasetIndices::RatingsByUser(
    UserId rater) const {
  size_t begin = user_rating_offsets_[rater.index()];
  size_t end = user_rating_offsets_[rater.index() + 1];
  return {user_ratings_.data() + begin, end - begin};
}

std::span<const ReviewId> DatasetIndices::ReviewsByUser(UserId writer) const {
  size_t begin = user_review_offsets_[writer.index()];
  size_t end = user_review_offsets_[writer.index() + 1];
  return {user_reviews_.data() + begin, end - begin};
}

std::span<const ReviewId> DatasetIndices::ReviewsInCategory(
    CategoryId category) const {
  size_t begin = category_review_offsets_[category.index()];
  size_t end = category_review_offsets_[category.index() + 1];
  return {category_reviews_.data() + begin, end - begin};
}

uint32_t DatasetIndices::WriteCount(UserId u, CategoryId category) const {
  return write_counts_[u.index() * num_categories_ + category.index()];
}

uint32_t DatasetIndices::RateCount(UserId u, CategoryId category) const {
  return rate_counts_[u.index() * num_categories_ + category.index()];
}

}  // namespace wot
