#include "wot/community/dataset_builder.h"

#include <utility>

namespace wot {

namespace {
uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

DatasetBuilder::DatasetBuilder(DatasetBuilderOptions options)
    : options_(options) {}

UserId DatasetBuilder::AddUser(std::string name) {
  UserId id(static_cast<uint32_t>(dataset_.users_.size()));
  dataset_.users_.push_back({id, std::move(name)});
  return id;
}

CategoryId DatasetBuilder::AddCategory(std::string name) {
  CategoryId id(static_cast<uint32_t>(dataset_.categories_.size()));
  dataset_.categories_.push_back({id, std::move(name)});
  return id;
}

Result<ObjectId> DatasetBuilder::AddObject(CategoryId category,
                                           std::string name) {
  if (!category.valid() ||
      category.index() >= dataset_.categories_.size()) {
    return Status::InvalidArgument("object references unknown category");
  }
  ObjectId id(static_cast<uint32_t>(dataset_.objects_.size()));
  dataset_.objects_.push_back({id, category, std::move(name)});
  return id;
}

Status DatasetBuilder::CheckUser(UserId id, const char* role) const {
  if (!id.valid() || id.index() >= dataset_.users_.size()) {
    return Status::InvalidArgument(std::string("unknown ") + role +
                                   " user id");
  }
  return Status::OK();
}

Result<ReviewId> DatasetBuilder::AddReview(UserId writer, ObjectId object) {
  WOT_RETURN_IF_ERROR(CheckUser(writer, "writer"));
  if (!object.valid() || object.index() >= dataset_.objects_.size()) {
    return Status::InvalidArgument("review references unknown object");
  }
  if (options_.enforce_one_review_per_object) {
    uint64_t key = PairKey(writer.value(), object.value());
    if (!review_keys_.insert(key).second) {
      return Status::AlreadyExists(
          "user " + std::to_string(writer.value()) +
          " already reviewed object " + std::to_string(object.value()));
    }
  }
  ReviewId id(static_cast<uint32_t>(dataset_.reviews_.size()));
  dataset_.reviews_.push_back(
      {id, writer, object, dataset_.objects_[object.index()].category});
  return id;
}

Status DatasetBuilder::AddRating(UserId rater, ReviewId review,
                                 double value) {
  WOT_RETURN_IF_ERROR(CheckUser(rater, "rater"));
  if (!review.valid() || review.index() >= dataset_.reviews_.size()) {
    return Status::InvalidArgument("rating references unknown review");
  }
  if (options_.reject_self_ratings &&
      dataset_.reviews_[review.index()].writer == rater) {
    return Status::FailedPrecondition(
        "user " + std::to_string(rater.value()) +
        " may not rate their own review");
  }
  if (options_.enforce_rating_scale && !rating_scale::IsValidStage(value)) {
    return Status::InvalidArgument(
        "rating value " + std::to_string(value) +
        " is not one of the five scale stages {0.2,0.4,0.6,0.8,1.0}");
  }
  if (options_.reject_duplicate_ratings) {
    uint64_t key = PairKey(rater.value(), review.value());
    if (!rating_keys_.insert(key).second) {
      return Status::AlreadyExists(
          "user " + std::to_string(rater.value()) +
          " already rated review " + std::to_string(review.value()));
    }
  }
  dataset_.ratings_.push_back({rater, review, value});
  return Status::OK();
}

Status DatasetBuilder::AddTrust(UserId source, UserId target) {
  WOT_RETURN_IF_ERROR(CheckUser(source, "trust source"));
  WOT_RETURN_IF_ERROR(CheckUser(target, "trust target"));
  if (options_.reject_degenerate_trust) {
    if (source == target) {
      return Status::InvalidArgument("self-trust statement rejected");
    }
    uint64_t key = PairKey(source.value(), target.value());
    if (!trust_keys_.insert(key).second) {
      return Status::AlreadyExists("duplicate trust statement");
    }
  }
  dataset_.trust_.push_back({source, target});
  return Status::OK();
}

Result<Dataset> DatasetBuilder::Build() {
  Dataset out = std::move(dataset_);
  dataset_ = Dataset();
  review_keys_.clear();
  rating_keys_.clear();
  trust_keys_.clear();
  return out;
}

}  // namespace wot
