#include "wot/community/dataset_builder.h"

#include <cmath>
#include <utility>

namespace wot {

namespace {
uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

DatasetBuilder::DatasetBuilder(DatasetBuilderOptions options)
    : options_(options) {}

UserId DatasetBuilder::AddUser(std::string name) {
  UserId id(static_cast<uint32_t>(dataset_.users_.size()));
  dataset_.users_.push_back({id, std::move(name)});
  return id;
}

CategoryId DatasetBuilder::AddCategory(std::string name) {
  CategoryId id(static_cast<uint32_t>(dataset_.categories_.size()));
  dataset_.categories_.push_back({id, std::move(name)});
  return id;
}

Result<ObjectId> DatasetBuilder::AddObject(CategoryId category,
                                           std::string name) {
  if (!category.valid() ||
      category.index() >= dataset_.categories_.size()) {
    return Status::InvalidArgument("object references unknown category");
  }
  ObjectId id(static_cast<uint32_t>(dataset_.objects_.size()));
  dataset_.objects_.push_back({id, category, std::move(name)});
  return id;
}

Status DatasetBuilder::CheckUser(UserId id, const char* role) const {
  if (!id.valid() || id.index() >= dataset_.users_.size()) {
    return Status::InvalidArgument(std::string("unknown ") + role +
                                   " user id");
  }
  return Status::OK();
}

Result<ReviewId> DatasetBuilder::AddReview(UserId writer, ObjectId object) {
  EnsureDedupKeys();
  WOT_RETURN_IF_ERROR(CheckUser(writer, "writer"));
  if (!object.valid() || object.index() >= dataset_.objects_.size()) {
    return Status::InvalidArgument("review references unknown object");
  }
  if (options_.enforce_one_review_per_object) {
    uint64_t key = PairKey(writer.value(), object.value());
    if (!review_keys_.insert(key).second) {
      return Status::AlreadyExists(
          "user " + std::to_string(writer.value()) +
          " already reviewed object " + std::to_string(object.value()));
    }
  }
  ReviewId id(static_cast<uint32_t>(dataset_.reviews_.size()));
  dataset_.reviews_.push_back(
      {id, writer, object, dataset_.objects_[object.index()].category});
  return id;
}

Status DatasetBuilder::AddRating(UserId rater, ReviewId review,
                                 double value) {
  EnsureDedupKeys();
  WOT_RETURN_IF_ERROR(CheckUser(rater, "rater"));
  if (!review.valid() || review.index() >= dataset_.reviews_.size()) {
    return Status::InvalidArgument("rating references unknown review");
  }
  if (options_.reject_self_ratings &&
      dataset_.reviews_[review.index()].writer == rater) {
    return Status::FailedPrecondition(
        "user " + std::to_string(rater.value()) +
        " may not rate their own review");
  }
  if (options_.enforce_rating_scale && !rating_scale::IsValidStage(value)) {
    return Status::InvalidArgument(
        "rating value " + std::to_string(value) +
        " is not one of the five scale stages {0.2,0.4,0.6,0.8,1.0}");
  }
  if (options_.reject_duplicate_ratings) {
    uint64_t key = PairKey(rater.value(), review.value());
    if (!rating_keys_.insert(key).second) {
      return Status::AlreadyExists(
          "user " + std::to_string(rater.value()) +
          " already rated review " + std::to_string(review.value()));
    }
  }
  dataset_.ratings_.push_back({rater, review, value});
  return Status::OK();
}

Status DatasetBuilder::AddTrust(UserId source, UserId target) {
  EnsureDedupKeys();
  WOT_RETURN_IF_ERROR(CheckUser(source, "trust source"));
  WOT_RETURN_IF_ERROR(CheckUser(target, "trust target"));
  if (options_.reject_degenerate_trust) {
    if (source == target) {
      return Status::InvalidArgument("self-trust statement rejected");
    }
    uint64_t key = PairKey(source.value(), target.value());
    if (!trust_keys_.insert(key).second) {
      return Status::AlreadyExists("duplicate trust statement");
    }
  }
  dataset_.trust_.push_back({source, target});
  return Status::OK();
}

Result<Dataset> DatasetBuilder::Build() {
  Dataset out = std::move(dataset_);
  dataset_ = Dataset();
  review_keys_.clear();
  rating_keys_.clear();
  trust_keys_.clear();
  dedup_keys_synced_ = true;
  return out;
}

void DatasetBuilder::EnsureDedupKeys() {
  if (dedup_keys_synced_) return;
  dedup_keys_synced_ = true;
  if (options_.enforce_one_review_per_object) {
    review_keys_.reserve(dataset_.reviews_.size());
    for (const Review& review : dataset_.reviews_) {
      review_keys_.insert(
          PairKey(review.writer.value(), review.object.value()));
    }
  }
  if (options_.reject_duplicate_ratings) {
    rating_keys_.reserve(dataset_.ratings_.size());
    for (const ReviewRating& rating : dataset_.ratings_) {
      rating_keys_.insert(
          PairKey(rating.rater.value(), rating.review.value()));
    }
  }
  if (options_.reject_degenerate_trust) {
    trust_keys_.reserve(dataset_.trust_.size());
    for (const TrustStatement& statement : dataset_.trust_) {
      trust_keys_.insert(
          PairKey(statement.source.value(), statement.target.value()));
    }
  }
}

Status DatasetBuilder::AdoptValidated(Dataset dataset) {
  if (!dataset_.users_.empty() || !dataset_.categories_.empty() ||
      !dataset_.objects_.empty() || !dataset_.reviews_.empty() ||
      !dataset_.ratings_.empty() || !dataset_.trust_.empty()) {
    return Status::FailedPrecondition(
        "AdoptValidated requires an empty builder");
  }
  // Policy rules that scan columns sequentially are cheap enough to keep
  // even on the instant-boot path. Deliberately trusted from the source
  // (a CRC-verified segment whose contents went through a validating
  // builder when written): referential integrity (FromValidatedColumns
  // already bounds-checked every reference), self-rating rejection (a
  // random-access writer lookup per rating — the one check that would
  // dominate adoption cost), and dedup uniqueness (the key sets rebuild
  // lazily in EnsureDedupKeys; pre-existing duplicates collapse there).
  if (options_.enforce_rating_scale) {
    for (const ReviewRating& rating : dataset.ratings()) {
      // Inline nearest-stage form of rating_scale::IsValidStage: the
      // stages are 0.2 apart and the tolerance is 1e-9, so only the
      // nearest k can qualify — one nearbyint + one fabs per row instead
      // of five out-of-line comparisons, same accept set.
      const double v = rating.value;
      const double k = std::nearbyint(v * 5.0);
      if (!(k >= 1.0 && k <= 5.0 && std::fabs(v - 0.2 * k) < 1e-9)) {
        return Status::InvalidArgument(
            "rating value " + std::to_string(v) +
            " is not one of the five scale stages {0.2,0.4,0.6,0.8,1.0}");
      }
    }
  }
  if (options_.reject_degenerate_trust) {
    for (const TrustStatement& statement : dataset.trust_statements()) {
      if (statement.source == statement.target) {
        return Status::InvalidArgument("self-trust statement rejected");
      }
    }
  }
  dataset_ = std::move(dataset);
  review_keys_.clear();
  rating_keys_.clear();
  trust_keys_.clear();
  dedup_keys_synced_ = false;
  return Status::OK();
}

Result<Dataset> DatasetBuilder::FromValidatedColumns(
    std::vector<Category> categories, std::vector<User> users,
    std::vector<Object> objects, std::vector<Review> reviews,
    std::vector<ReviewRating> ratings,
    std::vector<TrustStatement> trust_statements) {
  Dataset dataset;
  dataset.categories_ = std::move(categories);
  dataset.users_ = std::move(users);
  dataset.objects_ = std::move(objects);
  dataset.reviews_ = std::move(reviews);
  dataset.ratings_ = std::move(ratings);
  dataset.trust_ = std::move(trust_statements);
  const uint32_t num_categories =
      static_cast<uint32_t>(dataset.categories_.size());
  const uint32_t num_users = static_cast<uint32_t>(dataset.users_.size());
  const uint32_t num_objects =
      static_cast<uint32_t>(dataset.objects_.size());
  const uint32_t num_reviews =
      static_cast<uint32_t>(dataset.reviews_.size());
  for (uint32_t i = 0; i < num_categories; ++i) {
    dataset.categories_[i].id = CategoryId(i);
  }
  for (uint32_t i = 0; i < num_users; ++i) {
    dataset.users_[i].id = UserId(i);
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    Object& object = dataset.objects_[i];
    object.id = ObjectId(i);
    if (object.category.value() >= num_categories) {
      return Status::InvalidArgument("object references unknown category");
    }
  }
  for (uint32_t i = 0; i < num_reviews; ++i) {
    Review& review = dataset.reviews_[i];
    review.id = ReviewId(i);
    if (review.writer.value() >= num_users ||
        review.object.value() >= num_objects) {
      return Status::InvalidArgument(
          "review references unknown writer or object");
    }
    review.category = dataset.objects_[review.object.index()].category;
  }
  for (const ReviewRating& rating : dataset.ratings_) {
    if (rating.rater.value() >= num_users ||
        rating.review.value() >= num_reviews) {
      return Status::InvalidArgument(
          "rating references unknown rater or review");
    }
  }
  for (const TrustStatement& statement : dataset.trust_) {
    if (statement.source.value() >= num_users ||
        statement.target.value() >= num_users) {
      return Status::InvalidArgument(
          "trust statement references unknown user");
    }
  }
  return dataset;
}

}  // namespace wot
