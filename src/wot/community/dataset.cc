#include "wot/community/dataset.h"

#include <sstream>

namespace wot {

Result<CategoryId> Dataset::FindCategory(const std::string& name) const {
  for (const auto& category : categories_) {
    if (category.name == name) {
      return category.id;
    }
  }
  return Status::NotFound("no category named '" + name + "'");
}

std::string Dataset::Summary() const {
  std::ostringstream os;
  os << num_users() << " users, " << num_categories() << " categories, "
     << num_objects() << " objects, " << num_reviews() << " reviews, "
     << num_ratings() << " ratings, " << num_trust_statements()
     << " trust statements";
  return os.str();
}

}  // namespace wot
