// Strongly-typed entity identifiers. Using distinct types for user, object,
// category and review ids turns unit-mixing bugs (passing a review id where
// a user id is expected) into compile errors.
#ifndef WOT_COMMUNITY_IDS_H_
#define WOT_COMMUNITY_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace wot {

/// \brief A typed wrapper over a dense uint32_t index.
///
/// Ids are dense: entity k created in a dataset has id k, so ids double as
/// vector indices. kInvalid (UINT32_MAX) marks "no entity".
template <typename Tag>
class StrongId {
 public:
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();

  constexpr StrongId() : value_(kInvalid) {}
  constexpr explicit StrongId(uint32_t value) : value_(value) {}

  constexpr uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  /// \brief The id as a vector index. Callers must ensure valid().
  constexpr size_t index() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  uint32_t value_;
};

struct UserTag {};
struct ObjectTag {};
struct CategoryTag {};
struct ReviewTag {};

/// A community member (review writer and/or review rater).
using UserId = StrongId<UserTag>;
/// A reviewable object (e.g. a movie).
using ObjectId = StrongId<ObjectTag>;
/// A context / topic (e.g. the "Comedies" sub-category).
using CategoryId = StrongId<CategoryTag>;
/// A text review written by one user about one object.
using ReviewId = StrongId<ReviewTag>;

}  // namespace wot

namespace std {
template <typename Tag>
struct hash<wot::StrongId<Tag>> {
  size_t operator()(wot::StrongId<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};
}  // namespace std

#endif  // WOT_COMMUNITY_IDS_H_
