#include "wot/community/interner.h"

#include "wot/util/check.h"

namespace wot {

uint32_t StringInterner::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    return it->second;
  }
  uint32_t handle = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), handle);
  return handle;
}

std::optional<uint32_t> StringInterner::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& StringInterner::NameOf(uint32_t handle) const {
  WOT_CHECK_LT(handle, names_.size());
  return names_[handle];
}

}  // namespace wot
