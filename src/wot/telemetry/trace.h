// Per-request trace annotations for the slow-request log.
//
// A trace id names one frame on one connection — "c<connection>.<seq>"
// — so a slow-log line in the server's stderr is attributable to the
// exact request that caused it (the ConnectionServer assigns connection
// ids; seq is that connection's request ordinal).
//
// The shard annotation is a thread-local side channel: the Frontend
// envelope resets it before dispatching, the ShardRouter sets it while
// routing, and the envelope reads it back when writing a slow-log line.
// Dispatch runs start-to-finish on one pool thread, so a thread-local
// is exactly the lifetime needed — no per-request allocation, no
// signature changes through every routing layer.
#ifndef WOT_TELEMETRY_TRACE_H_
#define WOT_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>

namespace wot {
namespace telemetry {

/// \brief The trace id of request \p sequence on connection
/// \p connection_id. Connection id 0 means "no connection" (loopback).
inline std::string TraceId(int64_t connection_id, int64_t sequence) {
  return "c" + std::to_string(connection_id) + "." +
         std::to_string(sequence);
}

namespace internal {
inline thread_local int64_t dispatch_shard = -1;
}  // namespace internal

/// \brief Annotates the in-flight dispatch with the shard that served
/// it (ShardRouter routing paths call this).
inline void SetDispatchShard(int64_t shard) {
  internal::dispatch_shard = shard;
}

/// \brief Clears the annotation; the Frontend envelope calls this
/// before every dispatch.
inline void ClearDispatchShard() { internal::dispatch_shard = -1; }

/// \brief The annotated shard, or -1 when the request never touched a
/// ShardRouter routing path.
inline int64_t DispatchShard() { return internal::dispatch_shard; }

}  // namespace telemetry
}  // namespace wot

#endif  // WOT_TELEMETRY_TRACE_H_
