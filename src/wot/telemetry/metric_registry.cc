#include "wot/telemetry/metric_registry.h"

#include <algorithm>

#include "wot/util/check.h"

namespace wot {
namespace telemetry {

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  WOT_CHECK_EQ(buckets.size(), other.buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The sample with (0-based) rank floor(q * (count - 1)); interpolate
  // linearly across its bucket's value range.
  const double target = q * static_cast<double>(count - 1);
  int64_t before = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const int64_t after = before + buckets[b];
    if (target < static_cast<double>(after) || b + 1 == buckets.size()) {
      const double lower =
          static_cast<double>(LatencyHistogram::BucketLowerBound(b));
      const double upper =
          static_cast<double>(LatencyHistogram::BucketUpperBound(b));
      const double within =
          (target - static_cast<double>(before)) /
          static_cast<double>(buckets[b]);
      return lower + std::clamp(within, 0.0, 1.0) * (upper - lower);
    }
    before = after;
  }
  return 0.0;
}

int64_t HistogramSnapshot::ApproxMin() const {
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] > 0) return LatencyHistogram::BucketLowerBound(b);
  }
  return 0;
}

int64_t HistogramSnapshot::ApproxMax() const {
  for (size_t b = buckets.size(); b > 0; --b) {
    if (buckets[b - 1] > 0) {
      return LatencyHistogram::BucketLowerBound(b - 1);
    }
  }
  return 0;
}

HistogramSnapshot LatencyHistogram::Snapshot(std::string name) const {
  HistogramSnapshot snapshot;
  snapshot.name = std::move(name);
  snapshot.buckets.assign(kNumBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    snapshot.sum += stripe.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snapshot.buckets[b] +=
          stripe.counts[b].load(std::memory_order_relaxed);
    }
  }
  for (int64_t bucket : snapshot.buckets) {
    snapshot.count += bucket;
  }
  return snapshot;
}

namespace {

// Sorted-vector upsert shared by the counter/gauge merge paths.
void MergeValues(std::vector<std::pair<std::string, int64_t>>* into,
                 const std::vector<std::pair<std::string, int64_t>>& from) {
  for (const auto& [name, value] : from) {
    auto it = std::lower_bound(
        into->begin(), into->end(), name,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (it != into->end() && it->first == name) {
      it->second += value;
    } else {
      into->insert(it, {name, value});
    }
  }
}

}  // namespace

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  MergeValues(&counters, other.counters);
  MergeValues(&gauges, other.gauges);
  for (const HistogramSnapshot& theirs : other.histograms) {
    auto it = std::lower_bound(
        histograms.begin(), histograms.end(), theirs.name,
        [](const HistogramSnapshot& entry, const std::string& key) {
          return entry.name < key;
        });
    if (it != histograms.end() && it->name == theirs.name) {
      it->MergeFrom(theirs);
    } else {
      histograms.insert(it, theirs);
    }
  }
}

Counter* MetricRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricRegistry::Scrape() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Snapshot(name));
  }
  return snapshot;
}

}  // namespace telemetry
}  // namespace wot
