// Low-overhead serving telemetry: named counters, gauges and mergeable
// log-bucketed latency histograms behind one MetricRegistry.
//
// Hot-path contract: recording a sample is ONE relaxed fetch-add on a
// striped cache-line — no locks, no allocation, no branches beyond the
// bucket math. The registry mutex guards only metric *registration*
// (instrument sites resolve their Counter*/LatencyHistogram* once, at
// construction) and the name map walked by Scrape(); a scrape therefore
// never blocks writers, it just sums their atomics.
//
// Histogram shape: 248 fixed exponential buckets — identity for values
// 0..7, then four sub-buckets per power-of-two octave, giving <= 25%
// relative error over the full int64 range. Fixed boundaries make
// histograms MERGEABLE: summing two histograms' buckets element-wise is
// exactly the histogram of the concatenated streams (property-tested),
// which is how per-thread stripes, per-shard registries and per-layer
// sources all collapse into one scrape.
//
// Compiling with -DWOT_TELEMETRY_OFF turns every mutation (Increment,
// Set, Record, WOT_TIMED) into a no-op without changing any type or
// call site — bench/micro_service_off builds the whole serving stack
// that way to price the instrumentation (docs/observability.md).
#ifndef WOT_TELEMETRY_METRIC_REGISTRY_H_
#define WOT_TELEMETRY_METRIC_REGISTRY_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "wot/util/macros.h"
#include "wot/util/thread_annotations.h"

namespace wot {
namespace telemetry {

/// Concurrent writers spread over this many cache-line-aligned stripes;
/// readers sum them. Power of two (the stripe pick is a mask).
inline constexpr size_t kStripes = 8;

/// \brief This thread's stripe. Threads are assigned round-robin on
/// first use, so a dispatch pool of N threads collides only when
/// N > kStripes.
inline size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return mine;
}

/// \brief A monotonically increasing sum. Increment is one relaxed
/// fetch-add on this thread's stripe; Value sums the stripes (so a read
/// concurrent with writes is a plausible point-in-time total, never a
/// torn one).
class Counter {
 public:
  Counter() = default;
  WOT_DISALLOW_COPY_AND_MOVE(Counter);

  void Increment(int64_t delta = 1) {
#ifndef WOT_TELEMETRY_OFF
    stripes_[StripeIndex()].value.fetch_add(delta,
                                            std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> value{0};
  };
  Stripe stripes_[kStripes];
};

/// \brief A point-in-time level (queue depth, buffered bytes). Set and
/// Add are single relaxed atomics — gauges are written far less often
/// than counters, so they are not striped (Set could not be).
class Gauge {
 public:
  Gauge() = default;
  WOT_DISALLOW_COPY_AND_MOVE(Gauge);

  void Set(int64_t value) {
#ifndef WOT_TELEMETRY_OFF
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(int64_t delta) {
#ifndef WOT_TELEMETRY_OFF
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief One histogram's merged state at scrape time: plain data,
/// mergeable, quantile-queryable. `buckets` always has
/// LatencyHistogram::kNumBuckets entries.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  std::vector<int64_t> buckets;

  /// \brief Element-wise bucket sum; requires equal bucket counts.
  void MergeFrom(const HistogramSnapshot& other);

  /// \brief Estimates the q-quantile (q in [0,1]) by walking the
  /// cumulative bucket counts and interpolating linearly inside the
  /// covering bucket. Returns 0 on an empty histogram. Monotone in q.
  double Quantile(double q) const;

  /// Lower bound of the first (last) non-empty bucket — the recorded
  /// extrema up to bucket resolution. 0 when empty.
  int64_t ApproxMin() const;
  int64_t ApproxMax() const;
};

/// \brief A fixed-boundary exponential-bucket histogram of nonnegative
/// int64 samples (latencies in nanoseconds by convention; any counted
/// quantity works). Record is one relaxed fetch-add per sample on this
/// thread's stripe; Snapshot merges the stripes.
class LatencyHistogram {
 public:
  /// Buckets 0..7 are identity (value == bucket); values >= 8 get four
  /// sub-buckets per power-of-two octave up to 2^62.
  static constexpr size_t kNumBuckets = 248;

  LatencyHistogram() = default;
  WOT_DISALLOW_COPY_AND_MOVE(LatencyHistogram);

  /// \brief Bucket covering \p value (negatives clamp to bucket 0).
  static size_t BucketIndex(int64_t value) {
    if (value < 8) {
      return value < 0 ? 0 : static_cast<size_t>(value);
    }
    const uint64_t v = static_cast<uint64_t>(value);
    const int msb = 63 - std::countl_zero(v);
    const size_t sub = static_cast<size_t>((v >> (msb - 2)) & 3);
    return 8 + static_cast<size_t>(msb - 3) * 4 + sub;
  }

  /// \brief Smallest value that lands in \p bucket (< kNumBuckets).
  static int64_t BucketLowerBound(size_t bucket) {
    if (bucket < 8) return static_cast<int64_t>(bucket);
    const size_t octave = (bucket - 8) / 4;
    const size_t sub = (bucket - 8) % 4;
    const int shift = static_cast<int>(octave) + 1;  // msb - 2
    return static_cast<int64_t>(4 + sub) << shift;
  }

  /// \brief One past the largest value in \p bucket. The top bucket is
  /// open-ended; its "upper bound" caps at INT64_MAX (doubling its
  /// lower bound would overflow).
  static int64_t BucketUpperBound(size_t bucket) {
    if (bucket + 1 < kNumBuckets) return BucketLowerBound(bucket + 1);
    return INT64_MAX;
  }

  void Record(int64_t value) {
#ifndef WOT_TELEMETRY_OFF
    Stripe& stripe = stripes_[StripeIndex()];
    stripe.counts[BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value < 0 ? 0 : value,
                         std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// \brief Merges the stripes into plain data. Safe (and meaningful)
  /// concurrent with Record: every sample is counted exactly once or
  /// not yet.
  HistogramSnapshot Snapshot(std::string name) const;

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> counts[kNumBuckets]{};
  };
  Stripe stripes_[kStripes];
};

/// \brief Everything one registry (or a merge of several) knows at one
/// instant. Vectors are sorted by name, so equal workloads scrape to
/// equal snapshots.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// \brief Folds \p other in: same-name counters/gauges/buckets sum,
  /// new names insert (order stays sorted).
  void MergeFrom(const MetricsSnapshot& other);
};

/// \brief Named metrics, registered once and recorded into forever.
/// counter()/gauge()/histogram() get-or-create under the registry mutex
/// and return a pointer that stays valid for the registry's lifetime —
/// instrument sites resolve at construction and the request path never
/// sees the lock. Scrape() reads under the same mutex but only contends
/// with registration, never with recording.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  WOT_DISALLOW_COPY_AND_MOVE(MetricRegistry);

  Counter* counter(std::string_view name) WOT_EXCLUDES(mu_);
  Gauge* gauge(std::string_view name) WOT_EXCLUDES(mu_);
  LatencyHistogram* histogram(std::string_view name) WOT_EXCLUDES(mu_);

  MetricsSnapshot Scrape() const WOT_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      WOT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      WOT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ WOT_GUARDED_BY(mu_);
};

}  // namespace telemetry
}  // namespace wot

#endif  // WOT_TELEMETRY_METRIC_REGISTRY_H_
