// WOT_TIMED: scoped latency recording, and the Timer the serving stack
// uses wherever it needs an elapsed-time *value* (slow-request logging,
// stage timings that also feed a result struct). Both are built on
// wot::Stopwatch; src/wot/{server,api,service,storage} never touch
// std::chrono directly (tools/wot_lint.py enforces it), so every timing
// in those layers is visible to the metric catalog.
//
//   telemetry::LatencyHistogram* h = registry->histogram("api.x_ns");
//   {
//     WOT_TIMED(h);          // records scope duration (ns) on exit
//     ...work...
//   }
//
// A null histogram is a cheap no-op, so call sites need no guards; with
// -DWOT_TELEMETRY_OFF the timer never reads the clock at all.
#ifndef WOT_TELEMETRY_TIMED_H_
#define WOT_TELEMETRY_TIMED_H_

#include <cstdint>

#include "wot/telemetry/metric_registry.h"
#include "wot/util/macros.h"
#include "wot/util/stopwatch.h"

namespace wot {
namespace telemetry {

/// \brief A monotonic elapsed-time reading in nanoseconds — the one
/// clock the instrumented layers use.
class Timer {
 public:
  Timer() = default;

  void Reset() { stopwatch_.Reset(); }

  int64_t ElapsedNanos() const { return stopwatch_.ElapsedNanos(); }

  double ElapsedMillis() const { return stopwatch_.ElapsedMillis(); }

  /// \brief Records the elapsed nanoseconds into \p histogram (null ok)
  /// and returns them, so one reading can feed a histogram and a stat.
  int64_t RecordInto(LatencyHistogram* histogram) const {
    const int64_t nanos = ElapsedNanos();
    if (histogram != nullptr) {
      histogram->Record(nanos);
    }
    return nanos;
  }

 private:
  Stopwatch stopwatch_;
};

/// \brief Records the lifetime of the scope into a histogram (null ok).
#ifndef WOT_TELEMETRY_OFF
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram)
      : histogram_(histogram) {}
  ~ScopedTimer() { timer_.RecordInto(histogram_); }
  WOT_DISALLOW_COPY_AND_MOVE(ScopedTimer);

 private:
  LatencyHistogram* histogram_;
  Timer timer_;
};
#else
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram*) {}
  WOT_DISALLOW_COPY_AND_MOVE(ScopedTimer);
};
#endif

#define WOT_TELEMETRY_CONCAT_INNER(a, b) a##b
#define WOT_TELEMETRY_CONCAT(a, b) WOT_TELEMETRY_CONCAT_INNER(a, b)

/// \brief Times the enclosing scope into \p histogram
/// (a telemetry::LatencyHistogram*; null is a no-op).
#define WOT_TIMED(histogram)                                        \
  ::wot::telemetry::ScopedTimer WOT_TELEMETRY_CONCAT(wot_timed_at_, \
                                                     __LINE__)(histogram)

}  // namespace telemetry
}  // namespace wot

#endif  // WOT_TELEMETRY_TIMED_H_
