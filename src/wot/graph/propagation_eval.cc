#include "wot/graph/propagation_eval.h"

#include <cmath>
#include <sstream>

#include "wot/util/string_util.h"

namespace wot {

double PropagationComparison::CoverageA() const {
  return pairs_sampled == 0 ? 0.0
                            : static_cast<double>(covered_by_a) /
                                  static_cast<double>(pairs_sampled);
}

double PropagationComparison::CoverageB() const {
  return pairs_sampled == 0 ? 0.0
                            : static_cast<double>(covered_by_b) /
                                  static_cast<double>(pairs_sampled);
}

std::string PropagationComparison::ToString(const std::string& name_a,
                                            const std::string& name_b) const {
  std::ostringstream os;
  os << "pairs sampled: " << pairs_sampled << "\n"
     << name_a << ": coverage=" << FormatDouble(CoverageA(), 3)
     << " mean prediction=" << FormatDouble(prediction_a.mean(), 3) << "\n"
     << name_b << ": coverage=" << FormatDouble(CoverageB(), 3)
     << " mean prediction=" << FormatDouble(prediction_b.mean(), 3) << "\n"
     << "covered by both: " << covered_by_both
     << "  mean |difference|=" << FormatDouble(abs_difference.mean(), 3)
     << "  max=" << FormatDouble(abs_difference.max(), 3) << "\n";
  return os.str();
}

Result<PropagationComparison> ComparePropagation(
    const TrustGraph& a, const TrustGraph& b,
    const PropagationEvalOptions& options) {
  if (a.num_nodes() != b.num_nodes()) {
    return Status::InvalidArgument(
        "the two webs must cover the same user population");
  }
  if (a.num_nodes() < 2) {
    return Status::InvalidArgument("need at least 2 nodes");
  }
  Rng rng(options.seed);
  PropagationComparison out;
  out.pairs_sampled = options.num_pairs;
  for (size_t k = 0; k < options.num_pairs; ++k) {
    size_t source = rng.NextBounded(a.num_nodes());
    size_t sink = rng.NextBounded(a.num_nodes());
    if (source == sink) {
      sink = (sink + 1) % a.num_nodes();
    }
    Result<TidalTrustResult> ra = TidalTrust(a, source, sink, options.tidal);
    Result<TidalTrustResult> rb = TidalTrust(b, source, sink, options.tidal);
    if (ra.ok()) {
      ++out.covered_by_a;
      out.prediction_a.Add(ra.ValueOrDie().trust);
    }
    if (rb.ok()) {
      ++out.covered_by_b;
      out.prediction_b.Add(rb.ValueOrDie().trust);
    }
    if (ra.ok() && rb.ok()) {
      ++out.covered_by_both;
      out.abs_difference.Add(
          std::fabs(ra.ValueOrDie().trust - rb.ValueOrDie().trust));
    }
  }
  return out;
}

}  // namespace wot
