#include "wot/graph/trust_graph.h"

#include <algorithm>

#include "wot/util/check.h"

namespace wot {

TrustGraph TrustGraph::FromMatrix(const SparseMatrix& matrix) {
  WOT_CHECK_EQ(matrix.rows(), matrix.cols());
  TrustGraph graph;
  graph.offsets_.assign(matrix.rows() + 1, 0);
  // Counting pass.
  for (size_t u = 0; u < matrix.rows(); ++u) {
    auto cols = matrix.RowCols(u);
    auto vals = matrix.RowValues(u);
    size_t kept = 0;
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != u && vals[k] > 0.0) {
        ++kept;
      }
    }
    graph.offsets_[u + 1] = graph.offsets_[u] + kept;
  }
  graph.edges_.resize(graph.offsets_.back());
  for (size_t u = 0; u < matrix.rows(); ++u) {
    auto cols = matrix.RowCols(u);
    auto vals = matrix.RowValues(u);
    size_t pos = graph.offsets_[u];
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != u && vals[k] > 0.0) {
        graph.edges_[pos++] = {cols[k], std::min(vals[k], 1.0)};
      }
    }
  }
  return graph;
}

TrustGraph TrustGraph::FromEdges(
    size_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  SparseMatrixBuilder builder(num_nodes, num_nodes, DuplicatePolicy::kLast);
  for (const auto& [source, target] : edges) {
    if (source != target) {
      builder.Add(source, target, 1.0);
    }
  }
  return FromMatrix(builder.Build());
}

std::span<const TrustEdgeRef> TrustGraph::OutEdges(size_t node) const {
  WOT_DCHECK(node < num_nodes());
  return {edges_.data() + offsets_[node],
          offsets_[node + 1] - offsets_[node]};
}

double TrustGraph::EdgeWeight(size_t u, size_t v) const {
  for (const auto& edge : OutEdges(u)) {
    if (edge.target == v) {
      return edge.weight;
    }
  }
  return 0.0;
}

TrustGraph TrustGraph::Reversed() const {
  TrustGraph out;
  out.offsets_.assign(num_nodes() + 1, 0);
  for (const auto& edge : edges_) {
    ++out.offsets_[edge.target + 1];
  }
  for (size_t n = 1; n <= num_nodes(); ++n) {
    out.offsets_[n] += out.offsets_[n - 1];
  }
  out.edges_.resize(edges_.size());
  std::vector<size_t> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (const auto& edge : OutEdges(u)) {
      out.edges_[cursor[edge.target]++] = {static_cast<uint32_t>(u),
                                           edge.weight};
    }
  }
  return out;
}

double TrustGraph::Density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2.0) {
    return 0.0;
  }
  return static_cast<double>(num_edges()) / (n * (n - 1.0));
}

}  // namespace wot
