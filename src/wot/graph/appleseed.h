// Appleseed-style spreading activation (Ziegler & Lausen, EEE 2004) — the
// paper's related-work reference [9]. Energy is injected at a source node
// and spread along trust edges: each activated node keeps a share of its
// incoming energy as trust and forwards the rest, split proportionally to
// outgoing edge weights. Iteration continues until the total movement
// falls below a tolerance.
#ifndef WOT_GRAPH_APPLESEED_H_
#define WOT_GRAPH_APPLESEED_H_

#include <vector>

#include "wot/graph/trust_graph.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Parameters of the spreading-activation run.
struct AppleseedOptions {
  /// Energy injected at the source.
  double injection = 200.0;
  /// Share of incoming energy forwarded to neighbours (the rest is kept
  /// as the node's trust score).
  double spreading_factor = 0.85;
  /// Stop when the largest per-node energy change falls below this.
  double tolerance = 1e-6;
  size_t max_iterations = 500;

  Status Validate() const;
};

/// \brief Result of one source's activation.
struct AppleseedResult {
  /// Accumulated trust (kept energy) per node; the source's own entry is
  /// 0 by convention (self-trust is not ranked).
  std::vector<double> trust;
  size_t iterations = 0;
  bool converged = false;

  /// \brief Nodes ranked by trust descending (ties by ascending id),
  /// excluding the source and zero-trust nodes.
  std::vector<uint32_t> Ranking() const;
};

/// \brief Runs spreading activation from \p source over \p graph.
Result<AppleseedResult> Appleseed(const TrustGraph& graph, size_t source,
                                  const AppleseedOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_APPLESEED_H_
