#include "wot/graph/mole_trust.h"

#include <vector>

#include "wot/graph/bfs.h"

namespace wot {

Result<MoleTrustResult> MoleTrust(const TrustGraph& graph, size_t source,
                                  const MoleTrustOptions& options) {
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("source out of range");
  }
  if (options.horizon == 0) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (options.trust_threshold < 0.0 || options.trust_threshold > 1.0) {
    return Status::InvalidArgument("trust_threshold must lie in [0, 1]");
  }

  std::vector<uint32_t> depth = BfsDistances(graph, source);

  MoleTrustResult result;
  result.trust.assign(graph.num_nodes(), -1.0);
  result.trust[source] = 1.0;
  result.num_reached = 1;

  // Accumulators per node; filled as we sweep depth levels outward.
  std::vector<double> numerator(graph.num_nodes(), 0.0);
  std::vector<double> denominator(graph.num_nodes(), 0.0);

  // Level-order sweep: nodes at depth d push trust to depth d+1.
  std::vector<std::vector<uint32_t>> levels(options.horizon);
  levels[0].push_back(static_cast<uint32_t>(source));
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    if (u != source && depth[u] != kUnreachable &&
        depth[u] < options.horizon) {
      levels[depth[u]].push_back(u);
    }
  }

  for (size_t d = 0; d < options.horizon; ++d) {
    // First finalize trust for all nodes at depth d (except the source).
    for (uint32_t u : levels[d]) {
      if (u == source) {
        continue;
      }
      if (denominator[u] > 0.0) {
        result.trust[u] = numerator[u] / denominator[u];
        ++result.num_reached;
      }
    }
    // Then propagate from accepted nodes at depth d to depth d+1.
    for (uint32_t u : levels[d]) {
      double t = result.trust[u];
      if (t < options.trust_threshold) {
        continue;  // below threshold (or undefined, t = -1): no say
      }
      for (const auto& edge : graph.OutEdges(u)) {
        if (depth[edge.target] == d + 1) {
          numerator[edge.target] += t * edge.weight;
          denominator[edge.target] += t;
        }
      }
    }
  }
  // Finalize the last level (depth == horizon) reached by the sweep above.
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    if (depth[u] == options.horizon && denominator[u] > 0.0) {
      result.trust[u] = numerator[u] / denominator[u];
      ++result.num_reached;
    }
  }
  return result;
}

}  // namespace wot
