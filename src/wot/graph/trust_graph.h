// A weighted directed trust graph in CSR form: node u trusts node v with
// weight w in (0, 1]. Built either from explicit trust statements (binary
// weights) or from a derived continuous trust matrix — the substrate for
// the propagation algorithms (TidalTrust, EigenTrust, MoleTrust).
#ifndef WOT_GRAPH_TRUST_GRAPH_H_
#define WOT_GRAPH_TRUST_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief One weighted edge target.
struct TrustEdgeRef {
  uint32_t target;
  double weight;
};

/// \brief Immutable directed graph with out-adjacency in CSR.
class TrustGraph {
 public:
  TrustGraph() = default;

  /// \brief Builds from a U x U sparse matrix; entries <= 0 and diagonal
  /// entries are dropped; weights are clamped to (0, 1].
  static TrustGraph FromMatrix(const SparseMatrix& matrix);

  /// \brief Builds from explicit (source, target) pairs with weight 1.
  static TrustGraph FromEdges(
      size_t num_nodes,
      const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  size_t num_edges() const { return edges_.size(); }

  std::span<const TrustEdgeRef> OutEdges(size_t node) const;
  size_t OutDegree(size_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  /// \brief Weight of edge (u, v); 0 if absent. O(out-degree of u).
  double EdgeWeight(size_t u, size_t v) const;

  /// \brief Transposed graph (in-edges become out-edges).
  TrustGraph Reversed() const;

  /// \brief Edge count / n(n-1).
  double Density() const;

 private:
  std::vector<size_t> offsets_;      // size num_nodes + 1
  std::vector<TrustEdgeRef> edges_;  // grouped by source
};

}  // namespace wot

#endif  // WOT_GRAPH_TRUST_GRAPH_H_
