// EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003): the global trust
// model from the paper's related work. Computes the principal left
// eigenvector of the row-normalized trust matrix by damped power iteration:
//
//   t_{k+1} = (1 - alpha) * C^T t_k + alpha * p
//
// where C is the row-stochastic trust matrix and p is the pre-trusted
// distribution (uniform by default). The result ranks every node by global
// reputation.
#ifndef WOT_GRAPH_EIGEN_TRUST_H_
#define WOT_GRAPH_EIGEN_TRUST_H_

#include <vector>

#include "wot/graph/trust_graph.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Options for EigenTrust.
struct EigenTrustOptions {
  /// Damping toward the pre-trusted distribution.
  double alpha = 0.15;
  /// L1 convergence tolerance between iterations.
  double tolerance = 1e-10;
  size_t max_iterations = 200;
  /// Pre-trusted nodes; empty means "all nodes equally pre-trusted".
  std::vector<uint32_t> pre_trusted;
};

/// \brief Per-run diagnostics.
struct EigenTrustResult {
  std::vector<double> trust;  // global trust per node; sums to 1
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Runs damped power iteration on \p graph. Dangling nodes (no out
/// edges) redistribute their mass to the pre-trusted distribution, as in
/// PageRank. Fails on an empty graph or invalid options.
Result<EigenTrustResult> EigenTrust(const TrustGraph& graph,
                                    const EigenTrustOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_EIGEN_TRUST_H_
