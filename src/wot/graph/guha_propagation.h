// Atomic trust-propagation operators from Guha, Kumar, Raghavan, Tomkins —
// "Propagation of Trust and Distrust" (WWW 2004), the related-work model
// the paper contrasts with ([5]). Given a (possibly derived) belief matrix
// B over users, one propagation step combines four atomic operators:
//
//   direct propagation   B        (i trusts j, j trusts k -> i may trust k
//                                  after another application)
//   co-citation          B^T B    (i and j trust the same people)
//   transpose trust      B^T      (being trusted back)
//   trust coupling       B B^T    (trusting the same people couples users)
//
//   C = a1*B + a2*(B^T B) + a3*B^T + a4*(B B^T)
//
// and beliefs after K steps accumulate with decay:
//
//   F = sum_{k=1..K} gamma^(k-1) * C^(k-1) * B
//
// Iterated sparse products densify; fill-in is bounded by keeping only the
// strongest max_row_entries per row after every product (standard in
// propagation implementations at scale).
#ifndef WOT_GRAPH_GUHA_PROPAGATION_H_
#define WOT_GRAPH_GUHA_PROPAGATION_H_

#include "wot/linalg/sparse_matrix.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Operator weights and iteration controls.
struct GuhaOptions {
  double direct_weight = 1.0;       // a1
  double cocitation_weight = 0.4;   // a2
  double transpose_weight = 0.1;    // a3
  double coupling_weight = 0.2;     // a4
  size_t steps = 3;                 // K
  double decay = 0.5;               // gamma
  /// Per-row fill-in cap applied after every product (0 = unlimited —
  /// only sensible for tiny matrices).
  size_t max_row_entries = 64;

  Status Validate() const;
};

/// \brief Result of a propagation run.
struct GuhaResult {
  /// Accumulated beliefs F, row-normalized to [0, 1] per row max.
  SparseMatrix beliefs;
  /// nnz of the combined operator C after truncation (diagnostics).
  size_t operator_nnz = 0;
};

/// \brief Runs the Guha propagation on belief matrix \p beliefs (square).
Result<GuhaResult> PropagateGuha(const SparseMatrix& beliefs,
                                 const GuhaOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_GUHA_PROPAGATION_H_
