#include "wot/graph/appleseed.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wot {

Status AppleseedOptions::Validate() const {
  if (injection <= 0.0) {
    return Status::InvalidArgument("injection must be positive");
  }
  if (spreading_factor <= 0.0 || spreading_factor >= 1.0) {
    return Status::InvalidArgument(
        "spreading_factor must lie in (0, 1) — at 1 no energy is ever "
        "kept, at 0 none is forwarded");
  }
  if (tolerance <= 0.0 || max_iterations == 0) {
    return Status::InvalidArgument("bad tolerance/max_iterations");
  }
  return Status::OK();
}

std::vector<uint32_t> AppleseedResult::Ranking() const {
  std::vector<uint32_t> nodes;
  for (uint32_t v = 0; v < trust.size(); ++v) {
    if (trust[v] > 0.0) {
      nodes.push_back(v);
    }
  }
  std::stable_sort(nodes.begin(), nodes.end(), [&](uint32_t a, uint32_t b) {
    return trust[a] > trust[b];
  });
  return nodes;
}

Result<AppleseedResult> Appleseed(const TrustGraph& graph, size_t source,
                                  const AppleseedOptions& options) {
  WOT_RETURN_IF_ERROR(options.Validate());
  if (source >= graph.num_nodes()) {
    return Status::InvalidArgument("source out of range");
  }

  const size_t n = graph.num_nodes();
  // Precompute out-weight sums for proportional splitting.
  std::vector<double> out_sum(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& edge : graph.OutEdges(u)) {
      out_sum[u] += edge.weight;
    }
  }

  AppleseedResult result;
  result.trust.assign(n, 0.0);
  std::vector<double> incoming(n, 0.0);
  std::vector<double> next(n, 0.0);
  incoming[source] = options.injection;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double moved = 0.0;
    for (size_t u = 0; u < n; ++u) {
      const double energy = incoming[u];
      if (energy <= 0.0) {
        continue;
      }
      // The source keeps nothing (its trust is not ranked) and forwards
      // everything; other nodes keep (1 - d) * energy.
      double forwarded = energy;
      if (u != source) {
        result.trust[u] += (1.0 - options.spreading_factor) * energy;
        forwarded = options.spreading_factor * energy;
      }
      if (out_sum[u] <= 0.0) {
        // Dangling node: energy returns to the source, keeping the total
        // conserved and favouring nodes near it (Appleseed's backlink
        // trick uses a virtual edge to the source).
        next[source] += forwarded;
        moved += forwarded;
        continue;
      }
      for (const auto& edge : graph.OutEdges(u)) {
        next[edge.target] += forwarded * (edge.weight / out_sum[u]);
      }
      moved += forwarded;
    }
    incoming.swap(next);
    result.iterations = iter + 1;
    // The energy still in flight shrinks by ~spreading_factor each round;
    // stop when its total is negligible.
    double in_flight =
        std::accumulate(incoming.begin(), incoming.end(), 0.0);
    if (in_flight < options.tolerance || moved <= 0.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace wot
