#include "wot/graph/tidal_trust.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "wot/graph/bfs.h"
#include "wot/util/check.h"

namespace wot {

Result<TidalTrustResult> TidalTrust(const TrustGraph& graph, size_t source,
                                    size_t sink,
                                    const TidalTrustOptions& options) {
  if (source >= graph.num_nodes() || sink >= graph.num_nodes()) {
    return Status::InvalidArgument("source/sink out of range");
  }
  if (source == sink) {
    return Status::InvalidArgument(
        "TidalTrust is undefined for source == sink");
  }

  // Forward wave: BFS depths from the source, pruned at the sink's depth.
  std::vector<uint32_t> depth(graph.num_nodes(), kUnreachable);
  // strength[u] = max over shortest paths source->u of the minimum edge
  // weight along the path ("widest shortest path").
  std::vector<double> strength(graph.num_nodes(), 0.0);
  std::deque<uint32_t> frontier;
  depth[source] = 0;
  strength[source] = 1.0;  // users fully trust themselves
  frontier.push_back(static_cast<uint32_t>(source));
  uint32_t sink_depth = kUnreachable;

  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    if (depth[u] >= sink_depth) {
      continue;  // nodes at or past the sink's level cannot extend paths
    }
    if (options.max_depth > 0 && depth[u] >= options.max_depth) {
      continue;
    }
    for (const auto& edge : graph.OutEdges(u)) {
      double via = std::min(strength[u], edge.weight);
      if (depth[edge.target] == kUnreachable) {
        depth[edge.target] = depth[u] + 1;
        strength[edge.target] = via;
        if (edge.target == sink) {
          sink_depth = depth[edge.target];
        } else {
          frontier.push_back(edge.target);
        }
      } else if (depth[edge.target] == depth[u] + 1) {
        // Another shortest path; keep the strongest.
        strength[edge.target] = std::max(strength[edge.target], via);
      }
    }
  }
  if (sink_depth == kUnreachable) {
    return Status::NotFound("no path from source to sink");
  }

  // Backward wave over shortest-path DAG levels, sink level first.
  // rating[u] = inferred trust of u in the sink.
  std::unordered_map<uint32_t, double> rating;
  rating.reserve(64);
  const double threshold = strength[sink];

  // Group nodes by depth (only those on shortest-path levels < sink_depth).
  std::vector<std::vector<uint32_t>> levels(sink_depth);
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    if (depth[u] != kUnreachable && depth[u] < sink_depth) {
      levels[depth[u]].push_back(u);
    }
  }
  for (size_t d = sink_depth; d-- > 0;) {
    for (uint32_t u : levels[d]) {
      double num = 0.0;
      double den = 0.0;
      for (const auto& edge : graph.OutEdges(u)) {
        if (edge.weight < threshold) {
          continue;  // only the strongest paths participate
        }
        if (edge.target == sink) {
          // Direct opinion dominates: rating(u) = w(u, sink).
          num = edge.weight;
          den = 1.0;
          break;
        }
        if (depth[edge.target] == depth[u] + 1) {
          auto it = rating.find(edge.target);
          if (it != rating.end()) {
            num += edge.weight * it->second;
            den += edge.weight;
          }
        }
      }
      if (den > 0.0) {
        rating[u] = num / den;
      }
    }
  }

  auto it = rating.find(static_cast<uint32_t>(source));
  if (it == rating.end()) {
    return Status::NotFound(
        "no shortest path survives the strength threshold");
  }
  TidalTrustResult result;
  result.trust = it->second;
  result.path_length = sink_depth;
  result.threshold = threshold;
  return result;
}

}  // namespace wot
