#include "wot/graph/eigen_trust.h"

#include <cmath>

#include "wot/linalg/vector_ops.h"

namespace wot {

Result<EigenTrustResult> EigenTrust(const TrustGraph& graph,
                                    const EigenTrustOptions& options) {
  const size_t n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("EigenTrust on an empty graph");
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must lie in [0, 1]");
  }
  if (options.tolerance <= 0.0 || options.max_iterations == 0) {
    return Status::InvalidArgument("bad tolerance/max_iterations");
  }

  // Pre-trusted distribution p.
  std::vector<double> pre(n, 0.0);
  if (options.pre_trusted.empty()) {
    for (auto& v : pre) {
      v = 1.0 / static_cast<double>(n);
    }
  } else {
    for (uint32_t node : options.pre_trusted) {
      if (node >= n) {
        return Status::InvalidArgument("pre-trusted node out of range");
      }
      pre[node] = 1.0;
    }
    NormalizeL1(&pre);
  }

  // Row sums for on-the-fly normalization (C is conceptually row
  // stochastic; we avoid materializing it).
  std::vector<double> row_sum(n, 0.0);
  for (size_t u = 0; u < n; ++u) {
    for (const auto& edge : graph.OutEdges(u)) {
      row_sum[u] += edge.weight;
    }
  }

  EigenTrustResult result;
  result.trust = pre;  // start from the pre-trusted distribution
  std::vector<double> next(n, 0.0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t u = 0; u < n; ++u) {
      const double mass = result.trust[u];
      if (mass == 0.0) {
        continue;
      }
      if (row_sum[u] <= 0.0) {
        dangling_mass += mass;
        continue;
      }
      for (const auto& edge : graph.OutEdges(u)) {
        next[edge.target] += mass * (edge.weight / row_sum[u]);
      }
    }
    for (size_t v = 0; v < n; ++v) {
      next[v] = (1.0 - options.alpha) * (next[v] + dangling_mass * pre[v]) +
                options.alpha * pre[v];
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) {
      delta += std::fabs(next[v] - result.trust[v]);
    }
    result.trust.swap(next);
    result.iterations = iter + 1;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace wot
