// Breadth-first traversal utilities over TrustGraph.
#ifndef WOT_GRAPH_BFS_H_
#define WOT_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "wot/graph/trust_graph.h"

namespace wot {

/// \brief Marker for "unreachable" in distance vectors.
inline constexpr uint32_t kUnreachable = UINT32_MAX;

/// \brief Single-source BFS distances (hops); kUnreachable where no path
/// exists. O(V + E).
std::vector<uint32_t> BfsDistances(const TrustGraph& graph, size_t source);

/// \brief Length of the shortest path from source to sink in hops, or
/// kUnreachable. Early-exits once the sink is popped.
uint32_t ShortestPathLength(const TrustGraph& graph, size_t source,
                            size_t sink);

/// \brief Number of nodes reachable from \p source (including itself).
size_t CountReachable(const TrustGraph& graph, size_t source);

}  // namespace wot

#endif  // WOT_GRAPH_BFS_H_
