// The paper's stated future work: "propagate our derived web of trust and
// compare the propagation results between our web of trust and a web of
// trust constructed with users' explicit trust rating."
//
// ComparePropagation samples source/sink pairs, runs TidalTrust over both
// webs, and reports coverage (how often each web can produce a prediction
// at all) and agreement (error statistics between the two predictions on
// pairs both webs cover).
#ifndef WOT_GRAPH_PROPAGATION_EVAL_H_
#define WOT_GRAPH_PROPAGATION_EVAL_H_

#include <string>

#include "wot/graph/tidal_trust.h"
#include "wot/graph/trust_graph.h"
#include "wot/util/histogram.h"
#include "wot/util/result.h"
#include "wot/util/rng.h"

namespace wot {

/// \brief Options for the comparison experiment.
struct PropagationEvalOptions {
  size_t num_pairs = 2000;  // sampled (source, sink) pairs
  uint64_t seed = 7;
  TidalTrustOptions tidal;  // propagation parameters for both webs
};

/// \brief Outcome of comparing propagation over two webs of trust.
struct PropagationComparison {
  size_t pairs_sampled = 0;
  size_t covered_by_a = 0;     // pairs where web A yields a prediction
  size_t covered_by_b = 0;     // pairs where web B yields a prediction
  size_t covered_by_both = 0;
  RunningStats prediction_a;   // predictions of web A (covered pairs)
  RunningStats prediction_b;
  RunningStats abs_difference; // |a - b| on pairs covered by both

  double CoverageA() const;
  double CoverageB() const;
  std::string ToString(const std::string& name_a,
                       const std::string& name_b) const;
};

/// \brief Runs the comparison between webs \p a and \p b (same node count).
Result<PropagationComparison> ComparePropagation(
    const TrustGraph& a, const TrustGraph& b,
    const PropagationEvalOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_PROPAGATION_EVAL_H_
