#include "wot/graph/guha_propagation.h"

#include <algorithm>

#include "wot/linalg/sparse_ops.h"

namespace wot {

Status GuhaOptions::Validate() const {
  if (direct_weight < 0.0 || cocitation_weight < 0.0 ||
      transpose_weight < 0.0 || coupling_weight < 0.0) {
    return Status::InvalidArgument("operator weights must be >= 0");
  }
  if (direct_weight + cocitation_weight + transpose_weight +
          coupling_weight <=
      0.0) {
    return Status::InvalidArgument("at least one operator weight must be "
                                   "positive");
  }
  if (steps == 0) {
    return Status::InvalidArgument("steps must be >= 1");
  }
  if (decay <= 0.0 || decay > 1.0) {
    return Status::InvalidArgument("decay must lie in (0, 1]");
  }
  return Status::OK();
}

Result<GuhaResult> PropagateGuha(const SparseMatrix& beliefs,
                                 const GuhaOptions& options) {
  WOT_RETURN_IF_ERROR(options.Validate());
  if (beliefs.rows() != beliefs.cols()) {
    return Status::InvalidArgument("belief matrix must be square");
  }

  auto cap = [&](SparseMatrix m) {
    if (options.max_row_entries > 0) {
      return KeepTopKPerRow(m, options.max_row_entries);
    }
    return m;
  };

  // Build the combined operator C, starting from an all-zero matrix of
  // the right shape.
  SparseMatrix transposed = beliefs.Transposed();
  SparseMatrix combined =
      SparseMatrixBuilder(beliefs.rows(), beliefs.cols()).Build();
  if (options.direct_weight > 0.0) {
    combined = Add(combined, 1.0, beliefs, options.direct_weight);
  }
  if (options.transpose_weight > 0.0) {
    combined = Add(combined, 1.0, transposed, options.transpose_weight);
  }
  if (options.cocitation_weight > 0.0) {
    combined = Add(combined, 1.0, cap(SpGemm(transposed, beliefs)),
                   options.cocitation_weight);
  }
  if (options.coupling_weight > 0.0) {
    combined = Add(combined, 1.0, cap(SpGemm(beliefs, transposed)),
                   options.coupling_weight);
  }
  combined = cap(NormalizeRowsL1(combined));

  GuhaResult result;
  result.operator_nnz = combined.nnz();

  // F = sum_{k=1..K} gamma^(k-1) * C^k (Guha et al.): powers of the
  // combined operator, not C^(k-1)*B — the cross terms like B*(B^T B)
  // only appear when C multiplies itself.
  SparseMatrix term = combined;  // C^1
  SparseMatrix accumulated = combined;
  double weight = 1.0;
  for (size_t k = 2; k <= options.steps; ++k) {
    term = cap(SpGemm(term, combined));
    weight *= options.decay;
    accumulated = Add(accumulated, 1.0, term, weight);
  }
  accumulated = cap(accumulated);

  // Normalize rows by their max so beliefs land back in [0, 1]; the
  // diagonal (self-trust) is dropped.
  SparseMatrixBuilder out(accumulated.rows(), accumulated.cols(),
                          DuplicatePolicy::kLast);
  for (size_t i = 0; i < accumulated.rows(); ++i) {
    auto cols = accumulated.RowCols(i);
    auto vals = accumulated.RowValues(i);
    double peak = 0.0;
    for (size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] != i) {
        peak = std::max(peak, vals[t]);
      }
    }
    if (peak <= 0.0) {
      continue;
    }
    for (size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] != i && vals[t] > 0.0) {
        out.Add(i, cols[t], vals[t] / peak);
      }
    }
  }
  result.beliefs = out.Build();
  return result;
}

}  // namespace wot
