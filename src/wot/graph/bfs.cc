#include "wot/graph/bfs.h"

#include <deque>

#include "wot/util/check.h"

namespace wot {

std::vector<uint32_t> BfsDistances(const TrustGraph& graph, size_t source) {
  WOT_CHECK_LT(source, graph.num_nodes());
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<uint32_t> frontier;
  dist[source] = 0;
  frontier.push_back(static_cast<uint32_t>(source));
  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    for (const auto& edge : graph.OutEdges(u)) {
      if (dist[edge.target] == kUnreachable) {
        dist[edge.target] = dist[u] + 1;
        frontier.push_back(edge.target);
      }
    }
  }
  return dist;
}

uint32_t ShortestPathLength(const TrustGraph& graph, size_t source,
                            size_t sink) {
  WOT_CHECK_LT(source, graph.num_nodes());
  WOT_CHECK_LT(sink, graph.num_nodes());
  if (source == sink) {
    return 0;
  }
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<uint32_t> frontier;
  dist[source] = 0;
  frontier.push_back(static_cast<uint32_t>(source));
  while (!frontier.empty()) {
    uint32_t u = frontier.front();
    frontier.pop_front();
    for (const auto& edge : graph.OutEdges(u)) {
      if (dist[edge.target] == kUnreachable) {
        dist[edge.target] = dist[u] + 1;
        if (edge.target == sink) {
          return dist[edge.target];
        }
        frontier.push_back(edge.target);
      }
    }
  }
  return kUnreachable;
}

size_t CountReachable(const TrustGraph& graph, size_t source) {
  auto dist = BfsDistances(graph, source);
  size_t count = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) {
      ++count;
    }
  }
  return count;
}

}  // namespace wot
