// MoleTrust (Massa & Avesani): single-source local trust propagation over
// a bounded horizon. Nodes are visited in BFS-distance order; a node's
// predicted trust is the trust-weighted average of its accepted
// predecessors' trust:
//
//   trust(v) = sum_{u in pred(v), trust(u) >= threshold}
//                trust(u) * w(u, v) / sum trust(u)
//
// Only edges from strictly smaller depth to larger depth propagate (the
// walk never flows backwards), which makes the computation a single pass.
#ifndef WOT_GRAPH_MOLE_TRUST_H_
#define WOT_GRAPH_MOLE_TRUST_H_

#include <vector>

#include "wot/graph/trust_graph.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Options for MoleTrust.
struct MoleTrustOptions {
  /// Maximum propagation distance from the source (hops).
  size_t horizon = 3;
  /// Predecessors below this trust do not propagate.
  double trust_threshold = 0.6;
};

/// \brief Per-source result.
struct MoleTrustResult {
  /// Predicted trust per node; -1 where undefined (unreached / beyond the
  /// horizon / no accepted predecessor).
  std::vector<double> trust;
  size_t num_reached = 0;  // nodes with a defined prediction
};

/// \brief Propagates trust from \p source. The source's own entry is 1.
Result<MoleTrustResult> MoleTrust(const TrustGraph& graph, size_t source,
                                  const MoleTrustOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_MOLE_TRUST_H_
