// TidalTrust (Golbeck 2005), the local trust-inference baseline the paper's
// related work discusses: infer source->sink trust by a weighted average of
// neighbours' trust in the sink, restricted to shortest paths and, within
// those, to the strongest paths.
//
// Algorithm: a forward BFS wave finds the shortest source->sink depth and
// the "max" threshold (the largest t such that a shortest path exists whose
// edges all have weight >= t); a backward wave then computes
//   rating(u) = sum_{v: child on shortest path, w(u,v) >= max}
//                 w(u,v) * rating(v) / sum w(u,v)
// with rating(u) = w(u, sink) for direct predecessors of the sink.
#ifndef WOT_GRAPH_TIDAL_TRUST_H_
#define WOT_GRAPH_TIDAL_TRUST_H_

#include "wot/graph/trust_graph.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Options for TidalTrust.
struct TidalTrustOptions {
  /// Give up when the sink is farther than this many hops (0 = unlimited).
  size_t max_depth = 0;
};

/// \brief Diagnostic info for one inference.
struct TidalTrustResult {
  double trust = 0.0;     // inferred source->sink trust in [0, 1]
  size_t path_length = 0; // shortest path length used
  double threshold = 0.0; // the "max" path-strength threshold
};

/// \brief Infers source->sink trust. Returns NotFound when no path exists
/// (or exceeds max_depth), InvalidArgument when source == sink.
Result<TidalTrustResult> TidalTrust(const TrustGraph& graph, size_t source,
                                    size_t sink,
                                    const TidalTrustOptions& options = {});

}  // namespace wot

#endif  // WOT_GRAPH_TIDAL_TRUST_H_
