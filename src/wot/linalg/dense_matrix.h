// Row-major dense matrix of doubles. Backs the Users×Category expertise and
// affiliation matrices (tall-skinny: U rows, C ~ a dozen columns) and, at
// small scale, the derived trust matrix.
#ifndef WOT_LINALG_DENSE_MATRIX_H_
#define WOT_LINALG_DENSE_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "wot/util/check.h"

namespace wot {

/// \brief A dense row-major matrix.
class DenseMatrix {
 public:
  /// Creates an empty 0x0 matrix.
  DenseMatrix() = default;

  /// Creates a rows×cols matrix initialized with \p fill.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  /// Creates from nested initializer data (row vectors); all rows must have
  /// equal length. Intended for tests.
  static DenseMatrix FromRows(
      const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    WOT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    WOT_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// \brief Contiguous view of one row.
  std::span<double> Row(size_t r) {
    WOT_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(size_t r) const {
    WOT_DCHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// \brief Sum of one row's entries.
  double RowSum(size_t r) const;

  /// \brief Maximum entry of one row (0 for an empty row span).
  double RowMax(size_t r) const;

  /// \brief Transposed copy.
  DenseMatrix Transposed() const;

  /// \brief this × other. Requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// \brief Sets every entry to \p value.
  void Fill(double value);

  /// \brief True iff all entries lie within [lo, hi].
  bool AllInRange(double lo, double hi) const;

  /// \brief Max |a-b| over entries; matrices must be the same shape.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

  /// \brief Count of entries strictly greater than \p threshold.
  size_t CountGreaterThan(double threshold) const;

  /// \brief Human-readable rendering (tests and debugging; small matrices).
  std::string ToString(int precision = 3) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace wot

#endif  // WOT_LINALG_DENSE_MATRIX_H_
