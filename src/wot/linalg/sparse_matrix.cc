#include "wot/linalg/sparse_matrix.h"

#include <algorithm>

namespace wot {

double SparseMatrix::At(size_t r, size_t c) const {
  auto cols = RowCols(r);
  auto it = std::lower_bound(cols.begin(), cols.end(),
                             static_cast<uint32_t>(c));
  if (it == cols.end() || *it != c) {
    return 0.0;
  }
  return RowValues(r)[static_cast<size_t>(it - cols.begin())];
}

bool SparseMatrix::Contains(size_t r, size_t c) const {
  auto cols = RowCols(r);
  return std::binary_search(cols.begin(), cols.end(),
                            static_cast<uint32_t>(c));
}

double SparseMatrix::Density() const {
  if (rows() == 0 || cols() == 0) {
    return 0.0;
  }
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows()) * static_cast<double>(cols()));
}

SparseMatrix SparseMatrix::Transposed() const {
  SparseMatrix out;
  out.cols_ = rows();
  out.row_offsets_.assign(cols_ + 1, 0);
  // Counting pass.
  for (uint32_t c : col_indices_) {
    ++out.row_offsets_[c + 1];
  }
  for (size_t i = 1; i < out.row_offsets_.size(); ++i) {
    out.row_offsets_[i] += out.row_offsets_[i - 1];
  }
  out.col_indices_.resize(nnz());
  out.values_.resize(nnz());
  std::vector<size_t> cursor(out.row_offsets_.begin(),
                             out.row_offsets_.end() - 1);
  for (size_t r = 0; r < rows(); ++r) {
    auto cols = RowCols(r);
    auto vals = RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      size_t pos = cursor[cols[k]]++;
      out.col_indices_[pos] = static_cast<uint32_t>(r);
      out.values_[pos] = vals[k];
    }
  }
  return out;
}

bool SparseMatrix::operator==(const SparseMatrix& other) const {
  return cols_ == other.cols_ && row_offsets_ == other.row_offsets_ &&
         col_indices_ == other.col_indices_ && values_ == other.values_;
}

SparseMatrixBuilder::SparseMatrixBuilder(size_t rows, size_t cols,
                                         DuplicatePolicy policy)
    : rows_(rows), cols_(cols), policy_(policy) {
  WOT_CHECK_LE(rows, static_cast<size_t>(UINT32_MAX));
  WOT_CHECK_LE(cols, static_cast<size_t>(UINT32_MAX));
}

void SparseMatrixBuilder::Add(size_t row, size_t col, double value) {
  WOT_CHECK_LT(row, rows_);
  WOT_CHECK_LT(col, cols_);
  triplets_.push_back({static_cast<uint32_t>(row),
                       static_cast<uint32_t>(col), next_seq_++, value});
}

SparseMatrix SparseMatrixBuilder::Build() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              if (a.col != b.col) return a.col < b.col;
              return a.seq < b.seq;
            });

  SparseMatrix out;
  out.cols_ = cols_;
  out.row_offsets_.assign(rows_ + 1, 0);
  out.col_indices_.reserve(triplets_.size());
  out.values_.reserve(triplets_.size());

  size_t i = 0;
  while (i < triplets_.size()) {
    size_t j = i;
    double combined = triplets_[i].value;
    while (j + 1 < triplets_.size() &&
           triplets_[j + 1].row == triplets_[i].row &&
           triplets_[j + 1].col == triplets_[i].col) {
      ++j;
      switch (policy_) {
        case DuplicatePolicy::kSum:
          combined += triplets_[j].value;
          break;
        case DuplicatePolicy::kLast:
          combined = triplets_[j].value;
          break;
        case DuplicatePolicy::kMax:
          combined = std::max(combined, triplets_[j].value);
          break;
      }
    }
    out.col_indices_.push_back(triplets_[i].col);
    out.values_.push_back(combined);
    ++out.row_offsets_[triplets_[i].row + 1];
    i = j + 1;
  }
  for (size_t r = 1; r < out.row_offsets_.size(); ++r) {
    out.row_offsets_[r] += out.row_offsets_[r - 1];
  }
  triplets_.clear();
  next_seq_ = 0;
  return out;
}

}  // namespace wot
