#include "wot/linalg/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "wot/util/check.h"

namespace wot {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  WOT_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double L1Norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) {
    acc += std::fabs(x);
  }
  return acc;
}

double L2Norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) {
    acc += x * x;
  }
  return std::sqrt(acc);
}

double MaxAbsDiff(const std::vector<double>& a,
                  const std::vector<double>& b) {
  WOT_CHECK_EQ(a.size(), b.size());
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

double NormalizeL1(std::vector<double>* v) {
  double norm = L1Norm(*v);
  if (norm > 0.0) {
    for (double& x : *v) {
      x /= norm;
    }
  }
  return norm;
}

size_t ArgMax(const std::vector<double>& v) {
  if (v.empty()) {
    return 0;
  }
  return static_cast<size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::vector<size_t> SortIndicesDescending(const std::vector<double>& v) {
  std::vector<size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return v[a] > v[b]; });
  return idx;
}

double KthLargest(std::vector<double> v, size_t k) {
  WOT_CHECK_GT(v.size(), 0u);
  k = std::clamp<size_t>(k, 1, v.size());
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(k - 1),
                   v.end(), std::greater<double>());
  return v[k - 1];
}

}  // namespace wot
