// CSR (compressed sparse row) matrix and its COO builder. Backs the direct
// connection matrix R, the explicit trust matrix T, binarized predictions,
// and the pair-restricted derived trust matrix at Epinions scale, where a
// dense U×U array would not fit.
#ifndef WOT_LINALG_SPARSE_MATRIX_H_
#define WOT_LINALG_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "wot/util/check.h"

namespace wot {

/// \brief Immutable CSR matrix of doubles. Column indices within each row
/// are strictly increasing; duplicate (row, col) entries are combined at
/// build time.
class SparseMatrix {
 public:
  /// An (index, value) pair within a row.
  struct Entry {
    uint32_t col;
    double value;
  };

  SparseMatrix() = default;

  size_t rows() const { return row_offsets_.empty() ? 0
                                                    : row_offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_indices_.size(); }

  /// \brief Number of stored entries in row \p r.
  size_t RowNnz(size_t r) const {
    WOT_DCHECK(r < rows());
    return row_offsets_[r + 1] - row_offsets_[r];
  }

  /// \brief Column indices of row \p r (sorted ascending).
  std::span<const uint32_t> RowCols(size_t r) const {
    WOT_DCHECK(r < rows());
    return {col_indices_.data() + row_offsets_[r], RowNnz(r)};
  }

  /// \brief Values of row \p r, parallel to RowCols().
  std::span<const double> RowValues(size_t r) const {
    WOT_DCHECK(r < rows());
    return {values_.data() + row_offsets_[r], RowNnz(r)};
  }

  /// \brief Value at (r, c); 0.0 if not stored. O(log nnz(row)).
  double At(size_t r, size_t c) const;

  /// \brief True iff (r, c) is stored (even with value 0).
  bool Contains(size_t r, size_t c) const;

  /// \brief Fraction of stored entries: nnz / (rows*cols); 0 for empty.
  double Density() const;

  /// \brief Transposed copy (O(nnz)).
  SparseMatrix Transposed() const;

  /// \brief Structural equality (same shape, pattern, and values).
  bool operator==(const SparseMatrix& other) const;

  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  friend class SparseMatrixBuilder;

  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;   // size rows+1
  std::vector<uint32_t> col_indices_; // size nnz
  std::vector<double> values_;        // size nnz
};

/// \brief How duplicate (row, col) insertions combine at Build() time.
enum class DuplicatePolicy {
  kSum,   ///< values are added
  kLast,  ///< the last inserted value wins
  kMax,   ///< the maximum value wins
};

/// \brief Accumulates COO triplets and finalizes into CSR.
class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(size_t rows, size_t cols,
                      DuplicatePolicy policy = DuplicatePolicy::kSum);

  /// \brief Queues one entry. Indices must be within the declared shape.
  void Add(size_t row, size_t col, double value);

  size_t queued() const { return triplets_.size(); }

  /// \brief Sorts, combines duplicates, and produces the CSR matrix.
  /// The builder is left empty and may be reused.
  SparseMatrix Build();

 private:
  struct Triplet {
    uint32_t row;
    uint32_t col;
    uint64_t seq;  // insertion order, for kLast
    double value;
  };

  size_t rows_;
  size_t cols_;
  DuplicatePolicy policy_;
  uint64_t next_seq_ = 0;
  std::vector<Triplet> triplets_;
};

}  // namespace wot

#endif  // WOT_LINALG_SPARSE_MATRIX_H_
