// Free functions on std::vector<double> used by the propagation algorithms
// (EigenTrust power iteration) and evaluation code.
#ifndef WOT_LINALG_VECTOR_OPS_H_
#define WOT_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace wot {

double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Sum of |v_i|.
double L1Norm(const std::vector<double>& v);

double L2Norm(const std::vector<double>& v);

/// \brief max_i |a_i - b_i|; sizes must match.
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Scales v in place so that its L1 norm is 1; no-op on a zero
/// vector. Returns the original norm.
double NormalizeL1(std::vector<double>* v);

/// \brief Index of the maximum element; 0 for an empty vector.
size_t ArgMax(const std::vector<double>& v);

/// \brief Indices [0, v.size()) sorted by value descending (ties broken by
/// ascending index, so ordering is deterministic).
std::vector<size_t> SortIndicesDescending(const std::vector<double>& v);

/// \brief The k-th largest value (k is 1-based; k=1 is the max). Clamps
/// k into range. Precondition: v non-empty.
double KthLargest(std::vector<double> v, size_t k);

}  // namespace wot

#endif  // WOT_LINALG_VECTOR_OPS_H_
