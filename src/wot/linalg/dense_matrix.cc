#include "wot/linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "wot/util/string_util.h"

namespace wot {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return DenseMatrix();
  }
  DenseMatrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    WOT_CHECK_EQ(rows[r].size(), m.cols());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      m.At(r, c) = rows[r][c];
    }
  }
  return m;
}

double DenseMatrix::RowSum(size_t r) const {
  double sum = 0.0;
  for (double v : Row(r)) {
    sum += v;
  }
  return sum;
}

double DenseMatrix::RowMax(size_t r) const {
  double best = 0.0;
  bool first = true;
  for (double v : Row(r)) {
    if (first || v > best) {
      best = v;
      first = false;
    }
  }
  return first ? 0.0 : best;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  WOT_CHECK_EQ(cols_, other.rows());
  DenseMatrix out(rows_, other.cols());
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = At(i, k);
      if (aik == 0.0) continue;
      const auto brow = other.Row(k);
      auto orow = out.Row(i);
      for (size_t j = 0; j < other.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool DenseMatrix::AllInRange(double lo, double hi) const {
  for (double v : data_) {
    if (!(v >= lo && v <= hi)) {
      return false;
    }
  }
  return true;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  WOT_CHECK_EQ(a.rows(), b.rows());
  WOT_CHECK_EQ(a.cols(), b.cols());
  double best = 0.0;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    best = std::max(best, std::fabs(a.data_[i] - b.data_[i]));
  }
  return best;
}

size_t DenseMatrix::CountGreaterThan(double threshold) const {
  size_t count = 0;
  for (double v : data_) {
    if (v > threshold) {
      ++count;
    }
  }
  return count;
}

std::string DenseMatrix::ToString(int precision) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << FormatDouble(At(r, c), precision);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace wot
