// Set-algebra and product operations over sparse matrices. The Table-4 and
// Fig-3 evaluations are phrased entirely in terms of these (T ∩ R, R − T,
// counts of joint patterns).
#ifndef WOT_LINALG_SPARSE_OPS_H_
#define WOT_LINALG_SPARSE_OPS_H_

#include <cstdint>
#include <functional>

#include "wot/linalg/dense_matrix.h"
#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief Entries present in both a and b (pattern intersection); resulting
/// values are taken from \p a. Shapes must match.
SparseMatrix PatternIntersect(const SparseMatrix& a, const SparseMatrix& b);

/// \brief Entries present in a but not in b (pattern difference). Values
/// from \p a. Shapes must match.
SparseMatrix PatternSubtract(const SparseMatrix& a, const SparseMatrix& b);

/// \brief Entries present in either (pattern union); where both are present
/// the value from \p a wins. Shapes must match.
SparseMatrix PatternUnion(const SparseMatrix& a, const SparseMatrix& b);

/// \brief Number of coordinates stored in both a and b.
size_t CountPatternIntersect(const SparseMatrix& a, const SparseMatrix& b);

/// \brief Sparse × dense: out = a (r×k, sparse) times b (k×c, dense).
DenseMatrix SpMM(const SparseMatrix& a, const DenseMatrix& b);

/// \brief Sparse × sparse (Gustavson row-wise): out = a·b. Entries that
/// cancel to exactly 0 are kept (pattern is the structural product).
SparseMatrix SpGemm(const SparseMatrix& a, const SparseMatrix& b);

/// \brief Keeps only the k largest-valued entries of each row (ties broken
/// by ascending column); used to bound fill-in in iterated products.
SparseMatrix KeepTopKPerRow(const SparseMatrix& m, size_t k);

/// \brief out = alpha·a + beta·b (entry-wise over the pattern union).
SparseMatrix Add(const SparseMatrix& a, double alpha, const SparseMatrix& b,
                 double beta);

/// \brief Scales every stored row to unit L1 norm (rows of all zeros are
/// left untouched). Returns the normalized copy.
SparseMatrix NormalizeRowsL1(const SparseMatrix& m);

/// \brief Sparse matrix-vector product y = a·x.
std::vector<double> SpMV(const SparseMatrix& a,
                         const std::vector<double>& x);

/// \brief Calls fn(row, col, value) for every stored entry, row-major order.
void ForEachEntry(const SparseMatrix& m,
                  const std::function<void(size_t, uint32_t, double)>& fn);

/// \brief Dense snapshot (tests / tiny matrices only).
DenseMatrix ToDense(const SparseMatrix& m);

/// \brief Builds a sparse matrix from the entries of \p m strictly greater
/// than \p threshold.
SparseMatrix FromDense(const DenseMatrix& m, double threshold = 0.0);

}  // namespace wot

#endif  // WOT_LINALG_SPARSE_OPS_H_
