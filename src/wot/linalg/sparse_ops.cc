#include "wot/linalg/sparse_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace wot {

namespace {

enum class SetOp { kIntersect, kSubtract, kUnion };

SparseMatrix PatternSetOp(const SparseMatrix& a, const SparseMatrix& b,
                          SetOp op) {
  WOT_CHECK_EQ(a.rows(), b.rows());
  WOT_CHECK_EQ(a.cols(), b.cols());
  SparseMatrixBuilder builder(a.rows(), a.cols(), DuplicatePolicy::kLast);
  for (size_t r = 0; r < a.rows(); ++r) {
    auto acols = a.RowCols(r);
    auto avals = a.RowValues(r);
    auto bcols = b.RowCols(r);
    auto bvals = b.RowValues(r);
    size_t i = 0;
    size_t j = 0;
    while (i < acols.size() || j < bcols.size()) {
      if (j >= bcols.size() || (i < acols.size() && acols[i] < bcols[j])) {
        // Only in a.
        if (op == SetOp::kSubtract || op == SetOp::kUnion) {
          builder.Add(r, acols[i], avals[i]);
        }
        ++i;
      } else if (i >= acols.size() || bcols[j] < acols[i]) {
        // Only in b.
        if (op == SetOp::kUnion) {
          builder.Add(r, bcols[j], bvals[j]);
        }
        ++j;
      } else {
        // In both; a's value wins.
        if (op == SetOp::kIntersect || op == SetOp::kUnion) {
          builder.Add(r, acols[i], avals[i]);
        }
        ++i;
        ++j;
      }
    }
  }
  return builder.Build();
}

}  // namespace

SparseMatrix PatternIntersect(const SparseMatrix& a, const SparseMatrix& b) {
  return PatternSetOp(a, b, SetOp::kIntersect);
}

SparseMatrix PatternSubtract(const SparseMatrix& a, const SparseMatrix& b) {
  return PatternSetOp(a, b, SetOp::kSubtract);
}

SparseMatrix PatternUnion(const SparseMatrix& a, const SparseMatrix& b) {
  return PatternSetOp(a, b, SetOp::kUnion);
}

size_t CountPatternIntersect(const SparseMatrix& a, const SparseMatrix& b) {
  WOT_CHECK_EQ(a.rows(), b.rows());
  WOT_CHECK_EQ(a.cols(), b.cols());
  size_t count = 0;
  for (size_t r = 0; r < a.rows(); ++r) {
    auto acols = a.RowCols(r);
    auto bcols = b.RowCols(r);
    size_t i = 0;
    size_t j = 0;
    while (i < acols.size() && j < bcols.size()) {
      if (acols[i] < bcols[j]) {
        ++i;
      } else if (bcols[j] < acols[i]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
  }
  return count;
}

SparseMatrix SpGemm(const SparseMatrix& a, const SparseMatrix& b) {
  WOT_CHECK_EQ(a.cols(), b.rows());
  SparseMatrixBuilder builder(a.rows(), b.cols(), DuplicatePolicy::kLast);
  // Gustavson: accumulate each output row in a dense scratch vector with
  // an occupancy list, so the cost is O(flops), not O(rows * cols).
  std::vector<double> scratch(b.cols(), 0.0);
  std::vector<uint32_t> occupied;
  std::vector<bool> seen(b.cols(), false);
  for (size_t i = 0; i < a.rows(); ++i) {
    occupied.clear();
    auto acols = a.RowCols(i);
    auto avals = a.RowValues(i);
    for (size_t k = 0; k < acols.size(); ++k) {
      const double aik = avals[k];
      auto bcols = b.RowCols(acols[k]);
      auto bvals = b.RowValues(acols[k]);
      for (size_t t = 0; t < bcols.size(); ++t) {
        uint32_t j = bcols[t];
        if (!seen[j]) {
          seen[j] = true;
          occupied.push_back(j);
          scratch[j] = 0.0;
        }
        scratch[j] += aik * bvals[t];
      }
    }
    for (uint32_t j : occupied) {
      builder.Add(i, j, scratch[j]);
      seen[j] = false;
    }
  }
  return builder.Build();
}

SparseMatrix KeepTopKPerRow(const SparseMatrix& m, size_t k) {
  SparseMatrixBuilder builder(m.rows(), m.cols(), DuplicatePolicy::kLast);
  std::vector<std::pair<double, uint32_t>> row;
  for (size_t i = 0; i < m.rows(); ++i) {
    auto cols = m.RowCols(i);
    auto vals = m.RowValues(i);
    if (cols.size() <= k) {
      for (size_t t = 0; t < cols.size(); ++t) {
        builder.Add(i, cols[t], vals[t]);
      }
      continue;
    }
    row.clear();
    for (size_t t = 0; t < cols.size(); ++t) {
      row.emplace_back(vals[t], cols[t]);
    }
    std::nth_element(row.begin(), row.begin() + static_cast<ptrdiff_t>(k - 1),
                     row.end(),
                     [](const auto& x, const auto& y) {
                       if (x.first != y.first) return x.first > y.first;
                       return x.second < y.second;
                     });
    for (size_t t = 0; t < k; ++t) {
      builder.Add(i, row[t].second, row[t].first);
    }
  }
  return builder.Build();
}

SparseMatrix Add(const SparseMatrix& a, double alpha, const SparseMatrix& b,
                 double beta) {
  WOT_CHECK_EQ(a.rows(), b.rows());
  WOT_CHECK_EQ(a.cols(), b.cols());
  SparseMatrixBuilder builder(a.rows(), a.cols(), DuplicatePolicy::kSum);
  ForEachEntry(a, [&](size_t r, uint32_t c, double v) {
    builder.Add(r, c, alpha * v);
  });
  ForEachEntry(b, [&](size_t r, uint32_t c, double v) {
    builder.Add(r, c, beta * v);
  });
  return builder.Build();
}

SparseMatrix NormalizeRowsL1(const SparseMatrix& m) {
  SparseMatrixBuilder builder(m.rows(), m.cols(), DuplicatePolicy::kLast);
  for (size_t i = 0; i < m.rows(); ++i) {
    auto cols = m.RowCols(i);
    auto vals = m.RowValues(i);
    double norm = 0.0;
    for (double v : vals) {
      norm += std::fabs(v);
    }
    if (norm <= 0.0) {
      for (size_t t = 0; t < cols.size(); ++t) {
        builder.Add(i, cols[t], vals[t]);
      }
      continue;
    }
    for (size_t t = 0; t < cols.size(); ++t) {
      builder.Add(i, cols[t], vals[t] / norm);
    }
  }
  return builder.Build();
}

DenseMatrix SpMM(const SparseMatrix& a, const DenseMatrix& b) {
  WOT_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    auto cols = a.RowCols(r);
    auto vals = a.RowValues(r);
    auto orow = out.Row(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      const double v = vals[k];
      auto brow = b.Row(cols[k]);
      for (size_t c = 0; c < brow.size(); ++c) {
        orow[c] += v * brow[c];
      }
    }
  }
  return out;
}

std::vector<double> SpMV(const SparseMatrix& a,
                         const std::vector<double>& x) {
  WOT_CHECK_EQ(a.cols(), x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    auto cols = a.RowCols(r);
    auto vals = a.RowValues(r);
    double acc = 0.0;
    for (size_t k = 0; k < cols.size(); ++k) {
      acc += vals[k] * x[cols[k]];
    }
    y[r] = acc;
  }
  return y;
}

void ForEachEntry(const SparseMatrix& m,
                  const std::function<void(size_t, uint32_t, double)>& fn) {
  for (size_t r = 0; r < m.rows(); ++r) {
    auto cols = m.RowCols(r);
    auto vals = m.RowValues(r);
    for (size_t k = 0; k < cols.size(); ++k) {
      fn(r, cols[k], vals[k]);
    }
  }
}

DenseMatrix ToDense(const SparseMatrix& m) {
  DenseMatrix out(m.rows(), m.cols());
  ForEachEntry(m, [&](size_t r, uint32_t c, double v) { out.At(r, c) = v; });
  return out;
}

SparseMatrix FromDense(const DenseMatrix& m, double threshold) {
  SparseMatrixBuilder builder(m.rows(), m.cols(), DuplicatePolicy::kLast);
  for (size_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c] > threshold) {
        builder.Add(r, c, row[c]);
      }
    }
  }
  return builder.Build();
}

}  // namespace wot
