#include "wot/core/binarization.h"

#include <algorithm>
#include <cmath>

#include "wot/util/check.h"

namespace wot {

namespace {

/// Selects which of \p candidates (positive-score connections of one row)
/// get marked under \p options, appending marked column ids to \p out.
/// Candidates need not be sorted on entry.
Status MarkRow(std::vector<ScoredUser>* candidates, size_t row,
               const BinarizationOptions& options,
               std::vector<uint32_t>* out) {
  size_t keep = 0;
  switch (options.policy) {
    case BinarizationPolicy::kGlobalThreshold: {
      for (const auto& cand : *candidates) {
        if (cand.score > options.global_threshold) {
          out->push_back(cand.user);
        }
      }
      return Status::OK();
    }
    case BinarizationPolicy::kPerUserQuantile: {
      if (row >= options.per_user_fraction.size()) {
        return Status::InvalidArgument(
            "per_user_fraction is shorter than the row count");
      }
      double f = options.per_user_fraction[row];
      if (f < 0.0 || f > 1.0) {
        return Status::InvalidArgument(
            "per_user_fraction values must lie in [0, 1]");
      }
      keep = static_cast<size_t>(
          std::lround(f * static_cast<double>(candidates->size())));
      break;
    }
    case BinarizationPolicy::kFixedTopK:
      keep = options.top_k;
      break;
    case BinarizationPolicy::kFixedFraction: {
      if (options.fixed_fraction < 0.0 || options.fixed_fraction > 1.0) {
        return Status::InvalidArgument("fixed_fraction must lie in [0, 1]");
      }
      keep = static_cast<size_t>(
          std::lround(options.fixed_fraction *
                      static_cast<double>(candidates->size())));
      break;
    }
  }
  keep = std::min(keep, candidates->size());
  if (keep == 0) {
    return Status::OK();
  }
  // Deterministic selection: score descending, then user id ascending.
  auto better = [](const ScoredUser& a, const ScoredUser& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.user < b.user;
  };
  std::nth_element(candidates->begin(),
                   candidates->begin() + static_cast<ptrdiff_t>(keep - 1),
                   candidates->end(), better);
  for (size_t t = 0; t < keep; ++t) {
    out->push_back((*candidates)[t].user);
  }
  return Status::OK();
}

}  // namespace

std::vector<double> ComputeTrustGenerosity(
    const SparseMatrix& direct, const SparseMatrix& explicit_trust) {
  WOT_CHECK_EQ(direct.rows(), explicit_trust.rows());
  WOT_CHECK_EQ(direct.cols(), explicit_trust.cols());
  std::vector<double> out(direct.rows(), 0.0);
  for (size_t i = 0; i < direct.rows(); ++i) {
    auto dcols = direct.RowCols(i);
    if (dcols.empty()) {
      continue;
    }
    size_t trusted = 0;
    for (uint32_t j : dcols) {
      if (explicit_trust.Contains(i, j)) {
        ++trusted;
      }
    }
    out[i] = static_cast<double>(trusted) /
             static_cast<double>(dcols.size());
  }
  return out;
}

Result<SparseMatrix> BinarizeSparseScores(
    const SparseMatrix& scores, const BinarizationOptions& options) {
  SparseMatrixBuilder builder(scores.rows(), scores.cols(),
                              DuplicatePolicy::kLast);
  std::vector<ScoredUser> candidates;
  std::vector<uint32_t> marked;
  for (size_t i = 0; i < scores.rows(); ++i) {
    candidates.clear();
    marked.clear();
    auto cols = scores.RowCols(i);
    auto vals = scores.RowValues(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i && vals[k] > 0.0) {
        candidates.push_back({cols[k], vals[k]});
      }
    }
    WOT_RETURN_IF_ERROR(MarkRow(&candidates, i, options, &marked));
    for (uint32_t j : marked) {
      builder.Add(i, j, 1.0);
    }
  }
  return builder.Build();
}

Result<SparseMatrix> BinarizeDerivedTrust(
    const TrustDeriver& deriver, const BinarizationOptions& options) {
  const size_t num_users = deriver.num_users();
  SparseMatrixBuilder builder(num_users, num_users, DuplicatePolicy::kLast);
  std::vector<double> row(num_users);
  std::vector<ScoredUser> candidates;
  std::vector<uint32_t> marked;
  for (size_t i = 0; i < num_users; ++i) {
    deriver.DeriveRow(i, row);
    candidates.clear();
    marked.clear();
    for (size_t j = 0; j < num_users; ++j) {
      if (j != i && row[j] > 0.0) {
        candidates.push_back({static_cast<uint32_t>(j), row[j]});
      }
    }
    WOT_RETURN_IF_ERROR(MarkRow(&candidates, i, options, &marked));
    for (uint32_t j : marked) {
      builder.Add(i, j, 1.0);
    }
  }
  return builder.Build();
}

}  // namespace wot
