#include "wot/core/baseline.h"

namespace wot {

SparseMatrix BuildDirectConnectionMatrix(const Dataset& dataset,
                                         const DatasetIndices& indices) {
  (void)indices;
  const size_t n = dataset.num_users();
  SparseMatrixBuilder builder(n, n, DuplicatePolicy::kLast);
  for (const auto& rating : dataset.ratings()) {
    UserId writer = dataset.review(rating.review).writer;
    if (writer != rating.rater) {
      builder.Add(rating.rater.index(), writer.index(), 1.0);
    }
  }
  return builder.Build();
}

SparseMatrix BuildExplicitTrustMatrix(const Dataset& dataset) {
  const size_t n = dataset.num_users();
  SparseMatrixBuilder builder(n, n, DuplicatePolicy::kLast);
  for (const auto& statement : dataset.trust_statements()) {
    if (statement.source != statement.target) {
      builder.Add(statement.source.index(), statement.target.index(), 1.0);
    }
  }
  return builder.Build();
}

SparseMatrix ComputeBaselineMatrix(const Dataset& dataset,
                                   const DatasetIndices& indices) {
  (void)indices;
  const size_t n = dataset.num_users();
  // Sum and count share one pattern; divide after building.
  SparseMatrixBuilder sum_builder(n, n, DuplicatePolicy::kSum);
  SparseMatrixBuilder count_builder(n, n, DuplicatePolicy::kSum);
  for (const auto& rating : dataset.ratings()) {
    UserId writer = dataset.review(rating.review).writer;
    if (writer == rating.rater) {
      continue;
    }
    sum_builder.Add(rating.rater.index(), writer.index(), rating.value);
    count_builder.Add(rating.rater.index(), writer.index(), 1.0);
  }
  SparseMatrix sums = sum_builder.Build();
  SparseMatrix counts = count_builder.Build();

  SparseMatrixBuilder out(n, n, DuplicatePolicy::kLast);
  for (size_t i = 0; i < n; ++i) {
    auto cols = sums.RowCols(i);
    auto sum_vals = sums.RowValues(i);
    auto count_vals = counts.RowValues(i);
    for (size_t k = 0; k < cols.size(); ++k) {
      out.Add(i, cols[k], sum_vals[k] / count_vals[k]);
    }
  }
  return out.Build();
}

}  // namespace wot
