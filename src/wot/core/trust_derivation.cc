#include "wot/core/trust_derivation.h"

#include <algorithm>
#include <queue>

#include "wot/util/check.h"

namespace wot {

TrustDeriver::TrustDeriver(const DenseMatrix& affiliation,
                           const DenseMatrix& expertise)
    : affiliation_(affiliation), expertise_(expertise) {
  WOT_CHECK_EQ(affiliation.rows(), expertise.rows());
  WOT_CHECK_EQ(affiliation.cols(), expertise.cols());
  affinity_row_sum_.resize(affiliation.rows());
  for (size_t i = 0; i < affiliation.rows(); ++i) {
    affinity_row_sum_[i] = affiliation.RowSum(i);
  }
}

double TrustDeriver::DeriveOne(size_t i, size_t j) const {
  const double denom = affinity_row_sum_[i];
  if (denom <= 0.0) {
    return 0.0;
  }
  auto arow = affiliation_.Row(i);
  auto erow = expertise_.Row(j);
  double acc = 0.0;
  for (size_t c = 0; c < arow.size(); ++c) {
    if (arow[c] > 0.0) {
      acc += arow[c] * erow[c];
    }
  }
  return acc / denom;
}

void TrustDeriver::DeriveRow(size_t i, std::span<double> out) const {
  WOT_CHECK_EQ(out.size(), num_users());
  std::fill(out.begin(), out.end(), 0.0);
  const double denom = affinity_row_sum_[i];
  if (denom <= 0.0) {
    return;
  }
  auto arow = affiliation_.Row(i);
  // Accumulate category by category so each pass streams one expertise
  // column; categories with zero affinity are skipped entirely.
  for (size_t c = 0; c < arow.size(); ++c) {
    const double w = arow[c];
    if (w <= 0.0) {
      continue;
    }
    for (size_t j = 0; j < num_users(); ++j) {
      out[j] += w * expertise_.At(j, c);
    }
  }
  for (size_t j = 0; j < num_users(); ++j) {
    out[j] /= denom;
  }
}

DenseMatrix TrustDeriver::DeriveAll() const {
  DenseMatrix out(num_users(), num_users());
  for (size_t i = 0; i < num_users(); ++i) {
    DeriveRow(i, out.Row(i));
  }
  return out;
}

SparseMatrix TrustDeriver::DeriveForPairs(const SparseMatrix& pairs) const {
  WOT_CHECK_EQ(pairs.rows(), num_users());
  WOT_CHECK_EQ(pairs.cols(), num_users());
  SparseMatrixBuilder builder(pairs.rows(), pairs.cols(),
                              DuplicatePolicy::kLast);
  for (size_t i = 0; i < pairs.rows(); ++i) {
    for (uint32_t j : pairs.RowCols(i)) {
      builder.Add(i, j, DeriveOne(i, j));
    }
  }
  return builder.Build();
}

size_t TrustDeriver::CountDerivedConnections(size_t i) const {
  std::vector<double> row(num_users());
  DeriveRow(i, row);
  size_t count = 0;
  for (size_t j = 0; j < row.size(); ++j) {
    if (j != i && row[j] > 0.0) {
      ++count;
    }
  }
  return count;
}

ExpertisePostingPtr TrustDeriver::BuildCategoryPosting(
    const DenseMatrix& expertise, size_t category) {
  WOT_CHECK(category < expertise.cols());
  auto posting = std::make_shared<ExpertisePosting>();
  for (size_t j = 0; j < expertise.rows(); ++j) {
    double e = expertise.At(j, category);
    if (e > 0.0) {
      posting->push_back({static_cast<uint32_t>(j), e});
    }
  }
  std::stable_sort(posting->begin(), posting->end(),
                   [](const ScoredUser& a, const ScoredUser& b) {
                     return a.score > b.score;
                   });
  return posting;
}

void TrustDeriver::BuildPostings() {
  postings_.resize(num_categories());
  for (size_t c = 0; c < num_categories(); ++c) {
    postings_[c] = BuildCategoryPosting(expertise_, c);
  }
}

void TrustDeriver::AdoptPostings(std::vector<ExpertisePostingPtr> postings) {
  WOT_CHECK_EQ(postings.size(), num_categories());
  for (const auto& posting : postings) {
    WOT_CHECK(posting != nullptr);
  }
  postings_ = std::move(postings);
}

std::vector<ScoredUser> TrustDeriver::DeriveRowTopK(size_t i,
                                                    size_t k) const {
  if (k == 0 || affinity_row_sum_[i] <= 0.0) {
    return {};
  }
  if (has_postings()) {
    return TopKByThresholdAlgorithm(i, k);
  }
  return TopKByScan(i, k);
}

namespace {

/// Orders candidates: higher score first, then lower user id. Used both for
/// the final sort and as the heap's inverse comparator.
bool BetterCandidate(const ScoredUser& a, const ScoredUser& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.user < b.user;
}

}  // namespace

std::vector<ScoredUser> TrustDeriver::TopKByScan(size_t i, size_t k) const {
  std::vector<double> row(num_users());
  DeriveRow(i, row);
  std::vector<ScoredUser> candidates;
  candidates.reserve(num_users());
  for (size_t j = 0; j < row.size(); ++j) {
    if (j != i && row[j] > 0.0) {
      candidates.push_back({static_cast<uint32_t>(j), row[j]});
    }
  }
  std::sort(candidates.begin(), candidates.end(), BetterCandidate);
  if (candidates.size() > k) {
    candidates.resize(k);
  }
  return candidates;
}

std::vector<ScoredUser> TrustDeriver::TopKByThresholdAlgorithm(
    size_t i, size_t k) const {
  // Active categories and their normalized weights.
  auto arow = affiliation_.Row(i);
  const double denom = affinity_row_sum_[i];
  std::vector<std::pair<size_t, double>> active;  // (category, weight)
  for (size_t c = 0; c < arow.size(); ++c) {
    if (arow[c] > 0.0 && !postings_[c]->empty()) {
      active.emplace_back(c, arow[c] / denom);
    }
  }
  if (active.empty()) {
    return {};
  }

  // Min-heap of the current best k (worst on top).
  auto worse = [](const ScoredUser& a, const ScoredUser& b) {
    return BetterCandidate(a, b);
  };
  std::priority_queue<ScoredUser, std::vector<ScoredUser>, decltype(worse)>
      heap(worse);
  std::vector<bool> seen(num_users(), false);
  seen[i] = true;  // never return the diagonal

  size_t depth = 0;
  while (true) {
    bool any_posting_left = false;
    double threshold = 0.0;
    for (const auto& [c, w] : active) {
      const auto& posting = *postings_[c];
      if (depth < posting.size()) {
        any_posting_left = true;
        threshold += w * posting[depth].score;
        uint32_t j = posting[depth].user;
        if (!seen[j]) {
          seen[j] = true;
          double score = DeriveOne(i, j);
          if (score > 0.0) {
            if (heap.size() < k) {
              heap.push({j, score});
            } else if (BetterCandidate({j, score}, heap.top())) {
              heap.pop();
              heap.push({j, score});
            }
          }
        }
      }
      // Categories whose posting is exhausted contribute 0 to the
      // threshold (their next-best expertise is 0).
    }
    if (!any_posting_left) {
      break;  // all postings exhausted
    }
    // TA stop test: the threshold bounds every unseen user's score, so
    // once the current k-th best reaches it no unseen user can win. Users
    // tying exactly at the k-th score may resolve differently than in the
    // scan strategy; scores themselves are always exact.
    if (heap.size() == k && heap.top().score >= threshold) {
      break;
    }
    ++depth;
  }

  std::vector<ScoredUser> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top());
    heap.pop();
  }
  std::sort(out.begin(), out.end(), BetterCandidate);
  return out;
}

}  // namespace wot
