// Conversion of continuous trust scores into a binary web of trust.
//
// The paper's validation (Section IV.C) binarizes per user: user i's top
// k_i% of derived connections become 1, where k_i is i's observed
// generosity — the fraction of i's direct connections (row of R) that i
// explicitly trusts (row of R intersected with T). The same conversion is
// applied to the baseline matrix B, which makes the two models comparable.
//
// Alternative policies (global threshold, fixed top-k, fixed fraction) are
// provided for the ablation bench that asks whether the generosity-matched
// conversion is load-bearing for Table 4.
#ifndef WOT_CORE_BINARIZATION_H_
#define WOT_CORE_BINARIZATION_H_

#include <cstddef>
#include <vector>

#include "wot/core/trust_derivation.h"
#include "wot/linalg/sparse_matrix.h"
#include "wot/util/result.h"

namespace wot {

/// \brief How continuous scores become binary trust edges.
enum class BinarizationPolicy {
  /// The paper's rule: per user i, mark the top round(k_i * d_i) of the
  /// d_i positive-score connections, with k_i from per_user_fraction.
  kPerUserQuantile,
  /// Mark every score strictly greater than global_threshold.
  kGlobalThreshold,
  /// Mark each user's top_k highest-scoring connections.
  kFixedTopK,
  /// Mark each user's top fixed_fraction share of connections.
  kFixedFraction,
};

/// \brief Parameters for Binarize*(). Fields are read according to policy.
struct BinarizationOptions {
  BinarizationPolicy policy = BinarizationPolicy::kPerUserQuantile;
  /// k_i per user (kPerUserQuantile). Size must equal the row count.
  std::vector<double> per_user_fraction;
  double global_threshold = 0.0;  // kGlobalThreshold
  size_t top_k = 10;              // kFixedTopK
  double fixed_fraction = 0.25;   // kFixedFraction
};

/// \brief Computes the paper's per-user generosity vector:
/// k_i = |row_i(R intersect T)| / |row_i(R)|, and 0 where row_i(R) is
/// empty. R and T must be same-shape square binary matrices.
std::vector<double> ComputeTrustGenerosity(const SparseMatrix& direct,
                                           const SparseMatrix& explicit_trust);

/// \brief Binarizes a sparse score matrix (e.g. the baseline B) row by row.
/// Stored entries with non-positive scores are never marked; the diagonal
/// is never marked. Returns a binary matrix (all stored values 1.0).
Result<SparseMatrix> BinarizeSparseScores(const SparseMatrix& scores,
                                          const BinarizationOptions& options);

/// \brief Binarizes the full derived trust matrix without materializing it:
/// rows are derived, thresholded and discarded one at a time
/// (O(U) transient memory). Semantically identical to deriving densely and
/// binarizing.
Result<SparseMatrix> BinarizeDerivedTrust(const TrustDeriver& deriver,
                                          const BinarizationOptions& options);

}  // namespace wot

#endif  // WOT_CORE_BINARIZATION_H_
