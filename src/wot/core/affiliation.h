// Step 2: the Users_Category Affiliation matrix A (paper eq. 4).
//
//   A[i][c] = ( a_r[i][c] / max_c' a_r[i][c']
//             + a_w[i][c] / max_c' a_w[i][c'] ) / 2
//
// where a_r counts the reviews user i *rated* in category c and a_w counts
// the reviews user i *wrote* there. Each term is normalized by the user's
// own maximum across categories, so A captures the relative distribution of
// attention rather than absolute volume. A user whose corresponding maximum
// is 0 (never rated / never wrote) contributes 0 for that term.
#ifndef WOT_CORE_AFFILIATION_H_
#define WOT_CORE_AFFILIATION_H_

#include <span>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/linalg/dense_matrix.h"

namespace wot {

/// \brief Computes the U x C affiliation matrix (eq. 4). All entries lie in
/// [0, 1]; a fully inactive user has an all-zero row.
DenseMatrix ComputeAffiliationMatrix(const Dataset& dataset,
                                     const DatasetIndices& indices);

/// \brief Computes one user's affiliation row into \p out (size C). A row
/// depends only on that user's own rate/write counts, so incremental
/// maintainers (TrustService) refresh exactly the rows of users whose
/// activity changed; the result is bit-identical to the corresponding row
/// of ComputeAffiliationMatrix.
void ComputeAffiliationRow(const Dataset& dataset,
                           const DatasetIndices& indices, UserId user,
                           std::span<double> out);

}  // namespace wot

#endif  // WOT_CORE_AFFILIATION_H_
