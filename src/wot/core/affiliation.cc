#include "wot/core/affiliation.h"

namespace wot {

DenseMatrix ComputeAffiliationMatrix(const Dataset& dataset,
                                     const DatasetIndices& indices) {
  const size_t num_users = dataset.num_users();
  const size_t num_categories = dataset.num_categories();
  DenseMatrix affiliation(num_users, num_categories, 0.0);

  for (size_t u = 0; u < num_users; ++u) {
    UserId user(static_cast<uint32_t>(u));
    uint32_t max_rated = 0;
    uint32_t max_written = 0;
    for (size_t c = 0; c < num_categories; ++c) {
      CategoryId category(static_cast<uint32_t>(c));
      max_rated = std::max(max_rated, indices.RateCount(user, category));
      max_written = std::max(max_written, indices.WriteCount(user, category));
    }
    if (max_rated == 0 && max_written == 0) {
      continue;  // inactive user: all-zero affiliation row
    }
    for (size_t c = 0; c < num_categories; ++c) {
      CategoryId category(static_cast<uint32_t>(c));
      double rated_term =
          max_rated > 0 ? static_cast<double>(indices.RateCount(user,
                                                                category)) /
                              static_cast<double>(max_rated)
                        : 0.0;
      double written_term =
          max_written > 0
              ? static_cast<double>(indices.WriteCount(user, category)) /
                    static_cast<double>(max_written)
              : 0.0;
      affiliation.At(u, c) = (rated_term + written_term) / 2.0;
    }
  }
  return affiliation;
}

}  // namespace wot
