#include "wot/core/affiliation.h"

#include <algorithm>

#include "wot/util/check.h"

namespace wot {

void ComputeAffiliationRow(const Dataset& dataset,
                           const DatasetIndices& indices, UserId user,
                           std::span<double> out) {
  const size_t num_categories = dataset.num_categories();
  WOT_CHECK_EQ(out.size(), num_categories);
  std::fill(out.begin(), out.end(), 0.0);

  uint32_t max_rated = 0;
  uint32_t max_written = 0;
  for (size_t c = 0; c < num_categories; ++c) {
    CategoryId category(static_cast<uint32_t>(c));
    max_rated = std::max(max_rated, indices.RateCount(user, category));
    max_written = std::max(max_written, indices.WriteCount(user, category));
  }
  if (max_rated == 0 && max_written == 0) {
    return;  // inactive user: all-zero affiliation row
  }
  for (size_t c = 0; c < num_categories; ++c) {
    CategoryId category(static_cast<uint32_t>(c));
    double rated_term =
        max_rated > 0 ? static_cast<double>(indices.RateCount(user,
                                                              category)) /
                            static_cast<double>(max_rated)
                      : 0.0;
    double written_term =
        max_written > 0
            ? static_cast<double>(indices.WriteCount(user, category)) /
                  static_cast<double>(max_written)
            : 0.0;
    out[c] = (rated_term + written_term) / 2.0;
  }
}

DenseMatrix ComputeAffiliationMatrix(const Dataset& dataset,
                                     const DatasetIndices& indices) {
  const size_t num_users = dataset.num_users();
  DenseMatrix affiliation(num_users, dataset.num_categories(), 0.0);
  for (size_t u = 0; u < num_users; ++u) {
    ComputeAffiliationRow(dataset, indices, UserId(static_cast<uint32_t>(u)),
                          affiliation.Row(u));
  }
  return affiliation;
}

}  // namespace wot
