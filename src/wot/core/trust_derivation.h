// Step 3: deriving the degree-of-trust matrix T-hat (paper eq. 5).
//
//   T[i][j] = sum_c A[i][c] * E[j][c]  /  sum_c A[i][c]
//
// Three evaluation strategies with identical semantics and different cost:
//   * DeriveAll      — full dense U x U matrix; O(U^2 * C). Small datasets.
//   * DeriveForPairs — only the requested (i, j) coordinates; O(nnz * C).
//   * DeriveRowTopK  — exact top-k of one row via a Fagin-style threshold
//     algorithm over per-category expertise postings sorted descending;
//     sub-linear in U when affinities are concentrated (the common case:
//     users focus on a few categories).
// DeriveRow is the shared row kernel used by the streaming binarizer.
#ifndef WOT_CORE_TRUST_DERIVATION_H_
#define WOT_CORE_TRUST_DERIVATION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "wot/linalg/dense_matrix.h"
#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief One derived trust score.
struct ScoredUser {
  uint32_t user;
  double score;
};

/// \brief One category's expertise posting: users sorted by E[user][c]
/// descending, zero-expertise users omitted. Shared (immutably) between
/// derivers so snapshot-based maintainers only rebuild the categories whose
/// expertise column actually changed.
using ExpertisePosting = std::vector<ScoredUser>;
using ExpertisePostingPtr = std::shared_ptr<const ExpertisePosting>;

/// \brief Derives degrees of trust from affiliation (A) and expertise (E).
///
/// Both inputs must be U x C. Rows of users with zero total affiliation
/// derive to all-zero (the eq.-5 quotient is read as 0 when its denominator
/// is 0: a user with no history trusts no one yet).
class TrustDeriver {
 public:
  /// Keeps references; both matrices must outlive the deriver.
  TrustDeriver(const DenseMatrix& affiliation, const DenseMatrix& expertise);

  size_t num_users() const { return affiliation_.rows(); }
  size_t num_categories() const { return affiliation_.cols(); }

  /// \brief T[i][j] for one pair. Self-trust (i == j) is defined and
  /// computed like any other pair; callers decide whether to exclude it.
  double DeriveOne(size_t i, size_t j) const;

  /// \brief Fills out[j] = T[i][j] for all j. out must have size U.
  void DeriveRow(size_t i, std::span<double> out) const;

  /// \brief Full dense derivation (use only when U is small).
  DenseMatrix DeriveAll() const;

  /// \brief Derives scores only at the stored coordinates of \p pairs
  /// (values of \p pairs are ignored). Result has the same pattern with
  /// derived values, including explicit zeros.
  SparseMatrix DeriveForPairs(const SparseMatrix& pairs) const;

  /// \brief Exact top-k of row i (descending score; ties by ascending user
  /// id), excluding j == i. Uses the threshold algorithm when postings are
  /// built (BuildPostings()), else falls back to a full row scan.
  std::vector<ScoredUser> DeriveRowTopK(size_t i, size_t k) const;

  /// \brief Number of entries of row i strictly greater than zero,
  /// excluding the diagonal. (The paper calls these the row's "derived
  /// connections".)
  size_t CountDerivedConnections(size_t i) const;

  /// \brief Precomputes per-category expertise postings sorted descending,
  /// enabling the threshold algorithm in DeriveRowTopK. O(C * U log U).
  void BuildPostings();

  /// \brief Builds the posting of one expertise column. Deterministic
  /// (stable sort), so two builds over bit-identical columns yield
  /// bit-identical postings.
  static ExpertisePostingPtr BuildCategoryPosting(const DenseMatrix& expertise,
                                                  size_t category);

  /// \brief Installs externally built postings (one per category, typically
  /// a mix of freshly built and reused entries from a previous snapshot).
  /// \p postings must have exactly num_categories() non-null entries.
  void AdoptPostings(std::vector<ExpertisePostingPtr> postings);

  /// \brief The installed postings (empty until BuildPostings or
  /// AdoptPostings). Snapshot maintainers share the clean categories'
  /// entries with the next deriver via AdoptPostings.
  const std::vector<ExpertisePostingPtr>& postings() const {
    return postings_;
  }

  bool has_postings() const { return !postings_.empty(); }

 private:
  std::vector<ScoredUser> TopKByScan(size_t i, size_t k) const;
  std::vector<ScoredUser> TopKByThresholdAlgorithm(size_t i, size_t k) const;

  const DenseMatrix& affiliation_;
  const DenseMatrix& expertise_;
  std::vector<double> affinity_row_sum_;  // sum_c A[i][c] per user

  // postings_[c] = users sorted by E[user][c] descending (only E > 0).
  std::vector<ExpertisePostingPtr> postings_;
};

}  // namespace wot

#endif  // WOT_CORE_TRUST_DERIVATION_H_
