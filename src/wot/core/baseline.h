// The paper's observation matrices and baseline model:
//
//   R — direct connection matrix: R[i][j] = 1 iff user i rated at least one
//       of user j's reviews (Fig. 3's "direct connection matrix").
//   T — the explicit (ground truth) web of trust, from trust statements.
//   B — baseline degree of trust: B[i][j] = the average rating user i gave
//       across all of user j's reviews (Section IV.C). B's pattern equals
//       R's.
//
// All three are U x U sparse matrices; diagonals are never stored.
#ifndef WOT_CORE_BASELINE_H_
#define WOT_CORE_BASELINE_H_

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/linalg/sparse_matrix.h"

namespace wot {

/// \brief Builds R from the rating table.
SparseMatrix BuildDirectConnectionMatrix(const Dataset& dataset,
                                         const DatasetIndices& indices);

/// \brief Builds T from the dataset's trust statements (values 1.0).
SparseMatrix BuildExplicitTrustMatrix(const Dataset& dataset);

/// \brief Builds the baseline matrix B (average rating i gave to j).
SparseMatrix ComputeBaselineMatrix(const Dataset& dataset,
                                   const DatasetIndices& indices);

}  // namespace wot

#endif  // WOT_CORE_BASELINE_H_
