#include "wot/core/pipeline.h"

#include "wot/util/logging.h"
#include "wot/util/stopwatch.h"

namespace wot {

Result<TrustPipeline> TrustPipeline::Run(const Dataset& dataset,
                                         const PipelineOptions& options) {
  Stopwatch timer;
  TrustPipeline pipeline;
  pipeline.dataset_ = &dataset;
  pipeline.indices_ = std::make_unique<DatasetIndices>(dataset);

  WOT_ASSIGN_OR_RETURN(
      pipeline.reputation_,
      ComputeReputations(dataset, *pipeline.indices_, options.reputation));
  pipeline.affiliation_ =
      ComputeAffiliationMatrix(dataset, *pipeline.indices_);
  pipeline.direct_ =
      BuildDirectConnectionMatrix(dataset, *pipeline.indices_);
  pipeline.explicit_trust_ = BuildExplicitTrustMatrix(dataset);
  if (options.compute_baseline) {
    pipeline.baseline_ = ComputeBaselineMatrix(dataset, *pipeline.indices_);
  }

  size_t unconverged = 0;
  for (const auto& info : pipeline.reputation_.convergence) {
    if (!info.converged) {
      ++unconverged;
    }
  }
  if (unconverged > 0) {
    WOT_LOG(Warning) << unconverged
                     << " categories hit the iteration cap before reaching "
                        "the quality tolerance";
  }
  WOT_LOG(Info) << "pipeline ran in " << timer.ElapsedMillis() << " ms over "
                << dataset.Summary();
  return pipeline;
}

}  // namespace wot
