// Compatibility shim: TrustPipeline moved to the serving layer when it
// became a facade over one-shot TrustSnapshot construction. Include
// wot/service/pipeline.h directly in new code; for the long-lived,
// incrementally refreshed serving path, see wot/service/trust_service.h.
#ifndef WOT_CORE_PIPELINE_H_
#define WOT_CORE_PIPELINE_H_

#include "wot/service/pipeline.h"  // IWYU pragma: export

#endif  // WOT_CORE_PIPELINE_H_
