// Writer reputation (paper eq. 3): the experience-discounted mean quality
// of the reviews a writer produced in one category.
//
//     rep(u_w) = (sum_j quality(r_j) / n_w) * (1 - 1/(n_w + 1))
//
// where the sum ranges over the writer's reviews in the category and n_w is
// their count.
#ifndef WOT_REPUTATION_WRITER_REPUTATION_H_
#define WOT_REPUTATION_WRITER_REPUTATION_H_

#include <vector>

#include "wot/community/category_view.h"
#include "wot/reputation/options.h"

namespace wot {

/// \brief Computes eq. 3 for every local writer in \p view, given the
/// converged review qualities. Returns reputation[lw] in [0, 1].
std::vector<double> ComputeWriterReputations(
    const CategoryView& view, const std::vector<double>& review_quality,
    const ReputationOptions& options);

}  // namespace wot

#endif  // WOT_REPUTATION_WRITER_REPUTATION_H_
