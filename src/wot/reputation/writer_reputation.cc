#include "wot/reputation/writer_reputation.h"

#include <algorithm>

#include "wot/util/check.h"

namespace wot {

std::vector<double> ComputeWriterReputations(
    const CategoryView& view, const std::vector<double>& review_quality,
    const ReputationOptions& options) {
  WOT_CHECK_EQ(review_quality.size(), view.num_reviews());
  std::vector<double> out(view.num_writers(), 0.0);
  for (size_t lw = 0; lw < view.num_writers(); ++lw) {
    auto reviews = view.ReviewsOfWriter(lw);
    if (reviews.empty()) {
      continue;
    }
    double sum = 0.0;
    for (uint32_t lr : reviews) {
      sum += review_quality[lr];
    }
    const double n = static_cast<double>(reviews.size());
    double rep = sum / n;
    if (options.use_experience_discount) {
      rep *= 1.0 - 1.0 / (n + 1.0);
    }
    out[lw] = std::clamp(rep, 0.0, 1.0);
  }
  return out;
}

}  // namespace wot
