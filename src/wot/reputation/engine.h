// The multi-category reputation engine: runs the Riggs fixed point and
// writer aggregation in every category (in parallel) and assembles the
// Users_Category matrices the trust derivation consumes.
//
// Output matrices are U x C:
//   expertise  E[i][c] = writer reputation of user i in category c (eq. 3);
//                        the paper's Users_Category Expertise matrix.
//   rater_reputation[i][c] = rater reputation of user i in category c
//                        (eq. 2); used by the Table-2 experiment.
// Entries for users with no activity in a category are 0.
#ifndef WOT_REPUTATION_ENGINE_H_
#define WOT_REPUTATION_ENGINE_H_

#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/linalg/dense_matrix.h"
#include "wot/reputation/options.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Everything Step 1 produces.
struct ReputationResult {
  /// E: U x C writer expertise (eq. 3).
  DenseMatrix expertise;
  /// U x C rater reputation (eq. 2).
  DenseMatrix rater_reputation;
  /// quality[review] in [0, 1] for every review (eq. 1), converged.
  std::vector<double> review_quality;
  /// Per-category convergence diagnostics (indexed by category).
  std::vector<ConvergenceInfo> convergence;
};

/// \brief Runs Step 1 over all categories of \p dataset.
///
/// Categories are independent; they are processed concurrently on
/// options.num_threads workers. Deterministic regardless of thread count.
Result<ReputationResult> ComputeReputations(const Dataset& dataset,
                                            const DatasetIndices& indices,
                                            const ReputationOptions& options);

}  // namespace wot

#endif  // WOT_REPUTATION_ENGINE_H_
