// The Riggs reputation fixed point (paper eq. 1 + eq. 2), computed inside
// one CategoryView.
//
// Review quality (eq. 1):
//     quality(r_j) = sum_i rep(u_i) * rho_ij / sum_i rep(u_i)
// over the raters u_i of review r_j — a reputation-weighted mean of the
// received ratings.
//
// Rater reputation (eq. 2):
//     rep(u_i) = (1 - sum_j |quality(r_j) - rho_ij| / n_i)
//                * (1 - 1/(n_i + 1))
// where n_i is the number of reviews u_i rated in the category: raters are
// reliable when they consistently rate close to the converged quality, and
// inexperience is discounted by 1 - 1/(n+1) = n/(n+1).
//
// The two equations are mutually recursive; RiggsFixedPoint iterates them
// from "all raters fully reliable" until the max quality change falls below
// options.tolerance (or max_iterations is hit).
//
// Edge-case semantics (the paper is silent; documented in DESIGN.md §6):
//  * a review with no ratings has quality 0;
//  * if every rater of a review currently has reputation 0, the quality
//    falls back to the unweighted mean of its ratings;
//  * a category with no ratings yields all-zero rater reputations.
#ifndef WOT_REPUTATION_RIGGS_H_
#define WOT_REPUTATION_RIGGS_H_

#include <vector>

#include "wot/community/category_view.h"
#include "wot/reputation/options.h"

namespace wot {

/// \brief Converged state of one category.
struct RiggsResult {
  /// quality[lr] for each local review, in [0, 1].
  std::vector<double> review_quality;
  /// reputation[lx] for each local rater, in [0, 1].
  std::vector<double> rater_reputation;
  ConvergenceInfo convergence;
};

/// \brief Runs the eq. 1 / eq. 2 fixed point on one category.
RiggsResult RiggsFixedPoint(const CategoryView& view,
                            const ReputationOptions& options);

/// \brief One eq.-1 sweep: recomputes review qualities from fixed rater
/// reputations. Exposed for unit tests and the ablation bench.
void ComputeReviewQualities(const CategoryView& view,
                            const std::vector<double>& rater_reputation,
                            bool use_rater_weighting,
                            std::vector<double>* review_quality);

/// \brief One eq.-2 sweep: recomputes rater reputations from fixed review
/// qualities. Exposed for unit tests and the ablation bench.
void ComputeRaterReputations(const CategoryView& view,
                             const std::vector<double>& review_quality,
                             bool use_experience_discount,
                             std::vector<double>* rater_reputation);

}  // namespace wot

#endif  // WOT_REPUTATION_RIGGS_H_
