// Incremental reputation maintenance: a production adopter does not rerun
// the whole pipeline on every new rating. IncrementalReputationEngine
// tracks which categories are dirtied by appended activity and recomputes
// only those; clean categories keep their converged state.
//
// Categories are fully independent in the Riggs model (DESIGN.md S9), so
// per-category recomputation is exact — results are bit-identical to a
// from-scratch run on the same dataset, which the tests assert.
#ifndef WOT_REPUTATION_INCREMENTAL_H_
#define WOT_REPUTATION_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "wot/community/dataset.h"
#include "wot/community/indices.h"
#include "wot/reputation/engine.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Maintains ReputationResult across dataset versions.
///
/// Usage:
///   IncrementalReputationEngine engine(options);
///   WOT_RETURN_IF_ERROR(engine.FullRebuild(v1));
///   ... dataset grows into v2 (append-only) ...
///   WOT_RETURN_IF_ERROR(engine.Update(v2));   // recomputes dirty
///   categories only
///
/// Datasets must evolve append-only (entities are never removed or
/// reordered); Update() verifies this and fails otherwise.
class IncrementalReputationEngine {
 public:
  explicit IncrementalReputationEngine(ReputationOptions options = {});

  /// \brief Computes everything from scratch and snapshots per-category
  /// activity versions.
  Status FullRebuild(const Dataset& dataset);

  /// \brief As above with caller-provided indices (must describe
  /// \p dataset). Skips the O(|ratings|) index build — callers that keep
  /// indices alive alongside the dataset should prefer this form.
  Status FullRebuild(const Dataset& dataset, const DatasetIndices& indices);

  /// \brief Brings the result up to date with \p dataset, recomputing only
  /// categories whose review or rating population changed. New users and
  /// new categories are handled (matrices grow). Returns the number of
  /// categories recomputed via *out if non-null.
  Status Update(const Dataset& dataset, size_t* categories_recomputed =
                                            nullptr);

  /// \brief As above with caller-provided indices for \p dataset.
  Status Update(const Dataset& dataset, const DatasetIndices& indices,
                size_t* categories_recomputed = nullptr);

  /// \brief Adopts \p result as the already-converged state of \p dataset
  /// without recomputing anything (the durable-restore path: the result
  /// was persisted by an engine that had converged over this exact
  /// dataset). Snapshots the per-category activity fingerprints so a
  /// subsequent Update() recomputes only categories dirtied afterwards —
  /// byte-identical to an engine that never restarted. Fails (engine
  /// unchanged) when the result's shapes don't match \p dataset.
  Status Seed(const Dataset& dataset, const DatasetIndices& indices,
              const ReputationResult& result);

  /// \brief As above without caller-provided indices. The activity
  /// fingerprints are counted straight off the dataset columns in
  /// O(|reviews| + |ratings|), so the restore path never pays for a full
  /// DatasetIndices build it would immediately throw away.
  Status Seed(const Dataset& dataset, const ReputationResult& result);

  /// \brief Current result; valid after a successful FullRebuild/Update.
  const ReputationResult& result() const { return result_; }

  /// \brief Category indices recomputed by the most recent successful
  /// FullRebuild (all categories) or Update (the dirty subset, possibly
  /// empty), ascending. Snapshot maintainers use this to scope their
  /// Step-2/3 refreshes — e.g. rebuild expertise postings only for these
  /// columns. Cleared-on-entry semantics: a failed Update leaves the value
  /// of the previous successful call.
  const std::vector<size_t>& last_recomputed_categories() const {
    return last_recomputed_;
  }

  bool initialized() const { return initialized_; }

 private:
  /// Activity fingerprint of one category (review + rating counts are
  /// sufficient under append-only evolution).
  struct CategoryVersion {
    size_t num_reviews = 0;
    size_t num_ratings = 0;
    bool operator==(const CategoryVersion&) const = default;
  };

  static std::vector<CategoryVersion> Fingerprint(
      const Dataset& dataset, const DatasetIndices& indices);
  static std::vector<CategoryVersion> Fingerprint(const Dataset& dataset);

  ReputationOptions options_;
  bool initialized_ = false;
  size_t known_users_ = 0;
  size_t known_reviews_ = 0;
  std::vector<CategoryVersion> versions_;
  std::vector<size_t> last_recomputed_;
  ReputationResult result_;
};

}  // namespace wot

#endif  // WOT_REPUTATION_INCREMENTAL_H_
