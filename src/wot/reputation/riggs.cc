#include "wot/reputation/riggs.h"

#include <algorithm>
#include <cmath>

#include "wot/util/check.h"

namespace wot {

void ComputeReviewQualities(const CategoryView& view,
                            const std::vector<double>& rater_reputation,
                            bool use_rater_weighting,
                            std::vector<double>* review_quality) {
  WOT_CHECK_EQ(rater_reputation.size(), view.num_raters());
  review_quality->assign(view.num_reviews(), 0.0);
  for (size_t lr = 0; lr < view.num_reviews(); ++lr) {
    auto ratings = view.RatingsOfReview(lr);
    if (ratings.empty()) {
      continue;  // unrated review: quality 0 by convention
    }
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    for (const auto& rating : ratings) {
      double w =
          use_rater_weighting ? rater_reputation[rating.local_rater] : 1.0;
      weighted_sum += w * rating.value;
      weight_total += w;
    }
    if (weight_total > 0.0) {
      (*review_quality)[lr] = weighted_sum / weight_total;
    } else {
      // All raters currently have zero reputation; fall back to the
      // unweighted mean rather than dividing by zero.
      double sum = 0.0;
      for (const auto& rating : ratings) {
        sum += rating.value;
      }
      (*review_quality)[lr] = sum / static_cast<double>(ratings.size());
    }
  }
}

void ComputeRaterReputations(const CategoryView& view,
                             const std::vector<double>& review_quality,
                             bool use_experience_discount,
                             std::vector<double>* rater_reputation) {
  WOT_CHECK_EQ(review_quality.size(), view.num_reviews());
  rater_reputation->assign(view.num_raters(), 0.0);
  for (size_t lx = 0; lx < view.num_raters(); ++lx) {
    auto ratings = view.RatingsByRater(lx);
    if (ratings.empty()) {
      continue;
    }
    double deviation_sum = 0.0;
    for (const auto& rating : ratings) {
      deviation_sum +=
          std::fabs(review_quality[rating.local_review] - rating.value);
    }
    const double n = static_cast<double>(ratings.size());
    double rep = 1.0 - deviation_sum / n;
    if (use_experience_discount) {
      rep *= 1.0 - 1.0 / (n + 1.0);
    }
    (*rater_reputation)[lx] = std::clamp(rep, 0.0, 1.0);
  }
}

RiggsResult RiggsFixedPoint(const CategoryView& view,
                            const ReputationOptions& options) {
  RiggsResult result;
  // Start from "every rater fully reliable": the first eq.-1 sweep then
  // produces plain means, which eq. 2 refines.
  result.rater_reputation.assign(view.num_raters(), 1.0);
  result.review_quality.assign(view.num_reviews(), 0.0);

  std::vector<double> next_quality;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ComputeReviewQualities(view, result.rater_reputation,
                           options.use_rater_weighting, &next_quality);
    double delta = 0.0;
    for (size_t lr = 0; lr < next_quality.size(); ++lr) {
      delta = std::max(delta,
                       std::fabs(next_quality[lr] -
                                 result.review_quality[lr]));
    }
    result.review_quality.swap(next_quality);
    ComputeRaterReputations(view, result.review_quality,
                            options.use_experience_discount,
                            &result.rater_reputation);
    result.convergence.iterations = iter + 1;
    result.convergence.final_delta = delta;
    if (delta < options.tolerance) {
      result.convergence.converged = true;
      break;
    }
    // Without rater weighting eq. 1 no longer depends on eq. 2, so a
    // second sweep cannot change anything.
    if (!options.use_rater_weighting && iter >= 1) {
      result.convergence.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace wot
