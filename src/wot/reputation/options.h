// Options of the reputation engine (paper Step 1).
#ifndef WOT_REPUTATION_OPTIONS_H_
#define WOT_REPUTATION_OPTIONS_H_

#include <cstddef>

namespace wot {

/// \brief Knobs for the Riggs fixed point and writer aggregation.
///
/// The two `use_*` switches exist for the ablation benches; the paper's
/// model corresponds to the defaults (both true).
struct ReputationOptions {
  /// Convergence threshold on max |Delta quality| between iterations.
  double tolerance = 1e-9;

  /// Hard cap on fixed-point iterations; the loop reports whether it
  /// converged within the cap.
  size_t max_iterations = 100;

  /// Weight ratings by rater reputation (eq. 1). When false, review quality
  /// is the plain mean of received ratings (ablation: "Riggs vs mean").
  bool use_rater_weighting = true;

  /// Apply the 1 - 1/(n+1) experience discount in eq. 2 and eq. 3. When
  /// false, reputations are raw averages (ablation: "discount off").
  bool use_experience_discount = true;

  /// Worker threads for the per-category driver (0 = hardware concurrency).
  size_t num_threads = 0;
};

/// \brief Convergence report of one category's fixed point.
struct ConvergenceInfo {
  size_t iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

}  // namespace wot

#endif  // WOT_REPUTATION_OPTIONS_H_
