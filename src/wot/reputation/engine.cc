#include "wot/reputation/engine.h"

#include "wot/reputation/riggs.h"
#include "wot/reputation/writer_reputation.h"
#include "wot/util/parallel_for.h"

namespace wot {

Result<ReputationResult> ComputeReputations(
    const Dataset& dataset, const DatasetIndices& indices,
    const ReputationOptions& options) {
  if (options.tolerance <= 0.0) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }

  const size_t num_users = dataset.num_users();
  const size_t num_categories = dataset.num_categories();

  ReputationResult result;
  result.expertise = DenseMatrix(num_users, num_categories, 0.0);
  result.rater_reputation = DenseMatrix(num_users, num_categories, 0.0);
  result.review_quality.assign(dataset.num_reviews(), 0.0);
  result.convergence.assign(num_categories, ConvergenceInfo{});

  // Each worker writes to disjoint columns (its own category) and to the
  // review-quality slots of its own category's reviews, so no locking is
  // needed and results are independent of scheduling.
  ParallelFor(
      num_categories,
      [&](size_t c) {
        CategoryId category(static_cast<uint32_t>(c));
        CategoryView view(dataset, indices, category);
        RiggsResult riggs = RiggsFixedPoint(view, options);
        std::vector<double> writer_rep =
            ComputeWriterReputations(view, riggs.review_quality, options);

        for (size_t lw = 0; lw < view.num_writers(); ++lw) {
          result.expertise.At(view.writer_id(lw).index(), c) =
              writer_rep[lw];
        }
        for (size_t lx = 0; lx < view.num_raters(); ++lx) {
          result.rater_reputation.At(view.rater_id(lx).index(), c) =
              riggs.rater_reputation[lx];
        }
        for (size_t lr = 0; lr < view.num_reviews(); ++lr) {
          result.review_quality[view.review_id(lr).index()] =
              riggs.review_quality[lr];
        }
        result.convergence[c] = riggs.convergence;
      },
      options.num_threads);

  return result;
}

}  // namespace wot
