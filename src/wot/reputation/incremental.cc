#include "wot/reputation/incremental.h"

#include "wot/community/category_view.h"
#include "wot/reputation/riggs.h"
#include "wot/reputation/writer_reputation.h"
#include "wot/util/parallel_for.h"

namespace wot {

IncrementalReputationEngine::IncrementalReputationEngine(
    ReputationOptions options)
    : options_(options) {}

std::vector<IncrementalReputationEngine::CategoryVersion>
IncrementalReputationEngine::Fingerprint(const Dataset& dataset,
                                         const DatasetIndices& indices) {
  std::vector<CategoryVersion> versions(dataset.num_categories());
  for (size_t c = 0; c < dataset.num_categories(); ++c) {
    CategoryId category(static_cast<uint32_t>(c));
    size_t ratings = 0;
    for (ReviewId review : indices.ReviewsInCategory(category)) {
      ratings += indices.RatingsOfReview(review).size();
    }
    versions[c] = {indices.ReviewsInCategory(category).size(), ratings};
  }
  return versions;
}

Status IncrementalReputationEngine::FullRebuild(const Dataset& dataset) {
  DatasetIndices indices(dataset);
  return FullRebuild(dataset, indices);
}

Status IncrementalReputationEngine::FullRebuild(
    const Dataset& dataset, const DatasetIndices& indices) {
  WOT_ASSIGN_OR_RETURN(result_,
                       ComputeReputations(dataset, indices, options_));
  last_recomputed_.resize(dataset.num_categories());
  for (size_t c = 0; c < last_recomputed_.size(); ++c) {
    last_recomputed_[c] = c;
  }
  versions_ = Fingerprint(dataset, indices);
  known_users_ = dataset.num_users();
  known_reviews_ = dataset.num_reviews();
  initialized_ = true;
  return Status::OK();
}

std::vector<IncrementalReputationEngine::CategoryVersion>
IncrementalReputationEngine::Fingerprint(const Dataset& dataset) {
  // Counting straight off the columns gives the same per-category review
  // and rating populations as the index-based overload, without the
  // grouped-postings build.
  std::vector<CategoryVersion> versions(dataset.num_categories());
  const std::vector<Review>& reviews = dataset.reviews();
  for (const Review& review : reviews) {
    ++versions[review.category.index()].num_reviews;
  }
  for (const ReviewRating& rating : dataset.ratings()) {
    ++versions[reviews[rating.review.index()].category.index()]
          .num_ratings;
  }
  return versions;
}

Status IncrementalReputationEngine::Seed(const Dataset& dataset,
                                         const DatasetIndices& indices,
                                         const ReputationResult& result) {
  // Both Fingerprint overloads count the same populations, so the
  // index-free implementation serves here too.
  (void)indices;
  return Seed(dataset, result);
}

Status IncrementalReputationEngine::Seed(const Dataset& dataset,
                                         const ReputationResult& result) {
  if (result.expertise.rows() != dataset.num_users() ||
      result.expertise.cols() != dataset.num_categories() ||
      result.rater_reputation.rows() != dataset.num_users() ||
      result.rater_reputation.cols() != dataset.num_categories() ||
      result.review_quality.size() != dataset.num_reviews() ||
      result.convergence.size() != dataset.num_categories()) {
    return Status::InvalidArgument(
        "seeded reputation result does not match the dataset's shape");
  }
  result_ = result;
  versions_ = Fingerprint(dataset);
  last_recomputed_.clear();
  known_users_ = dataset.num_users();
  known_reviews_ = dataset.num_reviews();
  initialized_ = true;
  return Status::OK();
}

Status IncrementalReputationEngine::Update(const Dataset& dataset,
                                           size_t* categories_recomputed) {
  DatasetIndices indices(dataset);
  return Update(dataset, indices, categories_recomputed);
}

Status IncrementalReputationEngine::Update(const Dataset& dataset,
                                           const DatasetIndices& indices,
                                           size_t* categories_recomputed) {
  if (!initialized_) {
    if (categories_recomputed != nullptr) {
      *categories_recomputed = dataset.num_categories();
    }
    return FullRebuild(dataset, indices);
  }
  if (dataset.num_users() < known_users_ ||
      dataset.num_reviews() < known_reviews_ ||
      dataset.num_categories() < versions_.size()) {
    return Status::FailedPrecondition(
        "IncrementalReputationEngine requires append-only dataset "
        "evolution");
  }

  std::vector<CategoryVersion> current = Fingerprint(dataset, indices);

  // Collect dirty categories (changed fingerprint or brand new).
  std::vector<size_t> dirty;
  for (size_t c = 0; c < current.size(); ++c) {
    if (c >= versions_.size() || !(versions_[c] == current[c])) {
      dirty.push_back(c);
    }
  }
  if (categories_recomputed != nullptr) {
    *categories_recomputed = dirty.size();
  }

  // Grow the matrices for new users / categories, preserving old entries.
  const size_t num_users = dataset.num_users();
  const size_t num_categories = dataset.num_categories();
  if (num_users != result_.expertise.rows() ||
      num_categories != result_.expertise.cols()) {
    DenseMatrix expertise(num_users, num_categories, 0.0);
    DenseMatrix rater(num_users, num_categories, 0.0);
    for (size_t u = 0; u < result_.expertise.rows(); ++u) {
      for (size_t c = 0; c < result_.expertise.cols(); ++c) {
        expertise.At(u, c) = result_.expertise.At(u, c);
        rater.At(u, c) = result_.rater_reputation.At(u, c);
      }
    }
    result_.expertise = std::move(expertise);
    result_.rater_reputation = std::move(rater);
  }
  result_.review_quality.resize(dataset.num_reviews(), 0.0);
  result_.convergence.resize(num_categories, ConvergenceInfo{});

  ParallelFor(
      dirty.size(),
      [&](size_t k) {
        const size_t c = dirty[k];
        CategoryId category(static_cast<uint32_t>(c));
        CategoryView view(dataset, indices, category);
        RiggsResult riggs = RiggsFixedPoint(view, options_);
        std::vector<double> writer_rep =
            ComputeWriterReputations(view, riggs.review_quality, options_);
        // Reset the whole column first: a user's expertise may drop to 0
        // only if reviews vanished, which append-only forbids, but a
        // clean column write keeps the invariant trivially.
        for (size_t u = 0; u < num_users; ++u) {
          result_.expertise.At(u, c) = 0.0;
          result_.rater_reputation.At(u, c) = 0.0;
        }
        for (size_t lw = 0; lw < view.num_writers(); ++lw) {
          result_.expertise.At(view.writer_id(lw).index(), c) =
              writer_rep[lw];
        }
        for (size_t lx = 0; lx < view.num_raters(); ++lx) {
          result_.rater_reputation.At(view.rater_id(lx).index(), c) =
              riggs.rater_reputation[lx];
        }
        for (size_t lr = 0; lr < view.num_reviews(); ++lr) {
          result_.review_quality[view.review_id(lr).index()] =
              riggs.review_quality[lr];
        }
        result_.convergence[c] = riggs.convergence;
      },
      options_.num_threads);

  versions_ = std::move(current);
  last_recomputed_ = std::move(dirty);
  known_users_ = dataset.num_users();
  known_reviews_ = dataset.num_reviews();
  return Status::OK();
}

}  // namespace wot
