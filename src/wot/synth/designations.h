// Planted community designations: Advisors (top raters) and Top Reviewers
// (top writers). These stand in for Epinions' human-curated picks and are
// the ground truth of the Table 2 / Table 3 experiments.
//
// Selection applies Epinions' stated criterion — "quality and quantity" —
// to the latent truth:
//   advisor score      = rater_reliability * log(1 + #ratings given)
//   top-reviewer score = writer_quality    * log(1 + #reviews written)
#ifndef WOT_SYNTH_DESIGNATIONS_H_
#define WOT_SYNTH_DESIGNATIONS_H_

#include "wot/community/dataset.h"
#include "wot/synth/config.h"
#include "wot/synth/generator_fwd.h"

namespace wot {

/// \brief Fills truth->advisors and truth->top_reviewers from the staged
/// dataset and the latent profiles already present in \p truth.
void PlantDesignations(const SynthConfig& config, const Dataset& dataset,
                       SynthGroundTruth* truth);

}  // namespace wot

#endif  // WOT_SYNTH_DESIGNATIONS_H_
