// Ground-truth trust process. Emits the explicit trust statements the
// evaluation treats as labels; the derivation framework never sees how they
// were produced.
//
// Three edge populations, mirroring the structure the paper observes in the
// Epinions web of trust:
//   1. In-R trust: for every (i, j) where i rated at least one of j's
//      reviews, i trusts j with probability
//        generosity_i * sigmoid(steepness * (affinity-weighted expertise of
//        j under i's affinities - midpoint)).
//      This encodes the paper's core assumption: "a user would trust an
//      expert in the area of interest that matters greatly to her."
//   2. Out-of-R ("word of mouth") trust: additional edges toward experts in
//      i's focus categories whose reviews i never rated; the paper found a
//      sizeable T - R population ("trust connectivity in (T-R) is
//      constructed even though two users has no connection").
//   3. A small number of uniformly random edges (noise).
#ifndef WOT_SYNTH_TRUST_MODEL_H_
#define WOT_SYNTH_TRUST_MODEL_H_

#include "wot/community/dataset_builder.h"
#include "wot/synth/config.h"
#include "wot/synth/generator_fwd.h"
#include "wot/util/rng.h"

namespace wot {

/// \brief Appends ground-truth trust statements to \p builder. Reviews and
/// ratings must already be staged. Deterministic given \p rng state.
Status EmitTrustStatements(const SynthConfig& config,
                           const SynthGroundTruth& truth,
                           DatasetBuilder* builder, Rng* rng);

}  // namespace wot

#endif  // WOT_SYNTH_TRUST_MODEL_H_
