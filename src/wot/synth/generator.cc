#include "wot/synth/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "wot/synth/designations.h"
#include "wot/synth/trust_model.h"
#include "wot/util/check.h"
#include "wot/util/logging.h"

namespace wot {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<SynthCommunity> GenerateCommunity(const SynthConfig& config) {
  WOT_RETURN_IF_ERROR(config.Validate());
  Rng rng(config.seed);

  std::vector<std::string> category_names = config.category_names;
  if (category_names.empty()) {
    category_names = SynthConfig::PaperCategoryNames();
  }
  const size_t num_categories = category_names.size();

  SynthCommunity out;
  out.truth.profiles = SampleUserProfiles(config, num_categories, &rng);
  const auto& profiles = out.truth.profiles;

  DatasetBuilder builder;

  // --- Categories and users ---
  std::vector<CategoryId> categories;
  categories.reserve(num_categories);
  for (const auto& name : category_names) {
    categories.push_back(builder.AddCategory(name));
  }
  std::vector<UserId> users;
  users.reserve(config.num_users);
  for (size_t u = 0; u < config.num_users; ++u) {
    users.push_back(builder.AddUser("user" + std::to_string(u)));
  }

  // --- Objects: counts follow category popularity ---
  ZipfSampler category_pop(num_categories,
                           config.category_popularity_exponent);
  std::vector<std::vector<ObjectId>> objects_in(num_categories);
  for (size_t c = 0; c < num_categories; ++c) {
    // Scale mean_objects_per_category so that total object volume matches
    // a uniform allocation but follows the popularity profile.
    double share = category_pop.Probability(c) *
                   static_cast<double>(num_categories);
    size_t count = std::max<size_t>(
        8, static_cast<size_t>(std::lround(
               share * static_cast<double>(config.mean_objects_per_category))));
    objects_in[c].reserve(count);
    for (size_t k = 0; k < count; ++k) {
      WOT_ASSIGN_OR_RETURN(
          ObjectId oid,
          builder.AddObject(categories[c], category_names[c] + "/item" +
                                               std::to_string(k)));
      objects_in[c].push_back(oid);
    }
  }

  // --- Reviews ---
  // Per category: review list, writer list, true qualities (for the
  // quality-biased reading step and rating noise).
  std::vector<std::vector<ReviewId>> reviews_in(num_categories);
  std::vector<std::vector<double>> quality_in(num_categories);
  std::unordered_set<uint64_t> written;  // (user, object) pairs

  for (size_t u = 0; u < config.num_users; ++u) {
    const auto& profile = profiles[u];
    if (!profile.is_writer) {
      continue;
    }
    CategoricalSampler pick_category(profile.affinity);
    double expected =
        profile.activity * config.max_reviews_per_writer;
    // Poisson-ish integer draw: floor + Bernoulli on the fraction.
    size_t count = static_cast<size_t>(expected);
    if (rng.NextBool(expected - std::floor(expected))) {
      ++count;
    }
    if (count == 0) {
      // Every writer contributes at least one review; mirrors the paper's
      // "write at least 1 review" dataset membership rule.
      count = 1;
    }
    for (size_t k = 0; k < count; ++k) {
      size_t c = pick_category.Sample(&rng);
      const auto& pool = objects_in[c];
      // One review per (writer, object): retry a few times, then give up
      // (the writer has reviewed most of the category).
      ObjectId object;
      bool found = false;
      for (int attempt = 0; attempt < 8; ++attempt) {
        ObjectId candidate = pool[rng.NextBounded(pool.size())];
        if (written.insert(PairKey(users[u].value(), candidate.value()))
                .second) {
          object = candidate;
          found = true;
          break;
        }
      }
      if (!found) {
        continue;
      }
      WOT_ASSIGN_OR_RETURN(ReviewId rid, builder.AddReview(users[u], object));
      double quality =
          Clamp01(profile.category_skill[c] +
                  rng.NextGaussian(0.0, config.review_quality_noise));
      WOT_CHECK_EQ(rid.index(), out.truth.review_quality.size());
      out.truth.review_quality.push_back(quality);
      reviews_in[c].push_back(rid);
      quality_in[c].push_back(quality);
    }
  }

  // Quality-biased review samplers, one per non-empty category.
  std::vector<std::unique_ptr<CategoricalSampler>> biased_pick(
      num_categories);
  for (size_t c = 0; c < num_categories; ++c) {
    if (quality_in[c].empty()) {
      continue;
    }
    std::vector<double> weights(quality_in[c].size());
    for (size_t k = 0; k < weights.size(); ++k) {
      // Squared quality: helpful reviews are read noticeably more often.
      weights[k] = 0.05 + quality_in[c][k] * quality_in[c][k];
    }
    biased_pick[c] = std::make_unique<CategoricalSampler>(weights);
  }

  // --- Ratings ---
  const Dataset& staged = builder.StagedView();
  std::unordered_set<uint64_t> rated;  // (rater, review) pairs
  for (size_t u = 0; u < config.num_users; ++u) {
    const auto& profile = profiles[u];
    CategoricalSampler pick_category(profile.affinity);
    double expected = profile.activity * config.max_ratings_per_user;
    size_t count = static_cast<size_t>(expected);
    if (rng.NextBool(expected - std::floor(expected))) {
      ++count;
    }
    for (size_t k = 0; k < count; ++k) {
      size_t c = pick_category.Sample(&rng);
      if (reviews_in[c].empty()) {
        continue;
      }
      size_t local = 0;
      if (rng.NextBool(config.quality_biased_reading)) {
        local = biased_pick[c]->Sample(&rng);
      } else {
        local = rng.NextBounded(reviews_in[c].size());
      }
      ReviewId review = reviews_in[c][local];
      if (staged.review(review).writer == users[u]) {
        continue;  // never rate your own review
      }
      if (!rated.insert(PairKey(users[u].value(), review.value())).second) {
        continue;  // already rated this review
      }
      double noise_sd = (1.0 - profile.rater_reliability) *
                        config.rating_noise;
      double perceived =
          Clamp01(quality_in[c][local] + rng.NextGaussian(0.0, noise_sd));
      WOT_RETURN_IF_ERROR(builder.AddRating(
          users[u], review, rating_scale::Quantize(perceived)));
    }
  }

  // --- Ground-truth trust + planted designations ---
  WOT_RETURN_IF_ERROR(
      EmitTrustStatements(config, out.truth, &builder, &rng));
  PlantDesignations(config, builder.StagedView(), &out.truth);

  WOT_ASSIGN_OR_RETURN(out.dataset, builder.Build());
  WOT_LOG(Info) << "generated community: " << out.dataset.Summary();
  return out;
}

}  // namespace wot
