#include "wot/synth/trust_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wot/synth/generator.h"

namespace wot {

namespace {

uint64_t PairKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// j's expertise as perceived through i's affinities:
/// sum_c aff_i[c] * skill_j[c]  (affinities sum to 1).
double PerceivedExpertise(const UserProfile& truster,
                          const UserProfile& writer) {
  double acc = 0.0;
  for (size_t c = 0; c < truster.affinity.size(); ++c) {
    if (truster.affinity[c] > 0.0) {
      acc += truster.affinity[c] * writer.category_skill[c];
    }
  }
  return acc;
}

}  // namespace

Status EmitTrustStatements(const SynthConfig& config,
                           const SynthGroundTruth& truth,
                           DatasetBuilder* builder, Rng* rng) {
  const Dataset& staged = builder->StagedView();
  const auto& profiles = truth.profiles;
  const size_t num_users = profiles.size();

  // Distinct (rater -> writer) connections, i.e. the pattern of R.
  std::vector<std::unordered_set<uint32_t>> connected(num_users);
  for (const auto& rating : staged.ratings()) {
    UserId writer = staged.review(rating.review).writer;
    if (writer != rating.rater) {
      connected[rating.rater.index()].insert(writer.value());
    }
  }

  std::unordered_set<uint64_t> emitted;
  auto emit = [&](uint32_t src, uint32_t dst) -> Status {
    if (src == dst) {
      return Status::OK();
    }
    if (!emitted.insert(PairKey(src, dst)).second) {
      return Status::OK();
    }
    return builder->AddTrust(UserId(src), UserId(dst));
  };

  // Candidate experts per category for population 2, sorted by skill. Only
  // writers are candidates (non-writers have no reviews to be known for).
  const size_t num_categories =
      profiles.empty() ? 0 : profiles[0].affinity.size();
  std::vector<std::vector<uint32_t>> experts_in(num_categories);
  for (size_t u = 0; u < num_users; ++u) {
    if (!profiles[u].is_writer) {
      continue;
    }
    for (size_t c = 0; c < num_categories; ++c) {
      if (profiles[u].affinity[c] > 0.0 &&
          profiles[u].category_skill[c] > 0.0) {
        experts_in[c].push_back(static_cast<uint32_t>(u));
      }
    }
  }
  for (size_t c = 0; c < num_categories; ++c) {
    std::sort(experts_in[c].begin(), experts_in[c].end(),
              [&](uint32_t a, uint32_t b) {
                return profiles[a].category_skill[c] >
                       profiles[b].category_skill[c];
              });
  }

  for (size_t i = 0; i < num_users; ++i) {
    const auto& truster = profiles[i];
    size_t in_r_edges = 0;

    // Population 1: trust within direct connections.
    for (uint32_t j : connected[i]) {
      double expertise = PerceivedExpertise(truster, profiles[j]);
      double p = truster.generosity *
                 Sigmoid(config.trust_steepness *
                         (expertise - config.trust_midpoint));
      if (rng->NextBool(p)) {
        WOT_RETURN_IF_ERROR(emit(static_cast<uint32_t>(i), j));
        ++in_r_edges;
      }
    }

    // Population 2: word-of-mouth edges toward top experts in i's focus
    // categories (draws biased toward the top of the per-category ranking).
    double expected_extra =
        static_cast<double>(in_r_edges) * config.out_of_r_trust_fraction;
    size_t extra = static_cast<size_t>(expected_extra);
    if (rng->NextBool(expected_extra - std::floor(expected_extra))) {
      ++extra;
    }
    if (extra > 0) {
      CategoricalSampler pick_category(truster.affinity);
      for (size_t k = 0; k < extra; ++k) {
        size_t c = pick_category.Sample(rng);
        const auto& pool = experts_in[c];
        if (pool.empty()) {
          continue;
        }
        // Rank-biased draw: square of a uniform concentrates near rank 0.
        double u = rng->NextDouble();
        size_t rank = static_cast<size_t>(u * u *
                                          static_cast<double>(pool.size()));
        rank = std::min(rank, pool.size() - 1);
        WOT_RETURN_IF_ERROR(emit(static_cast<uint32_t>(i), pool[rank]));
      }
    }

    // Population 3: uniform noise edges.
    if (num_users > 1 && rng->NextBool(config.random_trust_per_user -
                                       std::floor(
                                           config.random_trust_per_user))) {
      uint32_t j = static_cast<uint32_t>(rng->NextBounded(num_users));
      WOT_RETURN_IF_ERROR(emit(static_cast<uint32_t>(i), j));
    }
    for (size_t k = 0;
         k < static_cast<size_t>(config.random_trust_per_user) &&
         num_users > 1;
         ++k) {
      uint32_t j = static_cast<uint32_t>(rng->NextBounded(num_users));
      WOT_RETURN_IF_ERROR(emit(static_cast<uint32_t>(i), j));
    }
  }
  return Status::OK();
}

}  // namespace wot
