#include "wot/synth/config.h"

namespace wot {

namespace {
Status CheckProbability(double v, const char* name) {
  if (v < 0.0 || v > 1.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must lie in [0, 1], got " +
                                   std::to_string(v));
  }
  return Status::OK();
}
Status CheckPositive(double v, const char* name) {
  if (!(v > 0.0)) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be positive, got " +
                                   std::to_string(v));
  }
  return Status::OK();
}
}  // namespace

Status SynthConfig::Validate() const {
  if (num_users == 0) {
    return Status::InvalidArgument("num_users must be > 0");
  }
  if (!category_names.empty() && category_names.size() < 2) {
    return Status::InvalidArgument("need at least 2 categories");
  }
  WOT_RETURN_IF_ERROR(CheckProbability(writer_fraction, "writer_fraction"));
  WOT_RETURN_IF_ERROR(
      CheckProbability(extra_focus_probability, "extra_focus_probability"));
  WOT_RETURN_IF_ERROR(
      CheckProbability(quality_biased_reading, "quality_biased_reading"));
  WOT_RETURN_IF_ERROR(CheckProbability(trust_midpoint, "trust_midpoint"));
  WOT_RETURN_IF_ERROR(CheckProbability(out_of_r_trust_fraction,
                                       "out_of_r_trust_fraction"));
  WOT_RETURN_IF_ERROR(CheckPositive(activity_tail, "activity_tail"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(max_reviews_per_writer, "max_reviews_per_writer"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(max_ratings_per_user, "max_ratings_per_user"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(writer_quality_alpha, "writer_quality_alpha"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(writer_quality_beta, "writer_quality_beta"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(rater_reliability_alpha, "rater_reliability_alpha"));
  WOT_RETURN_IF_ERROR(
      CheckPositive(rater_reliability_beta, "rater_reliability_beta"));
  WOT_RETURN_IF_ERROR(CheckPositive(generosity_alpha, "generosity_alpha"));
  WOT_RETURN_IF_ERROR(CheckPositive(generosity_beta, "generosity_beta"));
  WOT_RETURN_IF_ERROR(CheckPositive(trust_steepness, "trust_steepness"));
  if (category_skill_noise < 0.0 || review_quality_noise < 0.0 ||
      rating_noise < 0.0 || random_trust_per_user < 0.0 ||
      category_popularity_exponent < 0.0) {
    return Status::InvalidArgument("noise/exponent knobs must be >= 0");
  }
  if (mean_objects_per_category == 0) {
    return Status::InvalidArgument("mean_objects_per_category must be > 0");
  }
  return Status::OK();
}

std::vector<std::string> SynthConfig::PaperCategoryNames() {
  return {"Action/Adventure", "Adult/Audience",    "Comedies",
          "Dramas",           "Educations",        "Foreign films",
          "Horror/Suspense",  "Musical",           "Religious",
          "Science/Fiction",  "Sports/Recreation", "Westerns"};
}

}  // namespace wot
