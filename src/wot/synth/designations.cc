#include "wot/synth/designations.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "wot/synth/generator.h"

namespace wot {

namespace {

/// Returns the ids of the top \p k users by score, descending (ties broken
/// by ascending user id for determinism).
std::vector<UserId> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<uint32_t> order(scores.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });
  k = std::min(k, order.size());
  std::vector<UserId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    if (scores[order[i]] <= 0.0) {
      break;  // never designate inactive users
    }
    out.push_back(UserId(order[i]));
  }
  return out;
}

}  // namespace

void PlantDesignations(const SynthConfig& config, const Dataset& dataset,
                       SynthGroundTruth* truth) {
  const size_t num_users = truth->profiles.size();
  std::vector<double> ratings_given(num_users, 0.0);
  std::vector<double> reviews_written(num_users, 0.0);
  for (const auto& rating : dataset.ratings()) {
    ratings_given[rating.rater.index()] += 1.0;
  }
  for (const auto& review : dataset.reviews()) {
    reviews_written[review.writer.index()] += 1.0;
  }

  std::vector<double> advisor_score(num_users, 0.0);
  std::vector<double> reviewer_score(num_users, 0.0);
  for (size_t u = 0; u < num_users; ++u) {
    advisor_score[u] = truth->profiles[u].rater_reliability *
                       std::log1p(ratings_given[u]);
    reviewer_score[u] =
        truth->profiles[u].writer_quality * std::log1p(reviews_written[u]);
  }
  truth->advisors = TopK(advisor_score, config.num_advisors);
  truth->top_reviewers = TopK(reviewer_score, config.num_top_reviewers);
}

}  // namespace wot
