// Configuration of the synthetic community generator. Defaults are sized so
// every experiment binary finishes in seconds on a laptop while preserving
// the statistical structure of the paper's Epinions Video & DVD crawl
// (heavy-tailed activity, a dozen sub-categories of very different sizes,
// ratings far denser than trust).
#ifndef WOT_SYNTH_CONFIG_H_
#define WOT_SYNTH_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "wot/util/status.h"

namespace wot {

/// \brief All knobs of the generator. See generator.h for the generative
/// process they parameterize.
struct SynthConfig {
  /// Master seed; every run with the same config is bit-identical.
  uint64_t seed = 42;

  /// Community size. The paper's crawl had 44,197 users; the default is
  /// smaller so experiments run in seconds, and benches expose --users.
  size_t num_users = 4000;

  /// Sub-category names. Empty means "use the paper's 12 Video & DVD
  /// genres".
  std::vector<std::string> category_names;

  /// Objects (e.g. movies) per category before popularity skew.
  size_t mean_objects_per_category = 120;

  /// Zipf exponent for category popularity (Dramas >> Westerns).
  double category_popularity_exponent = 0.7;

  /// Pareto-ish activity heavy tail: user activity = u^(-1/activity_tail)
  /// with u uniform; larger tail -> heavier skew.
  double activity_tail = 1.3;

  /// Fraction of users who write reviews at all (everyone may rate).
  double writer_fraction = 0.55;

  /// Expected reviews written by a fully-active writer (scaled by
  /// activity and affinity).
  double max_reviews_per_writer = 24.0;

  /// Expected ratings given by a fully-active user. The paper notes the
  /// number of ratings is much larger than the number of reviews.
  double max_ratings_per_user = 220.0;

  /// Number of focus categories per user: 1 + Binomial(extra_focus_p over
  /// 3 trials).
  double extra_focus_probability = 0.45;

  /// Latent writer skill: Beta(a, b) base quality.
  double writer_quality_alpha = 2.2;
  double writer_quality_beta = 2.8;
  /// Per-category jitter of a writer's skill around the base.
  double category_skill_noise = 0.12;

  /// Latent rater reliability: Beta(a, b); most raters are decent judges.
  double rater_reliability_alpha = 4.0;
  double rater_reliability_beta = 2.0;

  /// Noise of a review's true quality around the writer's category skill.
  double review_quality_noise = 0.08;

  /// Rating noise scale: stddev = (1 - reliability) * rating_noise.
  double rating_noise = 0.45;

  /// Probability that a rater picks a review proportionally to quality
  /// (helpful reviews get read more); otherwise uniformly.
  double quality_biased_reading = 0.7;

  // ---- Ground-truth trust process (validation labels only) ----

  /// Trust formation: P(i trusts j | i rated j) is a logistic function of
  /// j's expertise in i's focus categories, centered at trust_midpoint with
  /// steepness trust_steepness, scaled by i's generosity.
  double trust_midpoint = 0.62;
  double trust_steepness = 10.0;

  /// Per-user generosity ~ Beta(a, b): multiplies the trust probability.
  double generosity_alpha = 4.5;
  double generosity_beta = 2.5;

  /// Fraction of additional "word of mouth" trust edges toward experts the
  /// truster never rated (the paper's T - R population), relative to the
  /// number of in-R trust edges.
  double out_of_r_trust_fraction = 0.35;

  /// Random (noise) trust edges per user, on average.
  double random_trust_per_user = 0.4;

  // ---- Planted designations (Table 2 / Table 3 ground truth) ----

  /// Advisors: top users by rater reliability x rating volume (the stated
  /// Epinions criterion, applied to latent truth). Paper: 22.
  size_t num_advisors = 22;
  /// Top Reviewers: top users by writer quality x review volume. Paper: 40.
  size_t num_top_reviewers = 40;

  /// \brief Validates ranges (probabilities in [0,1], positive sizes, ...).
  Status Validate() const;

  /// \brief The paper's 12 Video & DVD sub-category names.
  static std::vector<std::string> PaperCategoryNames();
};

}  // namespace wot

#endif  // WOT_SYNTH_CONFIG_H_
