// Latent per-user ground truth sampled before any observable data is
// generated. The generator derives reviews/ratings from these profiles; the
// evaluation uses them only to plant designations and trust labels.
#ifndef WOT_SYNTH_USER_MODEL_H_
#define WOT_SYNTH_USER_MODEL_H_

#include <vector>

#include "wot/synth/config.h"
#include "wot/util/rng.h"

namespace wot {

/// \brief Latent ground truth for one user.
struct UserProfile {
  /// Activity scale in (0, 1]; heavy-tailed across users.
  double activity = 0.0;
  /// Whether this user writes reviews (everyone may rate).
  bool is_writer = false;
  /// Base writing skill in [0, 1].
  double writer_quality = 0.0;
  /// Per-category skill (base + jitter, clamped); 0 for non-focus
  /// categories where the user never writes.
  std::vector<double> category_skill;
  /// Affinity weights over categories; non-negative, sums to 1 over the
  /// user's focus categories, 0 elsewhere.
  std::vector<double> affinity;
  /// How accurately the user judges review quality, in [0, 1].
  double rater_reliability = 0.0;
  /// Propensity to issue trust statements, in [0, 1].
  double generosity = 0.0;
};

/// \brief Samples profiles for all users. Deterministic given \p rng state.
std::vector<UserProfile> SampleUserProfiles(const SynthConfig& config,
                                            size_t num_categories,
                                            Rng* rng);

}  // namespace wot

#endif  // WOT_SYNTH_USER_MODEL_H_
