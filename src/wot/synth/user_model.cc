#include "wot/synth/user_model.h"

#include <algorithm>
#include <cmath>

namespace wot {

namespace {
double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}  // namespace

std::vector<UserProfile> SampleUserProfiles(const SynthConfig& config,
                                            size_t num_categories,
                                            Rng* rng) {
  // Popular categories attract more focus (Dramas vs Westerns).
  ZipfSampler category_pop(num_categories,
                           config.category_popularity_exponent);

  std::vector<UserProfile> profiles(config.num_users);
  for (auto& profile : profiles) {
    // Bounded Pareto tail: u^(1/tail) in (0,1], median well below 1.
    double u = 0.0;
    do {
      u = rng->NextDouble();
    } while (u <= 0.0);
    profile.activity = std::pow(u, config.activity_tail);

    profile.is_writer = rng->NextBool(config.writer_fraction);
    profile.writer_quality = rng->NextBeta(config.writer_quality_alpha,
                                           config.writer_quality_beta);
    profile.rater_reliability = rng->NextBeta(
        config.rater_reliability_alpha, config.rater_reliability_beta);
    profile.generosity =
        rng->NextBeta(config.generosity_alpha, config.generosity_beta);

    // Focus categories: 1 mandatory + up to 3 extra.
    size_t num_focus = 1;
    for (int t = 0; t < 3; ++t) {
      if (rng->NextBool(config.extra_focus_probability)) {
        ++num_focus;
      }
    }
    num_focus = std::min(num_focus, num_categories);

    std::vector<size_t> focus;
    while (focus.size() < num_focus) {
      size_t c = category_pop.Sample(rng);
      if (std::find(focus.begin(), focus.end(), c) == focus.end()) {
        focus.push_back(c);
      }
    }

    profile.affinity.assign(num_categories, 0.0);
    profile.category_skill.assign(num_categories, 0.0);
    // Dirichlet(1,...,1) over focus categories via normalized exponentials.
    double total = 0.0;
    for (size_t c : focus) {
      double w = rng->NextGamma(1.0);
      profile.affinity[c] = w;
      total += w;
    }
    if (total > 0.0) {
      for (size_t c : focus) {
        profile.affinity[c] /= total;
      }
    } else {
      // All-zero gamma draws are vanishingly rare; fall back to uniform.
      for (size_t c : focus) {
        profile.affinity[c] = 1.0 / static_cast<double>(focus.size());
      }
    }
    for (size_t c : focus) {
      profile.category_skill[c] = Clamp01(
          profile.writer_quality +
          rng->NextGaussian(0.0, config.category_skill_noise));
    }
  }
  return profiles;
}

}  // namespace wot
