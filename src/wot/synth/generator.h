// The synthetic community generator: turns a SynthConfig into a Dataset
// plus the latent ground truth needed for validation.
//
// Generative process (all draws from one seeded stream):
//   1. Sample latent user profiles (user_model.h).
//   2. Create categories and objects (object counts follow category
//      popularity).
//   3. Writers write reviews: category ~ affinity, object uniform within
//      the category (one review per writer per object); each review gets a
//      true quality ~ N(writer's category skill, review_quality_noise),
//      clamped to [0, 1].
//   4. Users rate reviews: category ~ affinity; within the category the
//      review is picked quality-biased with probability
//      quality_biased_reading, else uniformly; the rating value is the
//      review's true quality corrupted by rater-reliability-dependent noise
//      and quantized to the five-stage scale. Self-ratings and duplicate
//      (rater, review) pairs are never emitted.
//   5. The ground-truth trust process emits trust statements
//      (trust_model.h) and designations are planted (designations.h).
//
// The resulting Dataset is exactly what a crawler would see; profiles and
// review qualities are returned separately and must never be read by the
// trust-derivation framework itself.
#ifndef WOT_SYNTH_GENERATOR_H_
#define WOT_SYNTH_GENERATOR_H_

#include <vector>

#include "wot/community/dataset.h"
#include "wot/synth/config.h"
#include "wot/synth/user_model.h"
#include "wot/util/result.h"

namespace wot {

/// \brief Latent ground truth paired with a generated dataset.
struct SynthGroundTruth {
  std::vector<UserProfile> profiles;   // indexed by UserId
  std::vector<double> review_quality;  // indexed by ReviewId
  std::vector<UserId> advisors;        // planted Table-2 ground truth
  std::vector<UserId> top_reviewers;   // planted Table-3 ground truth
};

/// \brief A generated community.
struct SynthCommunity {
  Dataset dataset;
  SynthGroundTruth truth;
};

/// \brief Runs the full generative process. Deterministic in config.seed.
Result<SynthCommunity> GenerateCommunity(const SynthConfig& config);

}  // namespace wot

#endif  // WOT_SYNTH_GENERATOR_H_
