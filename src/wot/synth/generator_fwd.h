// Forward declarations shared by the synth submodules to avoid a cyclic
// include between generator.h and trust_model.h / designations.h.
#ifndef WOT_SYNTH_GENERATOR_FWD_H_
#define WOT_SYNTH_GENERATOR_FWD_H_

namespace wot {

struct SynthGroundTruth;
struct SynthCommunity;

}  // namespace wot

#endif  // WOT_SYNTH_GENERATOR_FWD_H_
