#include "wot/community/interner.h"

#include <gtest/gtest.h>

namespace wot {
namespace {

TEST(InternerTest, AssignsDenseHandlesInFirstSeenOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, ReinterningReturnsSameHandle) {
  StringInterner interner;
  uint32_t a = interner.Intern("x");
  uint32_t b = interner.Intern("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, FindWithoutInserting) {
  StringInterner interner;
  interner.Intern("present");
  EXPECT_TRUE(interner.Find("present").has_value());
  EXPECT_EQ(*interner.Find("present"), 0u);
  EXPECT_FALSE(interner.Find("absent").has_value());
  EXPECT_EQ(interner.size(), 1u);  // Find must not insert
}

TEST(InternerTest, NameOfRoundTrips) {
  StringInterner interner;
  uint32_t h = interner.Intern("hello");
  EXPECT_EQ(interner.NameOf(h), "hello");
}

TEST(InternerTest, EmptyStringIsInternable) {
  StringInterner interner;
  uint32_t h = interner.Intern("");
  EXPECT_EQ(interner.NameOf(h), "");
  EXPECT_TRUE(interner.Find("").has_value());
}

TEST(InternerTest, NamesVectorIsHandleOrdered) {
  StringInterner interner;
  interner.Intern("b");
  interner.Intern("a");
  EXPECT_EQ(interner.names(), (std::vector<std::string>{"b", "a"}));
}

TEST(InternerDeathTest, NameOfOutOfRangeAborts) {
  StringInterner interner;
  EXPECT_DEATH(interner.NameOf(0), "Check failed");
}

}  // namespace
}  // namespace wot
