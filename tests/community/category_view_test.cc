#include "wot/community/category_view.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace wot {
namespace {

class CategoryViewTest : public ::testing::Test {
 protected:
  CategoryViewTest()
      : dataset_(testing::TinyCommunity()),
        indices_(dataset_),
        movies_(dataset_, indices_, CategoryId(0)),
        books_(dataset_, indices_, CategoryId(1)) {}
  Dataset dataset_;
  DatasetIndices indices_;
  CategoryView movies_;
  CategoryView books_;
};

TEST_F(CategoryViewTest, MoviesDimensions) {
  EXPECT_EQ(movies_.category(), CategoryId(0));
  EXPECT_EQ(movies_.num_reviews(), 2u);   // r0, r2
  EXPECT_EQ(movies_.num_writers(), 2u);   // u0, u1
  EXPECT_EQ(movies_.num_raters(), 2u);    // u2, u3
  EXPECT_EQ(movies_.num_ratings(), 3u);   // u2->r0, u3->r0, u2->r2
}

TEST_F(CategoryViewTest, BooksDimensions) {
  EXPECT_EQ(books_.num_reviews(), 1u);  // r1
  EXPECT_EQ(books_.num_writers(), 1u);  // u0
  EXPECT_EQ(books_.num_raters(), 1u);   // u2
  EXPECT_EQ(books_.num_ratings(), 1u);
}

TEST_F(CategoryViewTest, LocalToGlobalMapping) {
  EXPECT_EQ(movies_.review_id(0), ReviewId(0));
  EXPECT_EQ(movies_.review_id(1), ReviewId(2));
  EXPECT_EQ(movies_.writer_id(0), UserId(0));
  EXPECT_EQ(movies_.writer_id(1), UserId(1));
  EXPECT_EQ(books_.review_id(0), ReviewId(1));
  EXPECT_EQ(books_.writer_id(0), UserId(0));
}

TEST_F(CategoryViewTest, WriterOfReview) {
  EXPECT_EQ(movies_.WriterOfReview(0), 0u);  // r0 by u0 (local writer 0)
  EXPECT_EQ(movies_.WriterOfReview(1), 1u);  // r2 by u1 (local writer 1)
}

TEST_F(CategoryViewTest, RatingsOfReviewLocalSide) {
  auto r0_ratings = movies_.RatingsOfReview(0);
  ASSERT_EQ(r0_ratings.size(), 2u);
  // Values for r0: 1.0 (u2) then 0.8 (u3), in dataset order.
  EXPECT_DOUBLE_EQ(r0_ratings[0].value, 1.0);
  EXPECT_DOUBLE_EQ(r0_ratings[1].value, 0.8);
  EXPECT_EQ(movies_.rater_id(r0_ratings[0].local_rater), UserId(2));
  EXPECT_EQ(movies_.rater_id(r0_ratings[1].local_rater), UserId(3));
}

TEST_F(CategoryViewTest, RatingsByRaterConsistentWithReviewSide) {
  // Cross-check: every (rater, review, value) triple present on one side
  // must appear on the other.
  size_t total = 0;
  for (size_t lx = 0; lx < movies_.num_raters(); ++lx) {
    for (const auto& rr : movies_.RatingsByRater(lx)) {
      bool found = false;
      for (const auto& rs : movies_.RatingsOfReview(rr.local_review)) {
        if (rs.local_rater == lx && rs.value == rr.value) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
      ++total;
    }
  }
  EXPECT_EQ(total, movies_.num_ratings());
}

TEST_F(CategoryViewTest, ReviewsOfWriter) {
  auto u0_reviews = movies_.ReviewsOfWriter(0);
  ASSERT_EQ(u0_reviews.size(), 1u);
  EXPECT_EQ(movies_.review_id(u0_reviews[0]), ReviewId(0));
}

TEST_F(CategoryViewTest, EmptyCategory) {
  DatasetBuilder builder;
  builder.AddCategory("empty");
  builder.AddUser("u");
  Dataset ds = builder.Build().ValueOrDie();
  DatasetIndices indices(ds);
  CategoryView view(ds, indices, CategoryId(0));
  EXPECT_EQ(view.num_reviews(), 0u);
  EXPECT_EQ(view.num_writers(), 0u);
  EXPECT_EQ(view.num_raters(), 0u);
  EXPECT_EQ(view.num_ratings(), 0u);
}

TEST_F(CategoryViewTest, ReviewWithNoRatings) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId writer = builder.AddUser("w");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ASSERT_TRUE(builder.AddReview(writer, obj).ok());
  Dataset ds = builder.Build().ValueOrDie();
  DatasetIndices indices(ds);
  CategoryView view(ds, indices, CategoryId(0));
  EXPECT_EQ(view.num_reviews(), 1u);
  EXPECT_EQ(view.num_raters(), 0u);
  EXPECT_TRUE(view.RatingsOfReview(0).empty());
}

}  // namespace
}  // namespace wot
