#include "wot/community/dataset_builder.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace wot {
namespace {

TEST(DatasetBuilderTest, BuildsTinyCommunity) {
  Dataset ds = testing::TinyCommunity();
  EXPECT_EQ(ds.num_users(), 4u);
  EXPECT_EQ(ds.num_categories(), 2u);
  EXPECT_EQ(ds.num_objects(), 3u);
  EXPECT_EQ(ds.num_reviews(), 3u);
  EXPECT_EQ(ds.num_ratings(), 4u);
  EXPECT_EQ(ds.num_trust_statements(), 2u);
}

TEST(DatasetBuilderTest, IdsAreDense) {
  Dataset ds = testing::TinyCommunity();
  for (size_t i = 0; i < ds.num_users(); ++i) {
    EXPECT_EQ(ds.users()[i].id.index(), i);
  }
  for (size_t i = 0; i < ds.num_reviews(); ++i) {
    EXPECT_EQ(ds.reviews()[i].id.index(), i);
  }
}

TEST(DatasetBuilderTest, ReviewInheritsObjectCategory) {
  Dataset ds = testing::TinyCommunity();
  for (const auto& review : ds.reviews()) {
    EXPECT_EQ(review.category, ds.object(review.object).category);
  }
}

TEST(DatasetBuilderTest, RejectsUnknownReferences) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId user = builder.AddUser("u");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ReviewId review = builder.AddReview(user, obj).ValueOrDie();

  EXPECT_FALSE(builder.AddObject(CategoryId(99), "bad").ok());
  EXPECT_FALSE(builder.AddReview(UserId(99), obj).ok());
  EXPECT_FALSE(builder.AddReview(user, ObjectId(99)).ok());
  EXPECT_FALSE(builder.AddRating(UserId(99), review, 0.6).ok());
  EXPECT_FALSE(builder.AddRating(user, ReviewId(99), 0.6).ok());
  EXPECT_FALSE(builder.AddTrust(UserId(99), user).ok());
  EXPECT_FALSE(builder.AddTrust(user, UserId(99)).ok());
  EXPECT_FALSE(builder.AddReview(user, ObjectId()).ok());  // invalid id
}

TEST(DatasetBuilderTest, EnforcesOneReviewPerObject) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId user = builder.AddUser("u");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ASSERT_TRUE(builder.AddReview(user, obj).ok());
  Result<ReviewId> dup = builder.AddReview(user, obj);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatasetBuilderTest, SecondReviewOnDifferentObjectIsFine) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId user = builder.AddUser("u");
  ObjectId o1 = builder.AddObject(cat, "o1").ValueOrDie();
  ObjectId o2 = builder.AddObject(cat, "o2").ValueOrDie();
  EXPECT_TRUE(builder.AddReview(user, o1).ok());
  EXPECT_TRUE(builder.AddReview(user, o2).ok());
}

TEST(DatasetBuilderTest, RejectsSelfRating) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId user = builder.AddUser("u");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ReviewId review = builder.AddReview(user, obj).ValueOrDie();
  Status s = builder.AddRating(user, review, 0.8);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetBuilderTest, RejectsDuplicateRating) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId writer = builder.AddUser("w");
  UserId rater = builder.AddUser("r");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ReviewId review = builder.AddReview(writer, obj).ValueOrDie();
  ASSERT_TRUE(builder.AddRating(rater, review, 0.8).ok());
  EXPECT_EQ(builder.AddRating(rater, review, 0.6).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatasetBuilderTest, RejectsOffScaleRating) {
  DatasetBuilder builder;
  CategoryId cat = builder.AddCategory("c");
  UserId writer = builder.AddUser("w");
  UserId rater = builder.AddUser("r");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ReviewId review = builder.AddReview(writer, obj).ValueOrDie();
  EXPECT_FALSE(builder.AddRating(rater, review, 0.5).ok());
  EXPECT_FALSE(builder.AddRating(rater, review, 0.0).ok());
  EXPECT_FALSE(builder.AddRating(rater, review, 1.1).ok());
}

TEST(DatasetBuilderTest, PermissiveOptionsAllowOffScaleAndSelfRating) {
  DatasetBuilderOptions options;
  options.enforce_rating_scale = false;
  options.reject_self_ratings = false;
  options.reject_duplicate_ratings = false;
  DatasetBuilder builder(options);
  CategoryId cat = builder.AddCategory("c");
  UserId user = builder.AddUser("u");
  ObjectId obj = builder.AddObject(cat, "o").ValueOrDie();
  ReviewId review = builder.AddReview(user, obj).ValueOrDie();
  EXPECT_TRUE(builder.AddRating(user, review, 0.55).ok());
  EXPECT_TRUE(builder.AddRating(user, review, 0.55).ok());
}

TEST(DatasetBuilderTest, RejectsDegenerateTrust) {
  DatasetBuilder builder;
  UserId a = builder.AddUser("a");
  UserId b = builder.AddUser("b");
  EXPECT_FALSE(builder.AddTrust(a, a).ok());
  ASSERT_TRUE(builder.AddTrust(a, b).ok());
  EXPECT_EQ(builder.AddTrust(a, b).code(), StatusCode::kAlreadyExists);
  // Reverse direction is a different statement.
  EXPECT_TRUE(builder.AddTrust(b, a).ok());
}

TEST(DatasetBuilderTest, BuildResetsBuilder) {
  DatasetBuilder builder;
  builder.AddUser("u");
  Dataset first = builder.Build().ValueOrDie();
  EXPECT_EQ(first.num_users(), 1u);
  Dataset second = builder.Build().ValueOrDie();
  EXPECT_EQ(second.num_users(), 0u);
}

TEST(DatasetBuilderTest, StagedViewTracksAppends) {
  DatasetBuilder builder;
  EXPECT_EQ(builder.StagedView().num_users(), 0u);
  builder.AddUser("u");
  EXPECT_EQ(builder.StagedView().num_users(), 1u);
}

TEST(DatasetTest, FindCategory) {
  Dataset ds = testing::TinyCommunity();
  EXPECT_TRUE(ds.FindCategory("movies").ok());
  EXPECT_EQ(ds.FindCategory("movies").ValueOrDie().index(), 0u);
  EXPECT_FALSE(ds.FindCategory("cars").ok());
}

TEST(DatasetTest, SummaryMentionsCounts) {
  Dataset ds = testing::TinyCommunity();
  std::string summary = ds.Summary();
  EXPECT_NE(summary.find("4 users"), std::string::npos);
  EXPECT_NE(summary.find("3 reviews"), std::string::npos);
}

}  // namespace
}  // namespace wot
