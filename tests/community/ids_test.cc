#include "wot/community/ids.h"

#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "wot/community/entities.h"

namespace wot {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  UserId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), UserId::kInvalid);
}

TEST(StrongIdTest, ExplicitConstructionIsValid) {
  UserId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(StrongIdTest, Comparisons) {
  EXPECT_EQ(UserId(3), UserId(3));
  EXPECT_NE(UserId(3), UserId(4));
  EXPECT_LT(UserId(3), UserId(4));
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  // Must not compile if mixed: UserId(1) == ReviewId(1). Verified by type
  // traits instead of a compile-failure test.
  static_assert(!std::is_same_v<UserId, ReviewId>);
  static_assert(!std::is_same_v<ObjectId, CategoryId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<UserId> set;
  set.insert(UserId(1));
  set.insert(UserId(2));
  set.insert(UserId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(UserId(2)));
}

TEST(StrongIdTest, StreamOutput) {
  std::ostringstream os;
  os << UserId(12) << " " << UserId();
  EXPECT_EQ(os.str(), "12 <invalid>");
}

TEST(RatingScaleTest, QuantizeSnapsToStages) {
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.0), 0.2);
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.21), 0.2);
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.31), 0.4);
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.5), 0.6);  // half away from zero
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.55), 0.6);
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(0.99), 1.0);
  EXPECT_DOUBLE_EQ(rating_scale::Quantize(5.0), 1.0);
}

TEST(RatingScaleTest, IsValidStage) {
  EXPECT_TRUE(rating_scale::IsValidStage(0.2));
  EXPECT_TRUE(rating_scale::IsValidStage(0.4));
  EXPECT_TRUE(rating_scale::IsValidStage(0.6));
  EXPECT_TRUE(rating_scale::IsValidStage(0.8));
  EXPECT_TRUE(rating_scale::IsValidStage(1.0));
  EXPECT_FALSE(rating_scale::IsValidStage(0.0));
  EXPECT_FALSE(rating_scale::IsValidStage(0.5));
  EXPECT_FALSE(rating_scale::IsValidStage(1.2));
}

TEST(RatingScaleTest, QuantizeOutputIsAlwaysValid) {
  for (double v = -0.5; v <= 1.5; v += 0.01) {
    EXPECT_TRUE(rating_scale::IsValidStage(rating_scale::Quantize(v)))
        << "v=" << v;
  }
}

}  // namespace
}  // namespace wot
