#include "wot/community/stats.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace wot {
namespace {

TEST(StatsTest, CountsMatchTinyCommunity) {
  Dataset ds = testing::TinyCommunity();
  DatasetIndices indices(ds);
  DatasetStats stats = ComputeDatasetStats(ds, indices);

  EXPECT_EQ(stats.num_users, 4u);
  EXPECT_EQ(stats.num_categories, 2u);
  EXPECT_EQ(stats.num_reviews, 3u);
  EXPECT_EQ(stats.num_ratings, 4u);
  EXPECT_EQ(stats.num_trust_statements, 2u);
  // u0 and u1 write; u2 and u3 rate: all four are active.
  EXPECT_EQ(stats.num_active_users, 4u);
}

TEST(StatsTest, PerWriterAndPerRaterMeans) {
  Dataset ds = testing::TinyCommunity();
  DatasetIndices indices(ds);
  DatasetStats stats = ComputeDatasetStats(ds, indices);
  // Writers: u0 wrote 2, u1 wrote 1 -> mean 1.5.
  EXPECT_DOUBLE_EQ(stats.reviews_per_writer.mean(), 1.5);
  EXPECT_EQ(stats.reviews_per_writer.count(), 2);
  // Raters: u2 rated 3, u3 rated 1 -> mean 2.
  EXPECT_DOUBLE_EQ(stats.ratings_per_rater.mean(), 2.0);
  // Ratings per review: r0 has 2, r1 has 1, r2 has 1.
  EXPECT_NEAR(stats.ratings_per_review.mean(), 4.0 / 3.0, 1e-12);
}

TEST(StatsTest, TrustOutDegree) {
  Dataset ds = testing::TinyCommunity();
  DatasetIndices indices(ds);
  DatasetStats stats = ComputeDatasetStats(ds, indices);
  // u2 and u3 each trust one user.
  EXPECT_EQ(stats.trust_out_degree.count(), 2);
  EXPECT_DOUBLE_EQ(stats.trust_out_degree.mean(), 1.0);
}

TEST(StatsTest, PerCategoryBreakdown) {
  Dataset ds = testing::TinyCommunity();
  DatasetIndices indices(ds);
  DatasetStats stats = ComputeDatasetStats(ds, indices);
  ASSERT_EQ(stats.per_category.size(), 2u);
  const auto& movies = stats.per_category[0];
  EXPECT_EQ(movies.name, "movies");
  EXPECT_EQ(movies.num_reviews, 2u);
  EXPECT_EQ(movies.num_ratings, 3u);
  EXPECT_EQ(movies.num_writers, 2u);
  EXPECT_EQ(movies.num_raters, 2u);
  const auto& books = stats.per_category[1];
  EXPECT_EQ(books.num_reviews, 1u);
  EXPECT_EQ(books.num_ratings, 1u);
  EXPECT_EQ(books.num_writers, 1u);
  EXPECT_EQ(books.num_raters, 1u);
}

TEST(StatsTest, InactiveUsersNotCounted) {
  DatasetBuilder builder;
  builder.AddCategory("c");
  builder.AddUser("ghost");
  Dataset ds = builder.Build().ValueOrDie();
  DatasetIndices indices(ds);
  DatasetStats stats = ComputeDatasetStats(ds, indices);
  EXPECT_EQ(stats.num_users, 1u);
  EXPECT_EQ(stats.num_active_users, 0u);
}

TEST(StatsTest, ToStringMentionsKeyNumbers) {
  Dataset ds = testing::TinyCommunity();
  DatasetIndices indices(ds);
  std::string text = ComputeDatasetStats(ds, indices).ToString();
  EXPECT_NE(text.find("users=4"), std::string::npos);
  EXPECT_NE(text.find("movies"), std::string::npos);
}

}  // namespace
}  // namespace wot
